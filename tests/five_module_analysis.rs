//! Hand-checked analysis of the five-module example (the paper's Fig. 2–5
//! walk-through): every number here was computed manually from the wiring
//! and permeability values in `permea_analysis::fivemod`.

use permea::analysis::fivemod::five_module_system;
use permea::core::prelude::*;

fn graph() -> (SystemTopology, PermeabilityGraph) {
    let (topo, pm) = five_module_system();
    let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
    (topo, graph)
}

#[test]
fn backtrack_tree_path_inventory() {
    let (topo, graph) = graph();
    let out = topo.signal_by_name("OUT").unwrap();
    let tree = BacktrackTree::build(&graph, out).unwrap();
    let paths = tree.into_path_set();
    // Hand enumeration:
    //   OUT <- extE                                  0.25
    //   OUT <- sD <- sB <- sA <- extA                0.9*0.7*0.5*0.6 = 0.189
    //   OUT <- sD <- sB <- fbB <- sA <- extA         0.9*0.7*0.4*0.2*0.6 = 0.03024
    //   OUT <- sD <- sB <- fbB <- fbB (feedback)     0.9*0.7*0.4*0.3 = 0.0756
    //   OUT <- sD <- sC <- extC                      0.9*0.1*0.8 = 0.072
    //   OUT <- sB <- sA <- extA                      0.35*0.5*0.6 = 0.105
    //   OUT <- sB <- fbB <- sA <- extA               0.35*0.4*0.2*0.6 = 0.0168
    //   OUT <- sB <- fbB <- fbB (feedback)           0.35*0.4*0.3 = 0.042
    assert_eq!(paths.len(), 8);
    let sorted = paths.sorted_by_weight();
    let expected = [0.25, 0.189, 0.105, 0.0756, 0.072, 0.042, 0.03024, 0.0168];
    for (p, e) in sorted.iter().zip(expected) {
        assert!(
            (p.weight - e).abs() < 1e-12,
            "expected {e}, got {}",
            p.weight
        );
    }
    assert_eq!(
        sorted
            .iter()
            .filter(|p| p.terminal == permea::core::paths::PathTerminal::Feedback)
            .count(),
        2
    );
}

#[test]
fn module_measures_by_hand() {
    let (topo, graph) = graph();
    let sm = SystemMeasures::compute(&graph).unwrap();
    let get = |name: &str| *sm.module(topo.module_by_name(name).unwrap());
    // A: one pair (0.6).
    let a = get("A");
    assert!((a.relative_permeability - 0.6).abs() < 1e-12);
    assert!((a.non_weighted_relative_permeability - 0.6).abs() < 1e-12);
    assert_eq!(a.incoming_arcs, 0, "A reads only extA");
    // B: pairs 0.2, 0.5, 0.3, 0.4 -> sum 1.4, mean 0.35.
    let b = get("B");
    assert!((b.non_weighted_relative_permeability - 1.4).abs() < 1e-12);
    assert!((b.relative_permeability - 0.35).abs() < 1e-12);
    // B's incoming arcs: A's pair into sA (0.6) + own fbB column (0.2, 0.3).
    assert_eq!(b.incoming_arcs, 3);
    assert!((b.non_weighted_exposure - 1.1).abs() < 1e-12);
    // D: inputs sB (from B: arcs 0.5, 0.4) and sC (from C: 0.8).
    let d = get("D");
    assert_eq!(d.incoming_arcs, 3);
    assert!((d.non_weighted_exposure - 1.7).abs() < 1e-12);
    // E: inputs extE (none), sD (from D: 0.7, 0.1), sB (from B: 0.5, 0.4).
    let e = get("E");
    assert_eq!(e.incoming_arcs, 4);
    assert!((e.non_weighted_exposure - 1.7).abs() < 1e-12);
}

#[test]
fn signal_exposures_by_hand() {
    let (topo, graph) = graph();
    let sm = SystemMeasures::compute(&graph).unwrap();
    let x = |name: &str| sm.signal(topo.signal_by_name(name).unwrap()).exposure;
    // X^OUT: arcs to children of the OUT node = E's column into OUT
    // (0.25, 0.9, 0.35).
    assert!((x("OUT") - 1.5).abs() < 1e-12);
    // X^sD: D's column into sD = (0.7, 0.1).
    assert!((x("sD") - 0.8).abs() < 1e-12);
    // X^sB: B's column into sB = (0.5, 0.4) — sB appears twice in the tree
    // (under sD and under OUT) but arcs count once.
    assert!((x("sB") - 0.9).abs() < 1e-12);
    // X^fbB: B's column into fbB = (0.2, 0.3).
    assert!((x("fbB") - 0.5).abs() < 1e-12);
    // X^sA: A's single arc, counted once despite three occurrences.
    assert!((x("sA") - 0.6).abs() < 1e-12);
    // X^sC: C's single arc.
    assert!((x("sC") - 0.8).abs() < 1e-12);
    // External leaves have no children.
    assert_eq!(x("extA"), 0.0);
    assert_eq!(x("extE"), 0.0);
}

#[test]
fn end_to_end_estimates_by_hand() {
    let (topo, graph) = graph();
    let out = topo.signal_by_name("OUT").unwrap();
    let tree = BacktrackTree::build(&graph, out).unwrap();
    let set = tree.into_path_set();
    // extA: four parallel paths 0.189, 0.03024, 0.105, 0.0168.
    let ext_a = topo.signal_by_name("extA").unwrap();
    let expected = 1.0 - (1.0 - 0.189) * (1.0 - 0.03024) * (1.0 - 0.105) * (1.0 - 0.0168);
    assert!((set.end_to_end_estimate(ext_a) - expected).abs() < 1e-12);
    // extE: single path 0.25.
    let ext_e = topo.signal_by_name("extE").unwrap();
    assert!((set.end_to_end_estimate(ext_e) - 0.25).abs() < 1e-12);
    // extC: single path 0.072.
    let ext_c = topo.signal_by_name("extC").unwrap();
    assert!((set.end_to_end_estimate(ext_c) - 0.072).abs() < 1e-12);
}

#[test]
fn whatif_containment_of_b_blocks_exta_paths() {
    let (topo, pm) = five_module_system();
    let b = topo.module_by_name("B").unwrap();
    let effects = containment_effects(
        &topo,
        &pm,
        Containment {
            module: b,
            factor: 0.0,
        },
    )
    .unwrap();
    let ext_a = topo.signal_by_name("extA").unwrap();
    let ext_e = topo.signal_by_name("extE").unwrap();
    let ea = effects.iter().find(|e| e.input == ext_a).unwrap();
    // Every extA path crosses B: perfect containment blocks them all.
    assert_eq!(ea.after, 0.0);
    assert!(ea.before > 0.0);
    // extE bypasses B entirely: unaffected.
    let ee = effects.iter().find(|e| e.input == ext_e).unwrap();
    assert!((ee.after - ee.before).abs() < 1e-12);
}

#[test]
fn containment_ranking_identifies_e_then_b() {
    let (topo, pm) = five_module_system();
    let ranked = rank_containment_candidates(&topo, &pm, 0.0).unwrap();
    // E sits on every path (total blocked = sum of all end-to-end values);
    // it must rank first.
    assert_eq!(topo.module_name(ranked[0].0), "E");
    assert!(ranked[0].1 > ranked[1].1);
}

#[test]
fn trace_tree_of_extc_reaches_out_once() {
    let (topo, graph) = graph();
    let ext_c = topo.signal_by_name("extC").unwrap();
    let tree = TraceTree::build(&graph, ext_c).unwrap();
    let paths = tree.paths();
    // extC -> sC -> sD -> OUT, single route.
    assert_eq!(paths.len(), 1);
    assert!((paths[0].weight - 0.8 * 0.1 * 0.9).abs() < 1e-12);
}
