//! Integration: recovery guards spliced into the real arrestment system.

use permea::analysis::placement_experiment::{
    detection_comparison, guarded_factory, recovery_comparison, PlacementConfig,
};
use permea::arrestment::system::{ArrestmentSystem, ExtraModule};
use permea::arrestment::testcase::TestCase;
use permea::fi::campaign::SystemFactory;
use permea::mech::detectors::RangeDetector;
use permea::mech::guard::{GuardModule, SignalGuard};
use permea::mech::recovery::HoldLastGood;
use permea::runtime::scheduler::Schedule;
use permea::runtime::time::SimTime;

#[test]
fn extras_are_registered_after_target_modules() {
    let guard = SignalGuard::new(
        Box::new(RangeDetector::new(0, u16::MAX)),
        Box::new(HoldLastGood::new()),
    );
    let sys = ArrestmentSystem::with_extras(
        TestCase::new(14_000.0, 60.0),
        vec![ExtraModule {
            name: "GUARD_SetValue".into(),
            module: Box::new(GuardModule::new(guard)),
            schedule: Schedule::every_ms(),
            inputs: vec!["SetValue".into()],
            outputs: vec!["SetValue".into()],
        }],
    );
    assert_eq!(sys.sim().module_count(), 7);
    let idx = sys.sim().module_by_name("GUARD_SetValue").unwrap();
    assert_eq!(idx.index(), 6, "extras come after the six target modules");
}

#[test]
#[should_panic(expected = "unknown extra input")]
fn extras_with_unknown_signals_panic() {
    let guard = SignalGuard::new(
        Box::new(RangeDetector::new(0, 1)),
        Box::new(HoldLastGood::new()),
    );
    let _ = ArrestmentSystem::with_extras(
        TestCase::new(14_000.0, 60.0),
        vec![ExtraModule {
            name: "G".into(),
            module: Box::new(GuardModule::new(guard)),
            schedule: Schedule::every_ms(),
            inputs: vec!["nope".into()],
            outputs: vec!["SetValue".into()],
        }],
    );
}

#[test]
fn silent_guard_does_not_perturb_golden_behaviour() {
    // A guard with an all-accepting assertion must leave the golden traces
    // bit-identical: it never writes.
    let baseline = ArrestmentSystem::new(TestCase::new(11_000.0, 50.0)).run_to_completion();
    let guard = SignalGuard::new(
        Box::new(RangeDetector::new(0, u16::MAX)),
        Box::new(HoldLastGood::new()),
    );
    let mut guarded_sys = ArrestmentSystem::with_extras(
        TestCase::new(11_000.0, 50.0),
        vec![ExtraModule {
            name: "GUARD_SetValue".into(),
            module: Box::new(GuardModule::new(guard)),
            schedule: Schedule::every_ms(),
            inputs: vec!["SetValue".into()],
            outputs: vec!["SetValue".into()],
        }],
    );
    let guarded = guarded_sys.run_to_completion();
    for name in ["SetValue", "OutValue", "TOC2", "pulscnt", "i"] {
        assert_eq!(
            baseline.trace(name).unwrap(),
            guarded.trace(name).unwrap(),
            "guard must be transparent on {name}"
        );
    }
}

#[test]
fn guarded_factory_builds_sims_with_guards() {
    let cfg = PlacementConfig::smoke();
    let factory = guarded_factory(&cfg, &["SetValue"]).unwrap();
    let sim = factory.build(0);
    assert!(sim.module_by_name("GUARD_SetValue").is_some());
    assert_eq!(factory.case_count(), 1);
}

#[test]
fn guarded_golden_equals_baseline_golden() {
    // Calibrated guards are silent on golden behaviour, so the guarded
    // system's golden run matches the baseline's over the horizon.
    let cfg = PlacementConfig::smoke();
    let factory = guarded_factory(&cfg, &["SetValue", "OutValue"]).unwrap();
    let mut guarded = factory.build(0);
    guarded.run_until(SimTime::from_millis(cfg.horizon_ms));
    let guarded_traces = guarded.take_traces().unwrap();

    let mut baseline = ArrestmentSystem::new(TestCase::grid(1, 1)[0]);
    let base_traces = baseline.run_ticks(cfg.horizon_ms);
    assert_eq!(
        base_traces.trace("TOC2").unwrap(),
        guarded_traces.trace("TOC2").unwrap()
    );
}

#[test]
fn guided_placement_beats_naive_placement() {
    let cfg = PlacementConfig::smoke();
    let guided = recovery_comparison(&cfg, &["SetValue", "OutValue"]).unwrap();
    let naive = recovery_comparison(&cfg, &["mscnt"]).unwrap();
    assert_eq!(guided.baseline_failures, naive.baseline_failures);
    assert!(
        guided.guarded_failures < naive.guarded_failures,
        "guided {guided:?} vs naive {naive:?}"
    );
}

#[test]
fn detection_study_reports_for_every_candidate() {
    let cfg = PlacementConfig::smoke();
    let cov = detection_comparison(&cfg, &["SetValue", "TOC2", "mscnt"]).unwrap();
    assert_eq!(cov.len(), 3);
    let runs = cov[0].runs;
    assert!(cov.iter().all(|c| c.runs == runs));
    // mscnt is independent of everything: it never shows anomalies.
    let mscnt = cov.iter().find(|c| c.signal == "mscnt").unwrap();
    assert_eq!(mscnt.detected, 0);
}
