//! Property-based tests for the analytical core: random system topologies
//! with random permeability values must satisfy every documented invariant.

use permea::core::prelude::*;
use proptest::prelude::*;

/// A compact description from which a valid random system is built:
/// per-module port counts and, per input port, an index choosing the source
/// signal among those available (externals + all outputs).
#[derive(Debug, Clone)]
struct SystemDescription {
    externals: usize,
    /// (input_count, output_count) per module.
    shapes: Vec<(usize, usize)>,
    /// Raw selectors, reduced modulo the available signal count.
    input_selectors: Vec<usize>,
    /// Permeability values in [0, 1], consumed in order.
    values: Vec<u32>,
}

fn description() -> impl Strategy<Value = SystemDescription> {
    (
        1usize..4,
        prop::collection::vec((1usize..4, 1usize..3), 1..6),
        prop::collection::vec(0usize..1000, 20),
        prop::collection::vec(0u32..=1000, 40),
    )
        .prop_map(
            |(externals, shapes, input_selectors, values)| SystemDescription {
                externals,
                shapes,
                input_selectors,
                values,
            },
        )
}

/// Builds a valid topology + matrix from a description. Outputs are declared
/// before inputs are bound, so feedback (including self-feedback) can occur.
fn build(desc: &SystemDescription) -> (SystemTopology, PermeabilityMatrix) {
    let mut b = TopologyBuilder::new("prop");
    let mut signals = Vec::new();
    for e in 0..desc.externals {
        signals.push(b.external(format!("ext{e}")));
    }
    let mut modules = Vec::new();
    for (mi, &(_, outs)) in desc.shapes.iter().enumerate() {
        let m = b.add_module(format!("M{mi}"));
        modules.push(m);
        for k in 0..outs {
            signals.push(b.add_output(m, format!("s{mi}_{k}")));
        }
    }
    let mut sel = desc.input_selectors.iter().cycle();
    for (mi, &(ins, _)) in desc.shapes.iter().enumerate() {
        for _ in 0..ins {
            let pick = sel.next().unwrap() % signals.len();
            b.bind_input(modules[mi], signals[pick]);
        }
    }
    // The last module's outputs are the system outputs.
    let _last = *modules.last().unwrap();
    let m_count = desc.shapes.last().unwrap().1;
    let total: usize = desc.shapes.iter().map(|&(_, o)| o).sum();
    let first_last_out = desc.externals + total - m_count;
    for k in 0..m_count {
        b.mark_system_output(signals[first_last_out + k]);
    }
    let topo = b.build().expect("generated topology is valid");
    let mut pm = PermeabilityMatrix::zeroed(&topo);
    let mut vals = desc.values.iter().cycle();
    for m in topo.modules() {
        for i in 0..topo.input_count(m) {
            for k in 0..topo.output_count(m) {
                let v = *vals.next().unwrap() as f64 / 1000.0;
                pm.set(m, i, k, v).unwrap();
            }
        }
    }
    (topo, pm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn path_weights_are_products_and_probabilities(desc in description()) {
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let forest = BacktrackForest::build(&graph).unwrap();
        for p in forest.all_paths().iter() {
            let prod: f64 = p.arcs.iter().map(|&(_, w)| w).product();
            prop_assert!((p.weight - prod).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&p.weight));
            prop_assert_eq!(p.signals.len(), p.arcs.len() + 1);
        }
    }

    #[test]
    fn backtrack_leaves_are_inputs_or_feedback(desc in description()) {
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let forest = BacktrackForest::build(&graph).unwrap();
        for p in forest.all_paths().iter() {
            match p.terminal {
                permea::core::paths::PathTerminal::SystemInput => {
                    prop_assert!(topo.is_system_input(p.leaf()));
                }
                permea::core::paths::PathTerminal::Feedback => {
                    // The leaf signal occurs earlier on the path.
                    let leaf = p.leaf();
                    prop_assert!(p.signals[..p.signals.len() - 1].contains(&leaf));
                }
                other => prop_assert!(false, "unexpected terminal {other:?}"),
            }
        }
    }

    #[test]
    fn trees_terminate_and_are_bounded(desc in description()) {
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let forest = BacktrackForest::build(&graph).unwrap();
        for tree in forest.trees() {
            // Feedback cutting bounds the depth by the number of signals + 1.
            prop_assert!(tree.depth() <= topo.signal_count() + 1);
        }
        let tf = TraceForest::build(&graph).unwrap();
        for tree in tf.trees() {
            prop_assert!(tree.depth() <= topo.signal_count() + 1);
        }
    }

    #[test]
    fn measures_respect_bounds(desc in description()) {
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let sm = SystemMeasures::compute(&graph).unwrap();
        for mm in sm.modules() {
            let pairs = (mm.inputs * mm.outputs) as f64;
            prop_assert!((0.0..=1.0 + 1e-12).contains(&mm.relative_permeability));
            prop_assert!(mm.non_weighted_relative_permeability <= pairs + 1e-9);
            prop_assert!(mm.exposure >= 0.0);
            prop_assert!(mm.exposure <= 1.0 + 1e-9, "mean of probabilities");
            prop_assert!(mm.non_weighted_exposure <= mm.incoming_arcs as f64 + 1e-9);
        }
        for se in sm.signals() {
            prop_assert!(se.exposure >= 0.0);
            prop_assert!(se.exposure <= se.arcs as f64 + 1e-9);
        }
    }

    #[test]
    fn relative_ordering_of_eq2_eq3_is_consistent_for_equal_shapes(desc in description()) {
        // For two modules with the same (inputs, outputs) shape, the two
        // permeability measures must rank them identically.
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let sm = SystemMeasures::compute(&graph).unwrap();
        let ms = sm.modules();
        for a in ms {
            for b in ms {
                if a.inputs == b.inputs && a.outputs == b.outputs {
                    let weighted = a.relative_permeability.partial_cmp(&b.relative_permeability);
                    let nonweighted = a
                        .non_weighted_relative_permeability
                        .partial_cmp(&b.non_weighted_relative_permeability);
                    prop_assert_eq!(weighted, nonweighted);
                }
            }
        }
    }

    #[test]
    fn path_set_operations_are_consistent(desc in description()) {
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let forest = BacktrackForest::build(&graph).unwrap();
        let set = forest.all_paths();
        let sorted = set.sorted_by_weight();
        prop_assert_eq!(sorted.len(), set.len());
        for w in sorted.as_slice().windows(2) {
            prop_assert!(w[0].weight >= w[1].weight);
        }
        let nz = set.non_zero();
        prop_assert!(nz.len() <= set.len());
        prop_assert!(nz.iter().all(|p| p.weight > 0.0));
        let top = set.top(3);
        prop_assert!(top.len() <= 3);
        for input in topo.system_inputs() {
            let e = set.end_to_end_estimate(*input);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&e));
        }
    }

    #[test]
    fn signal_exposure_equals_manual_unique_arc_sum(desc in description()) {
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let sm = SystemMeasures::compute(&graph).unwrap();
        let forest = BacktrackForest::build(&graph).unwrap();
        for s in topo.signals() {
            let arcs = forest.unique_child_arcs_of_signal(s);
            let manual: f64 = arcs.iter().map(|&(_, w)| w).sum();
            prop_assert!((sm.signal(s).exposure - manual).abs() < 1e-9);
            // Unique arcs: no duplicate ArcIds.
            let mut ids: Vec<_> = arcs.iter().map(|&(id, _)| id).collect();
            ids.dedup();
            prop_assert_eq!(ids.len(), arcs.len());
        }
    }

    #[test]
    fn placement_plan_is_well_formed(desc in description()) {
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let plan = PlacementAdvisor::new(&graph).unwrap().plan();
        for rec in plan.edm.iter().chain(plan.erm.iter()) {
            prop_assert!(rec.score >= 0.0);
            prop_assert!(!rec.rationales.is_empty());
        }
        // Default options exclude system outputs from EDM signal slots.
        for s in plan.edm_signals() {
            prop_assert!(!topo.is_system_output(s));
        }
    }

    #[test]
    fn containment_never_increases_propagation(desc in description(), factor_raw in 0u32..=100) {
        use permea::core::whatif::{containment_effects, Containment};
        let factor = factor_raw as f64 / 100.0;
        let (topo, pm) = build(&desc);
        for m in topo.modules() {
            let effects =
                containment_effects(&topo, &pm, Containment { module: m, factor }).unwrap();
            for e in &effects {
                prop_assert!(e.after <= e.before + 1e-9, "containment must not increase risk");
                prop_assert!((0.0..=1.0 + 1e-9).contains(&e.after));
                if factor == 1.0 {
                    prop_assert!((e.after - e.before).abs() < 1e-9, "factor 1 is identity");
                }
            }
        }
    }

    #[test]
    fn risk_analysis_scales_linearly_with_occurrence(desc in description(), rate_raw in 1u32..1000) {
        use permea::core::occurrence::{risk_analysis, OccurrenceProfile};
        let rate = rate_raw as f64 / 1000.0;
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let base = risk_analysis(&graph, &OccurrenceProfile::uniform_inputs(&topo, 1.0)).unwrap();
        let scaled =
            risk_analysis(&graph, &OccurrenceProfile::uniform_inputs(&topo, rate)).unwrap();
        prop_assert_eq!(base.len(), scaled.len());
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((s.risk - b.risk * rate).abs() < 1e-9);
            prop_assert!((s.propagation - b.propagation).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_renderings_are_parseable_shapes(desc in description()) {
        let (topo, pm) = build(&desc);
        let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
        let dot = permea::core::dot::graph_to_dot(&graph);
        prop_assert!(dot.starts_with("digraph"));
        prop_assert_eq!(dot.ends_with("}\n"), true);
        prop_assert!(dot.matches(" -> ").count() >= topo.pair_count());
    }
}
