//! Integration tests of the fault-injection pipeline against the real
//! arrestment target.

use permea::analysis::factory::ArrestmentFactory;
use permea::arrestment::testcase::TestCase;
use permea::fi::prelude::*;

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        targets: vec![
            PortTarget::new("V_REG", "SetValue"),
            PortTarget::new("PREG", "OutValue"),
            PortTarget::new("DIST_S", "PACNT"),
        ],
        models: vec![
            ErrorModel::BitFlip { bit: 0 },
            ErrorModel::BitFlip { bit: 7 },
            ErrorModel::BitFlip { bit: 14 },
        ],
        times_ms: vec![900, 2600],
        cases: 1,
        scope: InjectionScope::Port,
        adaptive: None,
    }
}

fn factory() -> ArrestmentFactory {
    ArrestmentFactory::with_cases(vec![TestCase::new(12_000.0, 55.0)])
}

fn config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        threads,
        master_seed: 0xBEEF,
        keep_records: true,
        horizon_ms: Some(6_000),
        fast_forward: true,
        ..CampaignConfig::default()
    }
}

#[test]
fn campaign_is_thread_count_invariant() {
    let f = factory();
    let seq = Campaign::new(&f, config(1)).run(&small_spec()).unwrap();
    let par = Campaign::new(&f, config(4)).run(&small_spec()).unwrap();
    assert_eq!(seq, par);
}

#[test]
fn journaled_resume_is_thread_count_invariant() {
    // Interrupt a single-threaded journaled campaign partway (simulated by
    // truncating the journal), then resume it on 4 threads: per-run seeds
    // derive from the coordinate index alone, so the schedule — and even
    // which runs came from the journal — must not change a single byte.
    let f = factory();
    let spec = small_spec();
    let baseline = Campaign::new(&f, config(1)).run(&spec).unwrap();

    let dir = std::env::temp_dir().join(format!("permea-it-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&path);

    let seq = Campaign::new(&f, config(1));
    let header = seq.journal_header(&spec);
    let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
    seq.run_resumable(&spec, Some(&mut j), None).unwrap();
    drop(j);

    // Keep the header plus the first 7 records, as if killed mid-campaign.
    let text = std::fs::read_to_string(&path).unwrap();
    let kept: String = text.lines().take(8).map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, kept).unwrap();

    let par = Campaign::new(&f, config(4));
    let (mut j, loaded) = RunJournal::open_or_create(&path, &header).unwrap();
    assert_eq!(loaded.recovered, 7);
    let resumed = par.run_resumable(&spec, Some(&mut j), None).unwrap();
    assert_eq!(resumed, baseline);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_runs_are_reproducible() {
    let f = factory();
    let c = Campaign::new(&f, config(1));
    let g1 = c.golden(0).unwrap();
    let g2 = c.golden(0).unwrap();
    assert_eq!(g1, g2);
    assert_eq!(g1.ticks, 6_000, "horizon-cut golden");
}

#[test]
fn setvalue_corruption_reaches_outvalue_with_high_probability() {
    let f = factory();
    let res = Campaign::new(&f, config(0)).run(&small_spec()).unwrap();
    let p = res.pair("V_REG", "SetValue", "OutValue").unwrap();
    assert!(p.estimate() > 0.5, "estimate {}", p.estimate());
}

#[test]
fn records_account_for_every_run() {
    let f = factory();
    let spec = small_spec();
    let res = Campaign::new(&f, config(1)).run(&spec).unwrap();
    assert_eq!(res.records.len(), spec.run_count());
    for r in &res.records {
        // Bit flips always change the observed value.
        assert_ne!(r.original_value, r.corrupted_value);
        assert!(spec.times_ms.contains(&r.time_ms));
        // Divergences never precede the injection.
        for d in r.first_divergence.iter().flatten() {
            assert!(
                *d as u64 >= r.time_ms,
                "divergence at {d} before injection at {}",
                r.time_ms
            );
        }
    }
}

#[test]
fn port_scope_isolates_the_targeted_consumer() {
    // Injecting into CALC's view of pulscnt must not corrupt what DIST_S
    // published: the pulscnt trace itself stays golden.
    let f = factory();
    let c = Campaign::new(&f, config(1));
    let golden = c.golden_bundle(0, &[2_000]).unwrap();
    let (traces, original, corrupted) = c
        .run_traced(
            &PortTarget::new("CALC", "pulscnt"),
            InjectionScope::Port,
            ErrorModel::BitFlip { bit: 13 },
            2_000,
            &golden,
            7,
        )
        .unwrap();
    assert_eq!(original ^ corrupted, 1 << 13);
    assert_eq!(
        golden.run.first_divergence(&traces, "pulscnt"),
        None,
        "port-scoped corruption must not appear on the signal itself"
    );
}

#[test]
fn signal_scope_shows_on_the_signal_trace() {
    // SetValue is rewritten only at checkpoint crossings, so a
    // signal-scoped corruption stays visible on the stored signal at the
    // injection tick. (pulscnt would be overwritten by DIST_S within the
    // same tick — which the port-scope test above exploits.)
    let f = factory();
    let c = Campaign::new(&f, config(1));
    let golden = c.golden_bundle(0, &[2_000]).unwrap();
    let (traces, _, _) = c
        .run_traced(
            &PortTarget::new("V_REG", "SetValue"),
            InjectionScope::Signal,
            ErrorModel::BitFlip { bit: 13 },
            2_000,
            &golden,
            7,
        )
        .unwrap();
    assert_eq!(
        golden.run.first_divergence(&traces, "SetValue"),
        Some(2_000),
        "signal-scoped corruption is visible on the stored signal"
    );
}

#[test]
fn estimates_flow_into_matrix_and_graph() {
    let topo = permea::arrestment::ArrestmentSystem::topology();
    let f = factory();
    let res = Campaign::new(&f, config(0)).run(&small_spec()).unwrap();
    let matrix = estimate_matrix(&topo, &res).unwrap();
    // Untargeted pairs stay zero.
    let calc = topo.module_by_name("CALC").unwrap();
    assert_eq!(matrix.get(calc, 0, 0), 0.0);
    // Targeted pairs carry the campaign estimate.
    let vreg = topo.module_by_name("V_REG").unwrap();
    let p = res
        .pair("V_REG", "SetValue", "OutValue")
        .unwrap()
        .estimate();
    assert_eq!(matrix.get(vreg, 0, 0), p);
    // And the graph accepts the matrix.
    let graph = permea::core::PermeabilityGraph::new(&topo, &matrix).unwrap();
    assert_eq!(graph.arcs().count(), 25);
}

#[test]
fn injection_after_horizon_is_rejected() {
    // An instant beyond the horizon could never fire; the run would be a
    // silent no-injection run diluting the estimate, so it is an error.
    let f = factory();
    let c = Campaign::new(&f, config(1));
    let spec = CampaignSpec {
        targets: vec![PortTarget::new("V_REG", "SetValue")],
        models: vec![ErrorModel::BitFlip { bit: 15 }],
        times_ms: vec![50_000], // beyond the 6 s horizon: never fires
        cases: 1,
        scope: InjectionScope::Port,
        adaptive: None,
    };
    assert_eq!(
        c.run(&spec).unwrap_err(),
        FiError::UnreachableInstant {
            time_ms: 50_000,
            limit_ms: 6_000,
            case: None
        }
    );
}

#[test]
fn fast_forward_matches_replay_on_the_arrestment_system() {
    // The differential guarantee on the real target: snapshot fork plus
    // convergence early-exit must reproduce the replay-from-zero campaign
    // byte for byte, records included.
    let f = factory();
    let fast = Campaign::new(&f, config(0)).run(&small_spec()).unwrap();
    let replay = Campaign::new(
        &f,
        CampaignConfig {
            fast_forward: false,
            ..config(0)
        },
    )
    .run(&small_spec())
    .unwrap();
    assert_eq!(fast, replay);
}

#[test]
fn traced_fast_forward_matches_replay_traces() {
    // run_traced reassembles a full trace from golden prefix + simulated
    // window + golden tail; it must equal the replayed full trace.
    let f = factory();
    let fast = Campaign::new(&f, config(1));
    let replay = Campaign::new(
        &f,
        CampaignConfig {
            fast_forward: false,
            ..config(1)
        },
    );
    let fast_bundle = fast.golden_bundle(0, &[900, 2_600]).unwrap();
    let replay_bundle = replay.golden_bundle(0, &[900, 2_600]).unwrap();
    for (target, scope) in [
        (PortTarget::new("DIST_S", "PACNT"), InjectionScope::Port),
        (PortTarget::new("V_REG", "SetValue"), InjectionScope::Signal),
    ] {
        for time_ms in [900, 2_600] {
            let (ft, fo, fc) = fast
                .run_traced(
                    &target,
                    scope,
                    ErrorModel::BitFlip { bit: 14 },
                    time_ms,
                    &fast_bundle,
                    7,
                )
                .unwrap();
            let (rt, ro, rc) = replay
                .run_traced(
                    &target,
                    scope,
                    ErrorModel::BitFlip { bit: 14 },
                    time_ms,
                    &replay_bundle,
                    7,
                )
                .unwrap();
            assert_eq!((fo, fc), (ro, rc));
            assert_eq!(ft, rt, "traces differ for {target:?} at {time_ms} ms");
        }
    }
}
