//! The chaos harness turned on the executor itself: deterministic,
//! seeded environment-fault schedules (journal I/O errors, scheduled
//! worker SIGKILLs, torn IPC frames, artifact-write failures) are
//! injected at the exact boundaries `permea_fi::chaos` instruments, and
//! the executor's core contract is asserted after every schedule:
//!
//! * a campaign resumed after any injected abort is **byte-identical**
//!   to an undisturbed run,
//! * no coordinate is double-counted,
//! * the journal never holds conflicting records
//!   ([`permea::fi::journal::audit_journal`] is the invariant checker),
//!
//! in both isolation modes. The process-mode worker pool re-execs this
//! test binary into [`chaos_worker_entry`], exactly like
//! `tests/process_isolation.rs`.
#![cfg(unix)]
#![recursion_limit = "512"]

use permea::fi::campaign::{Campaign, CampaignConfig, FnSystemFactory, SystemFactory};
use permea::fi::chaos::{ChaosInjector, ChaosPlan};
use permea::fi::error::FiError;
use permea::fi::journal::{audit_journal, RunJournal};
use permea::fi::model::ErrorModel;
use permea::fi::process::{run_worker, IsolationMode, ProcessIsolation, WorkerCommand};
use permea::fi::results::CampaignResult;
use permea::fi::spec::{CampaignSpec, InjectionScope, PortTarget};
use permea::runtime::module::{ModuleCtx, SoftwareModule};
use permea::runtime::scheduler::Schedule;
use permea::runtime::signals::{SignalBus, SignalRef};
use permea::runtime::sim::{Environment, Simulation, SimulationBuilder};
use permea::runtime::time::SimTime;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// A perfectly benign copy module: every fault in this suite is an
/// *environment* fault injected by the chaos layer, never by the target.
struct Copy;

impl SoftwareModule for Copy {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        ctx.write(0, v);
    }
}

struct ConstEnv {
    sensor: SignalRef,
    limit: u64,
}

impl Environment for ConstEnv {
    fn pre_tick(&mut self, _: SimTime, bus: &mut SignalBus) {
        bus.write(self.sensor, 100);
    }
    fn post_tick(&mut self, _: SimTime, _: &mut SignalBus) {}
    fn finished(&self, now: SimTime) -> bool {
        now.as_millis() >= self.limit
    }
}

fn build_sim(_case: usize) -> Simulation {
    let mut b = SimulationBuilder::new();
    let sensor = b.define_signal("sensor");
    let out = b.define_signal("out");
    b.add_module(
        "DUT",
        Box::new(Copy),
        Schedule::every_ms(),
        &[sensor],
        &[out],
    );
    let mut sim = b.build(Box::new(ConstEnv { sensor, limit: 80 }));
    sim.enable_tracing_all();
    sim
}

fn factory() -> FnSystemFactory<impl Fn(usize) -> Simulation + Sync> {
    FnSystemFactory::new(1, 10_000, build_sim)
}

fn spec() -> CampaignSpec {
    CampaignSpec {
        targets: vec![PortTarget::new("DUT", "sensor")],
        models: vec![
            ErrorModel::BitFlip { bit: 0 },
            ErrorModel::BitFlip { bit: 7 },
        ],
        times_ms: vec![10, 30],
        cases: 2,
        scope: InjectionScope::Port,
        adaptive: None,
    }
}

fn config() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        ..CampaignConfig::default()
    }
}

fn chaos(plan: &str) -> Arc<ChaosInjector> {
    Arc::new(ChaosInjector::new(
        ChaosPlan::parse(plan).expect("test plan parses"),
    ))
}

fn scratch(tag: &str) -> PathBuf {
    // Unique per call: tests and proptest cases run concurrently in one
    // process, so the pid alone is not enough.
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "permea-chaos-{tag}-{}-{n}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// The undisturbed reference: same spec, same seed, no chaos, journaled.
fn undisturbed(journal_path: &PathBuf) -> (CampaignResult, Vec<u8>) {
    let f = factory();
    let campaign = Campaign::new(&f, config());
    let s = spec();
    let header = campaign.journal_header(&s);
    let (mut journal, _) = RunJournal::open_or_create(journal_path, &header).unwrap();
    let result = campaign
        .run_resumable(&s, Some(&mut journal), None)
        .unwrap();
    drop(journal);
    let bytes = std::fs::read(journal_path).unwrap();
    (result, bytes)
}

/// Runs the campaign journaled under `plan`; on an injected abort,
/// resumes (chaos disarmed — the fault "healed") until it completes.
/// Returns the final result and how many aborts were absorbed.
fn run_with_chaos_until_complete(journal_path: &PathBuf, plan: &str) -> (CampaignResult, usize) {
    let f = factory();
    let s = spec();
    let mut aborts = 0usize;
    // First attempt: chaos armed.
    {
        let campaign = Campaign::new(&f, config()).with_chaos(chaos(plan));
        let header = campaign.journal_header(&s);
        let (mut journal, _) = RunJournal::open_or_create(journal_path, &header).unwrap();
        match campaign.run_resumable(&s, Some(&mut journal), None) {
            Ok(result) => return (result, aborts),
            Err(e) => {
                assert!(
                    matches!(e, FiError::Journal { .. } | FiError::JournalDiskFull { .. }),
                    "chaos may only surface typed journal errors, got: {e}"
                );
                aborts += 1;
            }
        }
    }
    // Resume attempts: the environment has healed.
    loop {
        let campaign = Campaign::new(&f, config());
        let header = campaign.journal_header(&s);
        let (mut journal, _) = RunJournal::open_or_create(journal_path, &header).unwrap();
        match campaign.run_resumable(&s, Some(&mut journal), None) {
            Ok(result) => return (result, aborts),
            Err(_) => {
                aborts += 1;
                assert!(aborts < 16, "resume must converge");
            }
        }
    }
}

fn assert_clean_and_identical(journal_path: &PathBuf, result: &CampaignResult) {
    let reference_path = scratch("reference");
    let (reference, reference_bytes) = undisturbed(&reference_path);
    assert_eq!(
        result, &reference,
        "recovered campaign must be byte-identical to an undisturbed run"
    );
    let bytes = std::fs::read(journal_path).unwrap();
    assert_eq!(
        bytes, reference_bytes,
        "recovered journal must be byte-identical to an undisturbed journal"
    );
    let audit = audit_journal(journal_path).unwrap();
    assert!(audit.is_clean(), "journal audit must be clean: {audit:?}");
    assert_eq!(
        audit.records, audit.distinct,
        "no coordinate may be double-counted"
    );
    let _ = std::fs::remove_file(&reference_path);
}

#[test]
fn transient_enospc_is_absorbed_without_any_abort() {
    let path = scratch("enospc-once");
    let (result, aborts) = run_with_chaos_until_complete(&path, "journal-write=enospc-once@2");
    assert_eq!(aborts, 0, "a transient ENOSPC is retried away in-line");
    assert_clean_and_identical(&path, &result);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn short_write_aborts_typed_and_resume_is_byte_identical() {
    let path = scratch("short");
    let (result, aborts) = run_with_chaos_until_complete(&path, "journal-write=short@3");
    assert!(aborts >= 1, "a torn append must abort the campaign");
    assert_clean_and_identical(&path, &result);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fsync_eio_aborts_typed_and_resume_is_byte_identical() {
    let path = scratch("fsync-eio");
    let (result, aborts) = run_with_chaos_until_complete(&path, "journal-fsync=eio@0");
    assert!(aborts >= 1, "a failed fsync must abort, not be ignored");
    assert_clean_and_identical(&path, &result);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn persistent_enospc_exhausts_bounded_retry_into_disk_full() {
    let f = factory();
    let s = spec();
    let path = scratch("enospc-hard");
    let campaign = Campaign::new(&f, config()).with_chaos(chaos("journal-write=enospc@1"));
    let header = campaign.journal_header(&s);
    let (mut journal, _) = RunJournal::open_or_create(&path, &header).unwrap();
    let err = campaign
        .run_resumable(&s, Some(&mut journal), None)
        .unwrap_err();
    assert!(
        matches!(err, FiError::JournalDiskFull { .. }),
        "persistent ENOSPC must exhaust the bounded retry into JournalDiskFull, got: {err}"
    );
    drop(journal);
    // The tail the abort left behind is still parseable, and resume heals.
    let audit = audit_journal(&path).unwrap();
    assert!(audit.conflicts.is_empty());
    let (result, _) = run_with_chaos_until_complete(&path, "seed=0");
    assert_clean_and_identical(&path, &result);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn preflight_disk_space_check_aborts_before_any_run() {
    let f = factory();
    let s = spec();
    let path = scratch("preflight");
    let campaign = Campaign::new(&f, config()).with_chaos(chaos("free-disk=0"));
    let header = campaign.journal_header(&s);
    let (mut journal, _) = RunJournal::open_or_create(&path, &header).unwrap();
    let err = campaign
        .run_resumable(&s, Some(&mut journal), None)
        .unwrap_err();
    match err {
        FiError::DiskSpaceLow { free_bytes, .. } => assert_eq!(free_bytes, 0),
        other => panic!("expected DiskSpaceLow, got {other}"),
    }
    drop(journal);
    let audit = audit_journal(&path).unwrap();
    assert_eq!(audit.records, 0, "preflight must fire before any run");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Process isolation: the worker pool re-execs this test binary.
// ---------------------------------------------------------------------

fn worker_command() -> WorkerCommand {
    let mut command = WorkerCommand::current_exe(vec![
        "chaos_worker_entry".to_owned(),
        "--exact".to_owned(),
        "--nocapture".to_owned(),
    ])
    .expect("current test binary resolves");
    command
        .envs
        .push(("PERMEA_TEST_WORKER".to_owned(), "1".to_owned()));
    command
}

/// Not a test by itself: the worker main loop when re-exec'd by the
/// supervisor tests below (`PERMEA_TEST_WORKER=1`).
#[test]
fn chaos_worker_entry() {
    if std::env::var("PERMEA_TEST_WORKER").as_deref() != Ok("1") {
        return;
    }
    let code = run_worker(|_payload| Ok(Box::new(factory()) as Box<dyn SystemFactory>));
    std::process::exit(i32::from(code));
}

fn process_config(run_timeout_ms: u64) -> CampaignConfig {
    let mut pool = ProcessIsolation::new(worker_command(), "benign".to_owned());
    pool.workers = 1;
    pool.retry_backoff_ms = 1;
    pool.run_timeout_ms = run_timeout_ms;
    CampaignConfig {
        threads: 1,
        isolation: IsolationMode::Process(pool),
        ..CampaignConfig::default()
    }
}

fn baseline_in_process() -> CampaignResult {
    Campaign::new(&factory(), config()).run(&spec()).unwrap()
}

#[test]
fn scheduled_worker_kill_is_absorbed_by_the_retry_path() {
    let f = factory();
    let result = Campaign::new(&f, process_config(10_000))
        .with_chaos(chaos("kill-run@1"))
        .run(&spec())
        .unwrap();
    assert_eq!(
        result,
        baseline_in_process(),
        "a one-shot SIGKILL must not change any result bit"
    );
    assert_eq!(result.outcomes.completed as usize, result.records.len());
}

#[test]
fn torn_ipc_frame_is_bounded_by_the_deadline_and_absorbed() {
    let f = factory();
    let result = Campaign::new(&f, process_config(800))
        .with_chaos(chaos("frame-corrupt@0"))
        .run(&spec())
        .unwrap();
    assert_eq!(
        result,
        baseline_in_process(),
        "a torn dispatch frame must be killed at the deadline and retried clean"
    );
}

// ---------------------------------------------------------------------
// The proptest: random seeded chaos schedules, both isolation modes.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum JournalFault {
    Write(u64, &'static str),
    Fsync(u64, &'static str),
}

fn fault_kind() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("enospc-once"), Just("eio"), Just("short")]
}

fn journal_fault() -> impl Strategy<Value = JournalFault> {
    prop_oneof![
        (0u64..12, fault_kind()).prop_map(|(i, k)| JournalFault::Write(i, k)),
        (0u64..4, fault_kind()).prop_map(|(i, k)| JournalFault::Fsync(i, k)),
    ]
}

fn render_plan(seed: u64, faults: &[JournalFault]) -> String {
    let mut parts = vec![format!("seed={seed}")];
    for f in faults {
        match f {
            JournalFault::Write(i, k) => parts.push(format!("journal-write={k}@{i}")),
            JournalFault::Fsync(i, k) => parts.push(format!("journal-fsync={k}@{i}")),
        }
    }
    parts.join(", ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // In-process mode: any random schedule of journal write/fsync faults
    // either is absorbed or aborts typed; resume always converges to the
    // undisturbed bytes with a clean audit.
    #[test]
    fn random_journal_chaos_preserves_the_resume_contract(
        seed in 0u64..1000,
        faults in prop::collection::vec(journal_fault(), 1..4),
    ) {
        let path = scratch(&format!("prop-{seed}-{}", faults.len()));
        let plan = render_plan(seed, &faults);
        let (result, _aborts) = run_with_chaos_until_complete(&path, &plan);
        assert_clean_and_identical(&path, &result);
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Process mode: random one-shot worker-kill and frame-corruption
    // schedules never change a result bit — the supervisor's
    // classify/retry path absorbs every one of them.
    #[test]
    fn random_process_chaos_is_absorbed(
        kills in prop::collection::vec(0u64..8, 0..3),
        corrupt in prop::collection::vec(0u64..6, 0..2),
    ) {
        let kills: std::collections::BTreeSet<u64> = kills.into_iter().collect();
        let corrupt: std::collections::BTreeSet<u64> = corrupt.into_iter().collect();
        let mut parts: Vec<String> = kills.iter().map(|k| format!("kill-run@{k}")).collect();
        parts.extend(corrupt.iter().map(|i| format!("frame-corrupt@{i}")));
        if parts.is_empty() {
            parts.push("seed=0".to_owned());
        }
        let plan = parts.join(", ");
        let f = factory();
        let result = Campaign::new(&f, process_config(800))
            .with_chaos(chaos(&plan))
            .run(&spec())
            .unwrap();
        prop_assert_eq!(result, baseline_in_process());
    }
}
