//! Differential fast-forward testing on the *executable* five-module
//! example (Fig. 2) registered in `permea::target::fivemod` — the single
//! definition shared with the scenario suite and the topology analyses.
//! Module B carries internal state across its self-feedback loop, which
//! makes this system a sharper differential target than the arrestment
//! one: any snapshot hook that forgets module state shows up here
//! immediately. This file adds only the deliberately *brittle* consumers
//! (overflow guard, unbounded scan) used to exercise quarantine.

use permea::fi::campaign::{Campaign, CampaignConfig, FnSystemFactory};
use permea::fi::prelude::*;
use permea::runtime::module::{ModuleCtx, SoftwareModule};
use permea::runtime::sim::Simulation;
use permea::target::fivemod::{build, build_with_taps, Tap};

fn factory() -> FnSystemFactory<fn(usize) -> Simulation> {
    FnSystemFactory::new(2, 10_000, build as fn(usize) -> Simulation)
}

fn spec(scope: InjectionScope) -> CampaignSpec {
    CampaignSpec {
        targets: vec![
            PortTarget::new("B", "sA"),
            PortTarget::new("B", "fbB"),
            PortTarget::new("D", "sB"),
            PortTarget::new("E", "sD"),
        ],
        models: vec![
            ErrorModel::BitFlip { bit: 0 },
            ErrorModel::BitFlip { bit: 5 },
            ErrorModel::BitFlip { bit: 12 },
            ErrorModel::BitFlip { bit: 15 },
        ],
        // One odd and one even instant: D only runs on even ticks, so the
        // two instants exercise both live-across-a-tick and expired-same-tick
        // port corruptions of sD.
        times_ms: vec![51, 300],
        cases: 2,
        scope,
        adaptive: None,
    }
}

fn config(fast_forward: bool) -> CampaignConfig {
    CampaignConfig {
        threads: 0,
        master_seed: 0xF1FE,
        fast_forward,
        ..Default::default()
    }
}

/// Overflow-paranoid consumer of sC: golden values stay well below the
/// guard (extC ramps cap sC at 660), but an injected high bit breaks the
/// assumption and the module dies mid-step.
struct GuardedDoubler;
impl SoftwareModule for GuardedDoubler {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        assert!(v < 0x1000, "guarded doubler overflowed on input {v}");
        ctx.write(0, v.wrapping_mul(2));
    }
}

/// Scans as many elements as sC says — fine for golden values (≤ 660 work
/// units per tick), pathological once an injected bit 15 makes the bound
/// ≥ 32 768. Spends watchdog work units cooperatively.
struct BoundedScan;
impl SoftwareModule for BoundedScan {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        let mut sum = 0u16;
        for _ in 0..v {
            ctx.work(1);
            sum = sum.wrapping_add(7);
        }
        ctx.write(0, sum);
    }
}

/// The five-module system plus two deliberately brittle consumers of sC,
/// tapped in *before* C so port corruptions are still live when they read.
fn build_brittle(case: usize) -> Simulation {
    build_with_taps(
        case,
        vec![
            Tap {
                name: "GUARD",
                input: "sC",
                output: "gOUT",
                module: Box::new(GuardedDoubler),
            },
            Tap {
                name: "SCAN",
                input: "sC",
                output: "scanOUT",
                module: Box::new(BoundedScan),
            },
        ],
    )
}

fn brittle_factory() -> FnSystemFactory<fn(usize) -> Simulation> {
    FnSystemFactory::new(2, 10_000, build_brittle as fn(usize) -> Simulation)
}

fn brittle_spec(target: PortTarget) -> CampaignSpec {
    CampaignSpec {
        // Bit 15 always trips the brittle module (golden sC < 0x1000);
        // bit 0 never does — so the campaign mixes both outcome classes.
        targets: vec![target],
        models: vec![
            ErrorModel::BitFlip { bit: 0 },
            ErrorModel::BitFlip { bit: 15 },
        ],
        times_ms: vec![51, 300],
        cases: 2,
        scope: InjectionScope::Port,
        adaptive: None,
    }
}

#[test]
fn overflowing_module_is_quarantined_while_campaign_completes() {
    let f = brittle_factory();
    let c = Campaign::new(
        &f,
        CampaignConfig {
            threads: 1,
            master_seed: 0xF1FE,
            max_quarantined_fraction: 1.0,
            ..Default::default()
        },
    );
    let res = c
        .run(&brittle_spec(PortTarget::new("GUARD", "sC")))
        .unwrap();
    assert_eq!(res.total_runs, 8);
    assert_eq!(res.outcomes.completed, 4, "bit-0 runs survive");
    assert_eq!(res.outcomes.panicked, 4, "bit-15 runs crash the guard");
    assert_eq!(res.outcomes.hung, 0);
    for r in &res.records {
        match (&r.model, &r.outcome) {
            (ErrorModel::BitFlip { bit: 15 }, RunOutcome::Panicked { message }) => {
                assert!(message.contains("guarded doubler overflowed"), "{message}");
            }
            (ErrorModel::BitFlip { bit: 0 }, RunOutcome::Completed) => {}
            other => panic!("unexpected (model, outcome): {other:?}"),
        }
    }
    // Only completed runs enter n_inj.
    assert_eq!(res.pair("GUARD", "sC", "gOUT").unwrap().injections, 4);
}

#[test]
fn hanging_module_is_quarantined_as_hung() {
    let f = brittle_factory();
    let c = Campaign::new(
        &f,
        CampaignConfig {
            threads: 1,
            master_seed: 0xF1FE,
            watchdog: Some(permea::runtime::watchdog::WatchdogConfig {
                max_work_per_tick: Some(4_096),
                max_wall_ms: None,
            }),
            max_quarantined_fraction: 1.0,
            ..Default::default()
        },
    );
    let res = c.run(&brittle_spec(PortTarget::new("SCAN", "sC"))).unwrap();
    assert_eq!(res.outcomes.completed, 4);
    assert_eq!(res.outcomes.hung, 4, "bit-15 runs stall the clock");
    assert_eq!(res.outcomes.panicked, 0);
    for r in res.records.iter().filter(|r| r.outcome.is_quarantined()) {
        assert_eq!(
            r.outcome,
            RunOutcome::Hung {
                last_tick_ms: r.time_ms
            },
            "the clock stalls at the injection instant"
        );
    }
}

#[test]
fn quarantined_campaign_is_thread_count_invariant() {
    // Schedule independence must hold even when some runs die: quarantined
    // records (including their panic messages) are derived per-coordinate,
    // never from worker identity or ordering.
    let f = brittle_factory();
    let config = |threads| CampaignConfig {
        threads,
        master_seed: 0xF1FE,
        max_quarantined_fraction: 1.0,
        ..Default::default()
    };
    let spec = brittle_spec(PortTarget::new("GUARD", "sC"));
    let seq = Campaign::new(&f, config(1)).run(&spec).unwrap();
    let par = Campaign::new(&f, config(4)).run(&spec).unwrap();
    assert_eq!(seq, par);
    assert_eq!(seq.outcomes.panicked, 4, "quarantine actually happened");
}

#[test]
fn fast_forward_matches_replay_port_scope() {
    let f = factory();
    let fast = Campaign::new(&f, config(true))
        .run(&spec(InjectionScope::Port))
        .unwrap();
    let replay = Campaign::new(&f, config(false))
        .run(&spec(InjectionScope::Port))
        .unwrap();
    assert_eq!(
        fast, replay,
        "fork + early-exit must be exact on the five-module system"
    );
}

#[test]
fn fast_forward_matches_replay_signal_scope() {
    let f = factory();
    let fast = Campaign::new(&f, config(true))
        .run(&spec(InjectionScope::Signal))
        .unwrap();
    let replay = Campaign::new(&f, config(false))
        .run(&spec(InjectionScope::Signal))
        .unwrap();
    assert_eq!(fast, replay);
}

#[test]
fn feedback_module_propagates_errors_to_out() {
    // Sanity on the fixture itself: the campaign must see real propagation,
    // otherwise the differential tests above compare nothing but clean runs.
    // B/sA is *expected* to stay clean — A rewrites sA each tick before B
    // reads it, expiring the port corruption — but a corrupted fbB view
    // poisons B's accumulator (bits ≥ 3 survive the `>> 3`), and a corrupted
    // sD view reaches OUT the same tick.
    let f = factory();
    let res = Campaign::new(&f, config(true))
        .run(&spec(InjectionScope::Port))
        .unwrap();
    let fb = res.pair("B", "fbB", "sB").unwrap();
    assert!(fb.estimate() > 0.5, "fbB->sB estimate {}", fb.estimate());
    // At odd instants D does not run, so E reads the corrupted sD and OUT
    // moves the same tick; at even instants D's rewrite usually expires the
    // corruption first.
    let out = res.pair("E", "sD", "OUT").unwrap();
    assert!(out.estimate() >= 0.5, "sD->OUT estimate {}", out.estimate());
    let shielded = res.pair("B", "sA", "sB").unwrap();
    assert_eq!(
        shielded.estimate(),
        0.0,
        "A's per-tick rewrite expires the corruption"
    );
    assert_eq!(res.records.len(), spec(InjectionScope::Port).run_count());
}
