//! Property-based tests for the simulation runtime: bus corruption
//! semantics, hardware models and scheduling.

use permea::runtime::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn port_corruption_is_invisible_to_other_ports(
        value in any::<u16>(),
        corrupt in any::<u16>(),
        port_m in 0usize..8,
        port_i in 0usize..4,
        other_m in 0usize..8,
        other_i in 0usize..4,
    ) {
        let mut bus = SignalBus::new();
        let s = bus.define("s");
        bus.write(s, value);
        bus.corrupt_port((port_m, port_i), s, corrupt);
        prop_assert_eq!(bus.read_port((port_m, port_i), s), corrupt);
        prop_assert_eq!(bus.read(s), value);
        if (other_m, other_i) != (port_m, port_i) {
            prop_assert_eq!(bus.read_port((other_m, other_i), s), value);
        }
    }

    #[test]
    fn any_write_expires_port_corruption(
        value in any::<u16>(),
        corrupt in any::<u16>(),
        rewrite in any::<u16>(),
    ) {
        let mut bus = SignalBus::new();
        let s = bus.define("s");
        bus.write(s, value);
        bus.corrupt_port((0, 0), s, corrupt);
        bus.write(s, rewrite);
        prop_assert_eq!(bus.read_port((0, 0), s), rewrite);
        prop_assert!(!bus.port_corruption_active((0, 0)));
    }

    #[test]
    fn signal_corruption_lasts_until_write(
        value in any::<u16>(),
        corrupt in any::<u16>(),
        rewrite in any::<u16>(),
    ) {
        let mut bus = SignalBus::new();
        let s = bus.define("s");
        bus.write(s, value);
        bus.corrupt_signal(s, corrupt);
        prop_assert_eq!(bus.read(s), corrupt);
        bus.write(s, rewrite);
        prop_assert_eq!(bus.read(s), rewrite);
    }

    #[test]
    fn free_running_counter_is_linear_mod_2_16(rate in 1u16..=u16::MAX, ticks in 0u32..200) {
        let mut c = permea::runtime::hw::FreeRunningCounter::new(rate);
        for _ in 0..ticks {
            c.tick_ms();
        }
        prop_assert_eq!(c.value(), (rate as u32).wrapping_mul(ticks) as u16);
    }

    #[test]
    fn pulse_accumulator_totals_whole_pulses(rates in prop::collection::vec(0.0f64..5.0, 1..100)) {
        let mut p = permea::runtime::hw::PulseAccumulator::new();
        let mut whole_total = 0u32;
        for &r in &rates {
            whole_total += p.add_rate(r) as u32;
        }
        let exact: f64 = rates.iter().sum();
        // The accumulator never loses more than one pulse of carry.
        prop_assert!(whole_total as f64 <= exact + 1e-9);
        prop_assert!(whole_total as f64 > exact - 1.0 - 1e-9);
        prop_assert_eq!(p.value() as u32, whole_total & 0xFFFF);
    }

    #[test]
    fn adc_is_monotone_and_saturating(a in 0.0f64..400.0, b in 0.0f64..400.0) {
        let adc = AdcChannel::new(12, 250.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(adc.convert(lo) <= adc.convert(hi));
        prop_assert!(adc.convert(hi) <= adc.max_code());
    }

    #[test]
    fn adc_roundtrip_error_is_below_one_lsb(x in 0.0f64..250.0) {
        let adc = AdcChannel::new(12, 250.0);
        let lsb = 250.0 / 4095.0;
        let rt = adc.to_physical(adc.convert(x));
        prop_assert!((rt - x).abs() <= lsb, "x={x}, rt={rt}");
    }

    #[test]
    fn pwm_encode_duty_roundtrip(d in 0.0f64..=1.0) {
        let pwm = PwmOut::new(10_000);
        let rt = pwm.duty(pwm.encode(d));
        prop_assert!((rt - d).abs() <= 1.0 / 10_000.0 + 1e-12);
    }

    #[test]
    fn slot_plan_is_deterministic_and_ordered(
        t in 0u64..10_000,
        periods in prop::collection::vec((0u64..7, 1u64..9), 1..6),
    ) {
        use permea::runtime::scheduler::{Schedule, SlotPlan};
        let schedules: Vec<Schedule> = periods
            .iter()
            .map(|&(phase, period)| Schedule::in_slot(phase, period))
            .collect();
        let now = SimTime::from_millis(t);
        let p1 = SlotPlan::for_tick(now, &schedules);
        let p2 = SlotPlan::for_tick(now, &schedules);
        prop_assert_eq!(p1.order(), p2.order());
        // Plan preserves registration order among periodic tasks.
        for w in p1.order().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn traces_record_exact_values(values in prop::collection::vec(any::<u16>(), 1..60)) {
        let mut bus = SignalBus::new();
        let s = bus.define("s");
        let mut ts = TraceSet::for_signals(&bus, &[s]);
        for &v in &values {
            bus.write(s, v);
            ts.record(&bus);
        }
        prop_assert_eq!(ts.trace("s").unwrap(), &values[..]);
        prop_assert_eq!(ts.ticks(), values.len());
    }

    #[test]
    fn trace_divergence_is_symmetric_in_position(
        base in prop::collection::vec(any::<u16>(), 2..50),
        pos_raw in 0usize..50,
        delta in 1u16..=u16::MAX,
    ) {
        let pos = pos_raw % base.len();
        let mut other = base.clone();
        other[pos] = other[pos].wrapping_add(delta);
        prop_assert_eq!(permea::runtime::tracing::first_divergence(&base, &other), Some(pos));
        prop_assert_eq!(permea::runtime::tracing::first_divergence(&other, &base), Some(pos));
    }
}

// Snapshot/restore equivalence: restoring a snapshot into a freshly built
// system and stepping must be indistinguishable from never interrupting the
// original run. These are the load-bearing properties behind campaign
// fast-forward.
mod snapshot_equivalence {
    use super::*;
    use permea::arrestment::system::ArrestmentSystem;
    use permea::arrestment::testcase::TestCase;
    use permea::runtime::hw::{FreeRunningCounter, InputCapture, PulseAccumulator};
    use permea::runtime::state::{StateReader, StateWriter};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn arrestment_snapshot_restore_step_equals_uninterrupted_step(
            mass in 8_000.0f64..20_000.0,
            velocity in 40.0f64..80.0,
            prefix in 0u64..400,
            tail in 1u64..200,
        ) {
            let case = TestCase::new(mass, velocity);
            let mut original = ArrestmentSystem::new(case).into_sim();
            for _ in 0..prefix {
                original.step();
            }
            let snap = original.snapshot();

            let mut forked = ArrestmentSystem::new(case).into_sim();
            forked.restore(&snap);
            prop_assert!(forked.converged_with(&snap), "restore reproduces the snapshot");

            for _ in 0..tail {
                original.step();
                forked.step();
            }
            // converged_with compares tick, bus values, out-caches and the
            // serialised module + environment state — full future-relevant
            // state equality, not just a sampled signal.
            prop_assert!(
                forked.converged_with(&original.snapshot()),
                "forked run diverged from the uninterrupted one after {tail} ticks"
            );
        }

        #[test]
        fn hw_register_state_roundtrips_mid_run(
            rate in 1u16..=u16::MAX,
            prefix in 0u32..300,
            tail in 1u32..300,
            pulses in prop::collection::vec(0.0f64..5.0, 1..40),
            captured in any::<u16>(),
        ) {
            let mut counter = FreeRunningCounter::new(rate);
            let mut accum = PulseAccumulator::new();
            let mut capture = InputCapture::new();
            for _ in 0..prefix {
                counter.tick_ms();
            }
            for &p in &pulses {
                accum.add_rate(p);
            }
            capture.capture(captured);

            let mut w = StateWriter::new();
            counter.save_state(&mut w);
            accum.save_state(&mut w);
            capture.save_state(&mut w);
            let bytes = w.finish();

            let mut counter2 = FreeRunningCounter::new(rate);
            let mut accum2 = PulseAccumulator::new();
            let mut capture2 = InputCapture::new();
            let mut r = StateReader::new(&bytes);
            counter2.load_state(&mut r);
            accum2.load_state(&mut r);
            capture2.load_state(&mut r);
            r.finish();

            for _ in 0..tail {
                counter.tick_ms();
                counter2.tick_ms();
            }
            for &p in &pulses {
                accum.add_rate(p);
                accum2.add_rate(p);
            }
            prop_assert_eq!(counter.value(), counter2.value());
            prop_assert_eq!(accum.value(), accum2.value());
            prop_assert_eq!(capture.value(), capture2.value());
        }
    }
}
