//! System-level behavioural tests of the arrestment controller: the target
//! must be a *credible control system*, not just an injection vehicle —
//! otherwise its permeability texture means nothing.

use permea::arrestment::constants::*;
use permea::arrestment::prelude::*;

fn run(case: TestCase) -> (permea::runtime::tracing::TraceSet, EnvSnapshot) {
    let mut sys = ArrestmentSystem::new(case);
    let traces = sys.run_to_completion();
    let snap = sys.snapshot();
    (traces, snap)
}

#[test]
fn arrests_every_grid_corner_inside_the_cap() {
    for case in [
        TestCase::new(8_000.0, 40.0),
        TestCase::new(8_000.0, 80.0),
        TestCase::new(20_000.0, 40.0),
        TestCase::new(20_000.0, 80.0),
    ] {
        let (_, snap) = run(case);
        assert!(snap.arrested, "{case:?} did not arrest: {snap:?}");
        assert!(snap.elapsed_ms < SCENARIO_CAP_MS);
        assert!(
            snap.elapsed_ms > 5_000,
            "{case:?} stopped inside the injection window: {snap:?}"
        );
    }
}

#[test]
fn pulscnt_is_monotone_and_matches_distance() {
    let (traces, snap) = run(TestCase::new(14_000.0, 60.0));
    let pulscnt = &traces.trace("pulscnt").unwrap();
    for w in pulscnt.windows(2) {
        assert!(
            w[1] >= w[0],
            "pulse count must be monotone (no wrap expected here)"
        );
    }
    let final_pulses = *pulscnt.last().unwrap() as f64;
    let expected = snap.position_m * PULSES_PER_METRE;
    let err = (final_pulses - expected).abs() / expected;
    assert!(
        err < 0.02,
        "pulse count {final_pulses} vs distance-derived {expected}"
    );
}

#[test]
fn checkpoint_index_is_monotone_and_setvalue_follows_table() {
    let (traces, _) = run(TestCase::new(11_000.0, 70.0));
    let i = &traces.trace("i").unwrap();
    for w in i.windows(2) {
        assert!(
            w[1] >= w[0] && w[1] - w[0] <= 1,
            "i advances one checkpoint at a time"
        );
    }
    assert!(*i.last().unwrap() >= 3, "several checkpoints crossed");
    // SetValue stays within encoding bounds and is non-zero mid-arrestment.
    let set = &traces.trace("SetValue").unwrap();
    assert!(set.iter().all(|&v| v <= SET_VALUE_MAX_CBAR));
    assert!(set[3_000] > 0, "pressure commanded during the stroke");
}

#[test]
fn pressure_tracking_is_sane() {
    let (traces, _) = run(TestCase::new(14_000.0, 60.0));
    let set = &traces.trace("SetValue").unwrap();
    let is = &traces.trace("IsValue").unwrap();
    // Mid-stroke, measured pressure should track the set-point within 20%.
    for &t in &[6_000usize, 10_000, 14_000] {
        let (s, m) = (set[t] as f64, is[t] as f64);
        if s > 1_000.0 {
            assert!(
                (m - s).abs() / s < 0.2,
                "tracking error at {t} ms: set {s} vs measured {m}"
            );
        }
    }
}

#[test]
fn slot_counter_cycles_through_all_slots() {
    let (traces, _) = run(TestCase::new(8_000.0, 40.0));
    let slots = &traces.trace("ms_slot_nbr").unwrap();
    let distinct: std::collections::HashSet<u16> = slots.iter().copied().collect();
    assert_eq!(distinct.len(), SLOTS_PER_CYCLE as usize);
    // The cycle is exact: slot(t+7) == slot(t).
    for t in 0..(slots.len() - 7).min(2_000) {
        assert_eq!(slots[t], slots[t + 7]);
    }
}

#[test]
fn stopped_asserts_only_at_the_end() {
    let (traces, snap) = run(TestCase::new(14_000.0, 60.0));
    let stopped = &traces.trace("stopped").unwrap();
    let first_true = stopped.iter().position(|&v| v != 0);
    let t = first_true.expect("stopped eventually asserts");
    assert!(
        (t as u64) > snap.elapsed_ms - 2_000,
        "stopped asserted at {t} ms, long before arrest at {} ms",
        snap.elapsed_ms
    );
    // It ends asserted and holds for a sustained total. (A final creep
    // pulse below the 0.05 m/s arrest threshold may reset the debounce once
    // shortly after the first assertion.)
    assert_ne!(*stopped.last().unwrap(), 0, "stopped holds at scenario end");
    let total_true = stopped[t..].iter().filter(|&&v| v != 0).count();
    assert!(
        total_true >= 250,
        "stopped asserted for only {total_true} ms"
    );
}

#[test]
fn slow_speed_precedes_stopped() {
    let (traces, _) = run(TestCase::new(8_000.0, 40.0));
    let slow = &traces.trace("slow_speed").unwrap();
    let stopped = &traces.trace("stopped").unwrap();
    let slow_at = slow
        .iter()
        .position(|&v| v != 0)
        .expect("slow_speed asserts");
    let stop_at = stopped
        .iter()
        .position(|&v| v != 0)
        .expect("stopped asserts");
    assert!(
        slow_at < stop_at,
        "slow_speed ({slow_at}) before stopped ({stop_at})"
    );
}

#[test]
fn toc2_never_exceeds_command_range_and_slews_gently() {
    let (traces, _) = run(TestCase::new(20_000.0, 80.0));
    let toc2 = &traces.trace("TOC2").unwrap();
    assert!(toc2.iter().all(|&v| v <= VALVE_CMD_MAX));
    for w in toc2.windows(2) {
        let step = w[0].abs_diff(w[1]);
        assert!(
            step <= PREG_SLEW_PER_STEP,
            "slew violation: {} -> {}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn kinetic_energy_is_dissipated_not_created() {
    let (_, snap) = run(TestCase::new(14_000.0, 60.0));
    // The aircraft never speeds up: final velocity ~0, and stopping distance
    // is consistent with monotone deceleration (d <= v0 * t).
    assert!(snap.velocity_ms <= 60.0);
    assert!(snap.position_m <= 60.0 * snap.elapsed_ms as f64 / 1_000.0);
    assert!(snap.pressure_bar >= 0.0 && snap.pressure_bar <= PRESSURE_MAX_BAR + 1.0);
}

#[test]
fn heavier_aircraft_needs_longer_distance_at_same_speed() {
    let (_, light) = run(TestCase::new(8_000.0, 60.0));
    let (_, heavy) = run(TestCase::new(20_000.0, 60.0));
    assert!(
        heavy.position_m > light.position_m,
        "heavy {} m vs light {} m",
        heavy.position_m,
        light.position_m
    );
}

#[test]
fn faster_engagement_commands_higher_pressure() {
    let peak = |case| {
        let (traces, _) = run(case);
        traces
            .trace("SetValue")
            .unwrap()
            .iter()
            .copied()
            .max()
            .unwrap()
    };
    let slow = peak(TestCase::new(14_000.0, 40.0));
    let fast = peak(TestCase::new(14_000.0, 80.0));
    assert!(fast > slow, "velocity scaling: fast {fast} vs slow {slow}");
}
