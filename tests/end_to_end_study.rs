//! End-to-end integration: the full pipeline from fault injection to
//! placement recommendations, through the facade crate.

use permea::analysis::checks::run_shape_checks;
use permea::analysis::report::Report;
use permea::analysis::study::{Study, StudyConfig};

#[test]
fn smoke_study_produces_complete_output() {
    let out = Study::new(StudyConfig::smoke()).run().expect("study runs");
    // Structure of the paper's target system.
    assert_eq!(out.topology.module_count(), 6);
    assert_eq!(out.topology.pair_count(), 25);
    assert_eq!(out.matrix.pair_count(), 25);
    assert_eq!(out.toc2_paths.len(), 22);
    assert_eq!(out.backtrack.trees().len(), 1);
    assert_eq!(out.trace.trees().len(), 4);
    // Campaign bookkeeping is consistent.
    let expected_runs =
        out.spec.targets.len() * out.spec.models.len() * out.spec.times_ms.len() * out.spec.cases;
    assert_eq!(out.result.total_runs, expected_runs as u64);
    assert_eq!(out.result.records.len(), expected_runs);
    // Every estimate is a probability.
    for (_, _, _, v) in out.matrix.iter() {
        assert!((0.0..=1.0).contains(&v));
    }
}

#[test]
fn study_is_deterministic() {
    let a = Study::new(StudyConfig::smoke()).run().unwrap();
    let b = Study::new(StudyConfig::smoke()).run().unwrap();
    assert_eq!(a.matrix, b.matrix);
    assert_eq!(a.result.pairs, b.result.pairs);
    assert_eq!(
        a.toc2_paths.iter().map(|p| p.weight).collect::<Vec<_>>(),
        b.toc2_paths.iter().map(|p| p.weight).collect::<Vec<_>>()
    );
}

#[test]
fn different_seed_changes_nothing_for_bit_flips() {
    // Bit flips are deterministic transformations; the RNG only matters for
    // the RandomValue model, so two seeds must agree.
    let mut cfg = StudyConfig::smoke();
    cfg.seed = 1;
    let a = Study::new(cfg.clone()).run().unwrap();
    cfg.seed = 2;
    let b = Study::new(cfg).run().unwrap();
    assert_eq!(a.matrix, b.matrix);
}

#[test]
fn structural_shape_checks_hold_even_in_smoke_config() {
    let out = Study::new(StudyConfig::smoke()).run().unwrap();
    let checks = run_shape_checks(&out);
    for id in ["PAIRS", "PATHS22", "OB1a", "OB2", "CALC_I"] {
        let c = checks.iter().find(|c| c.id == id).unwrap();
        assert!(c.pass, "{id} failed: {}", c.details);
    }
}

#[test]
fn report_covers_every_table_and_figure() {
    let out = Study::new(StudyConfig::smoke()).run().unwrap();
    let report = Report::from_study(&out);
    let names: Vec<&str> = report.files.iter().map(|(n, _)| n.as_str()).collect();
    for expected in [
        "table1.txt",
        "table1_ci.txt",
        "table2.txt",
        "table3.txt",
        "table4.txt",
        "table4_all.txt",
        "fig3_example_graph.dot",
        "fig4_example_backtrack.txt",
        "fig5_example_trace.txt",
        "fig9_graph.dot",
        "fig10_backtrack_toc2.txt",
        "fig11_trace_adc.txt",
        "fig12_trace_pacnt.txt",
        "checks.txt",
        "placement.txt",
        "matrix.json",
    ] {
        assert!(names.contains(&expected), "missing artifact {expected}");
    }
    // Table 4 lists 22 paths in the unfiltered variant.
    let t4 = &report
        .files
        .iter()
        .find(|(n, _)| n == "table4_all.txt")
        .unwrap()
        .1;
    assert!(t4.contains("22 of 22"));
}

#[test]
fn golden_ticks_match_environment_termination() {
    let out = Study::new(StudyConfig::smoke()).run().unwrap();
    for &ticks in &out.result.golden_ticks {
        // The smoke horizon is 4 s; arrestments outlast it, so every golden
        // run is cut at the horizon exactly.
        assert_eq!(ticks, 4_000);
    }
}
