//! Acceptance regression for the adaptive sampling subsystem: on the
//! executable five-module system (the paper's Fig. 2), a confidence-driven
//! campaign must reproduce the dense grid's permeability ranking (same
//! relative ordering of `P^M` and `X^M`) while spending at least 40 % fewer
//! runs, stay thread-count invariant, and resume byte-identically from a
//! truncated journal.
//!
//! The executable fixture is the registered `five-module` target
//! (`permea::target::fivemod`); the topology for the analysis side comes
//! from `permea::analysis::fivemod`, which wraps the same definition.

use permea::analysis::fivemod::five_module_system;
use permea::core::graph::PermeabilityGraph;
use permea::core::measures::SystemMeasures;
use permea::core::topology::SystemTopology;
use permea::fi::adaptive::AdaptivePlan;
use permea::fi::campaign::{Campaign, CampaignConfig, FnSystemFactory};
use permea::fi::prelude::*;
use permea::runtime::sim::Simulation;
use permea::target::fivemod::build;

fn factory() -> FnSystemFactory<fn(usize) -> Simulation> {
    FnSystemFactory::new(2, 10_000, build as fn(usize) -> Simulation)
}

/// Per-target half-widths converge fast here (two of the four targets sit
/// near 0 or 1), so a 0.15 half-width goal with 50-run batches closes every
/// stratum well under the 128-run dense budget.
fn plan() -> AdaptivePlan {
    AdaptivePlan {
        target_ci: 0.15,
        ..AdaptivePlan::default()
    }
}

/// A dense grid of 16 bit positions × 2 instants × 4 cases = 128 injections
/// per target, 512 in total over the four targeted input ports.
fn spec(adaptive: Option<AdaptivePlan>) -> CampaignSpec {
    CampaignSpec {
        targets: vec![
            PortTarget::new("B", "sA"),
            PortTarget::new("B", "fbB"),
            PortTarget::new("D", "sB"),
            PortTarget::new("E", "sD"),
        ],
        models: (0..16).map(|bit| ErrorModel::BitFlip { bit }).collect(),
        times_ms: vec![51, 300],
        cases: 4,
        scope: InjectionScope::Port,
        adaptive,
    }
}

fn config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        threads,
        master_seed: 0xF1FE,
        ..Default::default()
    }
}

/// Modules ranked by a measure, highest first; ties break by name so the
/// comparison is deterministic on both sides.
fn module_ranking(
    topo: &SystemTopology,
    measures: &SystemMeasures,
    key: impl Fn(&permea::core::measures::ModuleMeasures) -> f64,
) -> Vec<String> {
    let mut rows: Vec<(String, f64)> = topo
        .modules()
        .map(|m| (topo.module_name(m).to_owned(), key(measures.module(m))))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    rows.into_iter().map(|(name, _)| name).collect()
}

fn measures_of(result: &CampaignResult) -> (SystemTopology, SystemMeasures) {
    let (topo, _) = five_module_system();
    let pm = permea::fi::estimate::estimate_matrix(&topo, result).unwrap();
    let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
    let measures = SystemMeasures::compute(&graph).unwrap();
    (topo, measures)
}

#[test]
fn adaptive_reproduces_dense_ranking_with_40_percent_fewer_runs() {
    let f = factory();
    let dense = Campaign::new(&f, config(0)).run(&spec(None)).unwrap();
    let adaptive = Campaign::new(&f, config(0))
        .run(&spec(Some(plan())))
        .unwrap();

    assert_eq!(dense.total_runs, 512);
    assert!(
        adaptive.total_runs * 100 <= dense.total_runs * 60,
        "adaptive spent {} of {} dense runs — less than 40% saved",
        adaptive.total_runs,
        dense.total_runs
    );
    assert_eq!(
        adaptive.runs_per_target.iter().sum::<u64>(),
        adaptive.total_runs
    );

    // Same relative ordering of P^M (relative permeability) and X^M
    // (exposure) as the dense grid.
    let (topo_d, dense_m) = measures_of(&dense);
    let (_, adaptive_m) = measures_of(&adaptive);
    assert_eq!(
        module_ranking(&topo_d, &dense_m, |m| m.relative_permeability),
        module_ranking(&topo_d, &adaptive_m, |m| m.relative_permeability),
        "P^M ranking diverged"
    );
    assert_eq!(
        module_ranking(&topo_d, &dense_m, |m| m.non_weighted_exposure),
        module_ranking(&topo_d, &adaptive_m, |m| m.non_weighted_exposure),
        "X^M ranking diverged"
    );

    // Every stratum met the precision goal it stopped at.
    let summaries = target_summaries(&spec(Some(plan())), &adaptive);
    for s in &summaries {
        assert!(
            s.max_half_width <= plan().target_ci + 1e-12,
            "{}.{} stopped at half-width {}",
            s.module,
            s.input_signal,
            s.max_half_width
        );
        assert!(
            s.runs_saved > 0,
            "{}.{} saved nothing",
            s.module,
            s.input_signal
        );
    }
}

#[test]
fn adaptive_campaign_is_thread_count_invariant() {
    // The planner only recomputes batches at batch barriers, so the sampled
    // coordinate set — and with it every downstream estimate — must not
    // depend on worker scheduling.
    let f = factory();
    let seq = Campaign::new(&f, config(1))
        .run(&spec(Some(plan())))
        .unwrap();
    let par = Campaign::new(&f, config(4))
        .run(&spec(Some(plan())))
        .unwrap();
    assert_eq!(seq, par);
}

#[test]
fn interrupted_adaptive_campaign_resumes_byte_identically() {
    let f = factory();
    let c = Campaign::new(&f, config(0));
    let spec = spec(Some(plan()));
    let header = c.journal_header(&spec);

    let path = std::env::temp_dir().join(format!(
        "permea-adaptive-resume-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
    let baseline = c.run_resumable(&spec, Some(&mut j), None).unwrap();
    drop(j);

    // Simulate a kill partway through: keep the header and a prefix of the
    // journaled runs, then resume. The planner must replay its own recorded
    // decisions and land on the identical result.
    let text = std::fs::read_to_string(&path).unwrap();
    for keep in [0, 1, 37, baseline.total_runs as usize - 1] {
        let kept: String = text
            .lines()
            .take(1 + keep)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, kept).unwrap();
        let (mut j, loaded) = RunJournal::open_or_create(&path, &header).unwrap();
        assert_eq!(loaded.recovered, keep);
        let resumed = c.run_resumable(&spec, Some(&mut j), None).unwrap();
        drop(j);
        assert_eq!(resumed, baseline, "diverged after resuming {keep} runs");
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serde_json::to_string(&baseline).unwrap(),
            "serialised artifacts differ after resuming {keep} runs"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Owned copy of the adaptive telemetry an [`permea::obs::Sink`] sees —
/// the borrowed `StratumCi` slices in events cannot outlive the emit call.
#[derive(Debug, Default)]
struct AdaptiveEventLog {
    /// `(round, batch_runs, strata snapshots)` per batch barrier.
    batches: std::sync::Mutex<Vec<(u64, u64, Vec<permea::obs::StratumCi>)>>,
    /// `(target, module, reason)` per stratum close.
    closes: std::sync::Mutex<Vec<(u32, String, String)>>,
}

impl permea::obs::Sink for AdaptiveEventLog {
    fn event(&self, _now: u64, event: &permea::obs::Event<'_>) {
        match event {
            permea::obs::Event::AdaptiveBatch {
                round,
                batch_runs,
                strata,
                ..
            } => self
                .batches
                .lock()
                .unwrap()
                .push((*round, *batch_runs, strata.to_vec())),
            permea::obs::Event::StratumClosed {
                target,
                module,
                reason,
                ..
            } => self.closes.lock().unwrap().push((
                *target,
                (*module).to_owned(),
                (*reason).to_owned(),
            )),
            _ => {}
        }
    }
}

#[test]
fn adaptive_campaign_emits_batch_snapshots_and_close_events() {
    let f = factory();
    let log = std::sync::Arc::new(AdaptiveEventLog::default());
    let obs = permea::obs::Obs::with_sinks(vec![log.clone()]);
    Campaign::new(&f, config(0))
        .with_obs(obs.clone())
        .run(&spec(Some(plan())))
        .unwrap();

    let batches = log.batches.lock().unwrap();
    let snap = obs.snapshot().unwrap();
    let rounds = snap.counter("adaptive.batches").unwrap();
    // One snapshot per allocated round plus the final empty batch that
    // closes the convergence curves.
    assert_eq!(batches.len() as u64, rounds + 1);
    let (_, final_runs, final_strata) = batches.last().unwrap();
    assert_eq!(*final_runs, 0, "final barrier allocates nothing");
    assert_eq!(final_strata.len(), 4, "one stratum per target");
    assert!(final_strata.iter().all(|s| s.closed));
    for window in batches.windows(2) {
        assert!(
            window[0].0 <= window[1].0,
            "rounds must not go backwards (the final empty batch repeats \
             the last allocated round)"
        );
        for (a, b) in window[0].2.iter().zip(&window[1].2) {
            assert!(
                b.executed >= a.executed && b.trials >= a.trials,
                "per-stratum counts must be cumulative"
            );
        }
    }
    // Half-widths start vacuous (0.5 at n=0 under Wilson) and end at or
    // below the plan's goal for CI-closed strata.
    for s in final_strata {
        assert!(s.half_width.is_finite() && s.half_width <= 0.5 + 1e-12);
    }

    let closes = log.closes.lock().unwrap();
    assert_eq!(closes.len(), 4, "every stratum closes exactly once");
    let mut targets: Vec<u32> = closes.iter().map(|(t, _, _)| *t).collect();
    targets.sort_unstable();
    assert_eq!(targets, [0, 1, 2, 3]);
    for (_, module, reason) in closes.iter() {
        assert!(["B", "D", "E"].contains(&module.as_str()));
        assert!(
            ["ci_reached", "budget_exhausted", "ranking_stable"].contains(&reason.as_str()),
            "unexpected close reason {reason}"
        );
    }
}
