//! End-to-end tests of the supervised worker-process pool
//! (`IsolationMode::Process`): hard faults that would kill an in-process
//! campaign — `abort()`, non-cooperative spins — only kill their worker,
//! get classified, retried and quarantined, and the campaign completes
//! with results byte-identical to in-process execution.
//!
//! The worker processes are re-execs of this very test binary: the
//! supervisor launches it filtered down to [`ipc_worker_entry`] with
//! `PERMEA_TEST_WORKER=1`, which drops straight into
//! [`permea::fi::process::run_worker`]. Companion probe tests demonstrate
//! that the same faults are fatal under `IsolationMode::InProcess` — the
//! behaviour this subsystem exists to fix.
#![cfg(unix)]

use permea::fi::campaign::{Campaign, CampaignConfig, FnSystemFactory, SystemFactory};
use permea::fi::journal::RunJournal;
use permea::fi::model::ErrorModel;
use permea::fi::outcome::RunOutcome;
use permea::fi::process::{run_worker, IsolationMode, ProcessIsolation, WorkerCommand};
use permea::fi::spec::{CampaignSpec, InjectionScope, PortTarget};
use permea::runtime::module::{ModuleCtx, SoftwareModule};
use permea::runtime::scheduler::Schedule;
use permea::runtime::signals::{SignalBus, SignalRef};
use permea::runtime::sim::{Environment, Simulation, SimulationBuilder};
use permea::runtime::time::SimTime;
use permea_obs::Obs;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// What the `DUT` module does when it observes an injected value (any
/// value with bit 15 set — the un-injected environment never produces one).
#[derive(Debug, Clone)]
enum FaultMode {
    /// Plain copy: the injected value propagates, nothing breaks.
    Benign,
    /// `abort()` — takes the whole process down with SIGABRT.
    Abort,
    /// A non-cooperative spin: never calls `work`, never finishes the
    /// tick, so the cooperative watchdog cannot see it. Only a hard
    /// wall-clock deadline from outside the process bounds it.
    Hang,
    /// Transient crash: aborts once (dropping a marker file), behaves
    /// benignly on every later attempt — an OOM-kill/cosmic-ray stand-in
    /// that a retry absorbs.
    AbortOnce(PathBuf),
}

impl FaultMode {
    fn to_payload(&self) -> String {
        match self {
            FaultMode::Benign => "benign".to_owned(),
            FaultMode::Abort => "abort".to_owned(),
            FaultMode::Hang => "hang".to_owned(),
            FaultMode::AbortOnce(marker) => format!("abort-once:{}", marker.display()),
        }
    }

    fn from_payload(payload: &str) -> Result<Self, String> {
        match payload {
            "benign" => Ok(FaultMode::Benign),
            "abort" => Ok(FaultMode::Abort),
            "hang" => Ok(FaultMode::Hang),
            other => other
                .strip_prefix("abort-once:")
                .map(|p| FaultMode::AbortOnce(PathBuf::from(p)))
                .ok_or_else(|| format!("unknown fault mode `{other}`")),
        }
    }
}

struct FaultyCopy {
    mode: FaultMode,
}

impl SoftwareModule for FaultyCopy {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        if v & 0x8000 != 0 {
            match &self.mode {
                FaultMode::Benign => {}
                FaultMode::Abort => std::process::abort(),
                FaultMode::Hang => loop {
                    std::hint::spin_loop();
                },
                FaultMode::AbortOnce(marker) => {
                    if !marker.exists() {
                        let _ = std::fs::write(marker, b"tripped");
                        std::process::abort();
                    }
                }
            }
        }
        ctx.write(0, v);
    }
}

struct ConstEnv {
    sensor: SignalRef,
    limit: u64,
}

impl Environment for ConstEnv {
    fn pre_tick(&mut self, _: SimTime, bus: &mut SignalBus) {
        // Always below 0x8000: only an injected bit-15 flip can trigger
        // the fault, so golden runs (supervisor- and worker-side) and
        // non-triggering injections are always safe.
        bus.write(self.sensor, 100);
    }
    fn post_tick(&mut self, _: SimTime, _: &mut SignalBus) {}
    fn finished(&self, now: SimTime) -> bool {
        now.as_millis() >= self.limit
    }
}

fn build_sim(_case: usize, mode: FaultMode) -> Simulation {
    let mut b = SimulationBuilder::new();
    let sensor = b.define_signal("sensor");
    let out = b.define_signal("out");
    b.add_module(
        "DUT",
        Box::new(FaultyCopy { mode }),
        Schedule::every_ms(),
        &[sensor],
        &[out],
    );
    let mut sim = b.build(Box::new(ConstEnv { sensor, limit: 80 }));
    sim.enable_tracing_all();
    sim
}

fn factory_for(mode: FaultMode) -> FnSystemFactory<impl Fn(usize) -> Simulation + Sync> {
    FnSystemFactory::new(1, 10_000, move |case| build_sim(case, mode.clone()))
}

fn spec(bits: &[u8], times_ms: Vec<u64>) -> CampaignSpec {
    CampaignSpec {
        targets: vec![PortTarget::new("DUT", "sensor")],
        models: bits
            .iter()
            .map(|&bit| ErrorModel::BitFlip { bit })
            .collect(),
        times_ms,
        cases: 1,
        scope: InjectionScope::Port,
        adaptive: None,
    }
}

/// A worker command that re-execs this test binary straight into
/// [`ipc_worker_entry`].
fn worker_command() -> WorkerCommand {
    let mut command = WorkerCommand::current_exe(vec![
        "ipc_worker_entry".to_owned(),
        "--exact".to_owned(),
        "--nocapture".to_owned(),
    ])
    .expect("current test binary resolves");
    command
        .envs
        .push(("PERMEA_TEST_WORKER".to_owned(), "1".to_owned()));
    command
}

/// Not a test of anything by itself: when `PERMEA_TEST_WORKER=1`, this is
/// the main loop of a worker process spawned by the supervisor tests
/// below. In a normal test-suite invocation it is a no-op.
#[test]
fn ipc_worker_entry() {
    if std::env::var("PERMEA_TEST_WORKER").as_deref() != Ok("1") {
        return;
    }
    let code = run_worker(|payload| {
        FaultMode::from_payload(payload)
            .map(|mode| Box::new(factory_for(mode)) as Box<dyn SystemFactory>)
    });
    std::process::exit(i32::from(code));
}

#[test]
fn deterministic_abort_is_classified_crashed_and_the_campaign_survives() {
    let mut pool = ProcessIsolation::new(worker_command(), FaultMode::Abort.to_payload());
    pool.workers = 1;
    pool.retry_backoff_ms = 1;
    let factory = factory_for(FaultMode::Abort);
    let obs = Obs::with_sinks(Vec::new());
    let campaign = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            max_quarantined_fraction: 1.0,
            isolation: IsolationMode::Process(pool),
            ..CampaignConfig::default()
        },
    )
    .with_obs(obs.clone());
    let s = spec(&[15], vec![10]);

    let path =
        std::env::temp_dir().join(format!("permea-process-abort-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let header = campaign.journal_header(&s);
    let (mut journal, _) = RunJournal::open_or_create(&path, &header).unwrap();
    let result = campaign
        .run_resumable(&s, Some(&mut journal), None)
        .unwrap();

    assert_eq!(result.total_runs, 1);
    assert_eq!(result.outcomes.crashed, 1);
    match &result.records[0].outcome {
        RunOutcome::Crashed { signal, .. } => {
            assert_eq!(*signal, Some(6), "abort() dies by SIGABRT")
        }
        other => panic!("expected Crashed, got {other:?}"),
    }
    // The identical SIGABRT on the retry quarantines the coordinate after
    // exactly two attempts, and the journal records the count.
    assert_eq!(journal.attempts().get(&0).copied(), Some(2));
    let snap = obs.snapshot().unwrap();
    assert_eq!(snap.counter("campaign.runs_crashed"), Some(1));
    drop(journal);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn hard_hang_is_killed_at_the_wall_clock_deadline() {
    let mut pool = ProcessIsolation::new(worker_command(), FaultMode::Hang.to_payload());
    pool.workers = 1;
    pool.run_timeout_ms = 800;
    pool.retry_backoff_ms = 1;
    let factory = factory_for(FaultMode::Hang);
    let obs = Obs::with_sinks(Vec::new());
    let campaign = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            max_quarantined_fraction: 1.0,
            max_retries: 0,
            isolation: IsolationMode::Process(pool),
            ..CampaignConfig::default()
        },
    )
    .with_obs(obs.clone());
    let started = Instant::now();
    let result = campaign.run(&spec(&[15], vec![10])).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a non-cooperative spin must be bounded by the hard deadline"
    );
    assert_eq!(result.outcomes.hung, 1);
    assert!(matches!(
        result.records[0].outcome,
        RunOutcome::Hung { last_tick_ms: 0 }
    ));
    let snap = obs.snapshot().unwrap();
    assert!(snap.counter("process.worker_kills").unwrap_or(0) >= 1);
}

#[test]
fn transient_worker_death_is_retried_and_matches_the_in_process_result() {
    let marker =
        std::env::temp_dir().join(format!("permea-process-once-{}.marker", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    let mut pool = ProcessIsolation::new(
        worker_command(),
        FaultMode::AbortOnce(marker.clone()).to_payload(),
    );
    pool.workers = 1;
    pool.retry_backoff_ms = 1;
    let factory = factory_for(FaultMode::Benign);
    let obs = Obs::with_sinks(Vec::new());
    let s = spec(&[15], vec![10]);
    let result = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            isolation: IsolationMode::Process(pool),
            ..CampaignConfig::default()
        },
    )
    .with_obs(obs.clone())
    .run(&s)
    .unwrap();
    let _ = std::fs::remove_file(&marker);

    let baseline = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        },
    )
    .run(&s)
    .unwrap();
    assert_eq!(
        result, baseline,
        "a retried transient crash must not change any result bit"
    );
    assert_eq!(result.outcomes.completed, 1);
    let snap = obs.snapshot().unwrap();
    assert!(snap.counter("process.worker_respawns").unwrap_or(0) >= 1);
    assert!(snap.counter("process.run_retries").unwrap_or(0) >= 1);
}

#[test]
fn crash_storm_trips_the_breaker_and_completes_in_process() {
    // A worker command that can never spawn, with a zero respawn budget:
    // the circuit breaker trips immediately and the whole campaign
    // degrades to the in-process executor.
    let command = WorkerCommand {
        program: "/nonexistent/permea-worker".to_owned(),
        args: Vec::new(),
        envs: Vec::new(),
    };
    let mut pool = ProcessIsolation::new(command, FaultMode::Benign.to_payload());
    pool.workers = 1;
    pool.retry_backoff_ms = 1;
    pool.max_worker_respawns = 0;
    let factory = factory_for(FaultMode::Benign);
    let s = spec(&[0, 1], vec![10]);
    let result = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            isolation: IsolationMode::Process(pool),
            ..CampaignConfig::default()
        },
    )
    .run(&s)
    .unwrap();
    let baseline = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        },
    )
    .run(&s)
    .unwrap();
    assert_eq!(result, baseline);
    assert_eq!(result.outcomes.completed, 2);
}

/// Probe body (env-gated): runs the abort campaign under
/// `IsolationMode::InProcess`. The abort is expected to take this whole
/// process down; exiting 0 means it survived.
#[test]
fn inprocess_abort_probe() {
    if std::env::var("PERMEA_TEST_INPROCESS_ABORT").as_deref() != Ok("1") {
        return;
    }
    let factory = factory_for(FaultMode::Abort);
    let campaign = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            max_quarantined_fraction: 1.0,
            ..CampaignConfig::default()
        },
    );
    let _ = campaign.run(&spec(&[15], vec![10]));
    std::process::exit(0);
}

/// The in-process executor cannot survive `abort()` — exactly what
/// process isolation fixes. Runs the probe above in a child process and
/// asserts the child dies by SIGABRT instead of completing the campaign.
#[test]
fn abort_kills_the_campaign_without_process_isolation() {
    use std::os::unix::process::ExitStatusExt;
    let exe = std::env::current_exe().unwrap();
    let status = Command::new(exe)
        .args(["inprocess_abort_probe", "--exact", "--nocapture"])
        .env("PERMEA_TEST_INPROCESS_ABORT", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(
        status.signal(),
        Some(6),
        "the in-process campaign must die with the aborting run"
    );
}

/// Probe body (env-gated): runs the non-cooperative-spin campaign under
/// `IsolationMode::InProcess`. The spin never polls the cooperative
/// watchdog, so this process is expected to hang forever.
#[test]
fn inprocess_hang_probe() {
    if std::env::var("PERMEA_TEST_INPROCESS_HANG").as_deref() != Ok("1") {
        return;
    }
    let factory = factory_for(FaultMode::Hang);
    let campaign = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            max_quarantined_fraction: 1.0,
            ..CampaignConfig::default()
        },
    );
    let _ = campaign.run(&spec(&[15], vec![10]));
    std::process::exit(0);
}

/// The cooperative watchdog cannot bound a spin that never cooperates:
/// in-process, the campaign hangs indefinitely (we give it two seconds,
/// then kill it). The process-mode counterpart above finishes the same
/// campaign in under its 800 ms deadline plus overhead.
#[test]
fn hard_hang_outlives_the_in_process_watchdog() {
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args(["inprocess_hang_probe", "--exact", "--nocapture"])
        .env("PERMEA_TEST_INPROCESS_HANG", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut exited = None;
    while Instant::now() < deadline {
        if let Some(status) = child.try_wait().unwrap() {
            exited = Some(status);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(
        exited.is_none(),
        "the in-process campaign was expected to hang on the spin, \
         but exited with {exited:?}"
    );
}
