//! Property-based tests for the fault-injection machinery.

use permea::fi::campaign::{Campaign, CampaignConfig, FnSystemFactory};
use permea::fi::prelude::*;
use permea::runtime::module::{ModuleCtx, SoftwareModule};
use permea::runtime::scheduler::Schedule;
use permea::runtime::signals::{SignalBus, SignalRef};
use permea::runtime::sim::{Environment, Simulation, SimulationBuilder};
use permea::runtime::time::SimTime;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Minimal one-module system for journal round-trip properties: the
/// environment ramps `src`, `MIX` scrambles it into `out`.
struct Mixer;
impl SoftwareModule for Mixer {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        ctx.write(0, v.rotate_left(3) ^ 0x5A5A);
    }
}

struct RampEnv {
    src: SignalRef,
    base: u16,
    limit: u64,
}
impl Environment for RampEnv {
    fn pre_tick(&mut self, now: SimTime, bus: &mut SignalBus) {
        let t = now.as_millis();
        bus.write(self.src, self.base.wrapping_add(t as u16).wrapping_mul(13));
    }
    fn post_tick(&mut self, _: SimTime, _: &mut SignalBus) {}
    fn finished(&self, now: SimTime) -> bool {
        now.as_millis() >= self.limit
    }
}

fn tiny_build(case: usize) -> Simulation {
    let mut b = SimulationBuilder::new();
    let src = b.define_signal("src");
    let out = b.define_signal("out");
    b.add_module("MIX", Box::new(Mixer), Schedule::every_ms(), &[src], &[out]);
    let mut sim = b.build(Box::new(RampEnv {
        src,
        base: 0x7AB1u16.wrapping_mul(case as u16 + 1),
        limit: 120 + 10 * case as u64,
    }));
    sim.enable_tracing_all();
    sim
}

fn tiny_factory() -> FnSystemFactory<fn(usize) -> Simulation> {
    FnSystemFactory::new(2, 1_000, tiny_build as fn(usize) -> Simulation)
}

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        targets: vec![PortTarget::new("MIX", "src")],
        models: vec![
            ErrorModel::BitFlip { bit: 0 },
            ErrorModel::BitFlip { bit: 5 },
            ErrorModel::BitFlip { bit: 9 },
            ErrorModel::BitFlip { bit: 15 },
        ],
        times_ms: vec![13, 77],
        cases: 2,
        scope: InjectionScope::Port,
        adaptive: None,
    }
}

fn arbitrary_model() -> impl Strategy<Value = ErrorModel> {
    prop_oneof![
        (0u8..16).prop_map(|bit| ErrorModel::BitFlip { bit }),
        (0u8..16).prop_map(|bit| ErrorModel::StuckAtOne { bit }),
        (0u8..16).prop_map(|bit| ErrorModel::StuckAtZero { bit }),
        any::<i16>().prop_map(|delta| ErrorModel::Offset { delta }),
        Just(ErrorModel::RandomValue),
        Just(ErrorModel::Zero),
        Just(ErrorModel::Saturate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn models_are_deterministic_under_seed(model in arbitrary_model(), value in any::<u16>(), seed in any::<u64>()) {
        let a = model.apply(value, &mut SmallRng::seed_from_u64(seed));
        let b = model.apply(value, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bit_flips_are_involutions(bit in 0u8..16, value in any::<u16>()) {
        let m = ErrorModel::BitFlip { bit };
        let mut rng = SmallRng::seed_from_u64(0);
        let once = m.apply(value, &mut rng);
        prop_assert_ne!(once, value);
        prop_assert_eq!(m.apply(once, &mut rng), value);
    }

    #[test]
    fn stuck_at_models_are_idempotent(bit in 0u8..16, value in any::<u16>()) {
        let mut rng = SmallRng::seed_from_u64(0);
        for m in [ErrorModel::StuckAtOne { bit }, ErrorModel::StuckAtZero { bit }] {
            let once = m.apply(value, &mut rng);
            prop_assert_eq!(m.apply(once, &mut rng), once);
        }
    }

    #[test]
    fn offsets_compose_additively(a in any::<i16>(), b in any::<i16>(), value in any::<u16>()) {
        let mut rng = SmallRng::seed_from_u64(0);
        let via_two = ErrorModel::Offset { delta: b }
            .apply(ErrorModel::Offset { delta: a }.apply(value, &mut rng), &mut rng);
        let direct = value
            .wrapping_add(a as u16)
            .wrapping_add(b as u16);
        prop_assert_eq!(via_two, direct);
    }

    #[test]
    fn spec_coordinates_form_an_exact_bijection(
        targets in 1usize..4,
        models in 1usize..5,
        times in 1usize..4,
        cases in 1usize..5,
    ) {
        let spec = CampaignSpec {
            targets: (0..targets).map(|i| PortTarget::new(format!("M{i}"), "s")).collect(),
            models: (0..models as u8).map(|bit| ErrorModel::BitFlip { bit }).collect(),
            times_ms: (0..times as u64).map(|k| 100 * (k + 1)).collect(),
            cases,
            scope: InjectionScope::Port,
            adaptive: None,
        };
        let coords: Vec<_> = spec.coordinates().collect();
        prop_assert_eq!(coords.len(), spec.run_count());
        let unique: std::collections::HashSet<_> = coords.iter().collect();
        prop_assert_eq!(unique.len(), coords.len());
        for &(t, m, w, c) in &coords {
            prop_assert!(t < targets && m < models && w < times && c < cases);
        }
    }

    #[test]
    fn wilson_contains_the_point_estimate(errors_raw in 0u64..5000, trials in 1u64..5000) {
        let errors = errors_raw % (trials + 1);
        let p = errors as f64 / trials as f64;
        let (lo, hi) = wilson_interval(errors, trials, 1.96);
        prop_assert!(lo <= p + 1e-12, "lo {lo} > p {p}");
        prop_assert!(hi >= p - 1e-12, "hi {hi} < p {p}");
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi);
    }

    #[test]
    fn wilson_narrows_with_more_trials(errors in 0u64..100, scale in 2u64..50) {
        let trials = 100u64;
        let (lo1, hi1) = wilson_interval(errors, trials, 1.96);
        let (lo2, hi2) = wilson_interval(errors * scale, trials * scale, 1.96);
        prop_assert!(hi2 - lo2 <= hi1 - lo1 + 1e-12);
    }

    #[test]
    fn journal_resume_after_truncation_is_exact(
        keep in 0usize..=16,
        torn_len in 0usize..40,
        torn_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        // Pseudo-random torn-tail bytes from a plain LCG (the vendored
        // proptest has no `collection::vec` strategy).
        let mut x = torn_seed;
        let torn: Vec<u8> = (0..torn_len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect();
        // Kill -9 at an arbitrary point leaves the journal with some prefix
        // of complete records plus possibly a torn tail of garbage bytes.
        // Resuming from any such journal must reproduce the uninterrupted
        // campaign bit for bit.
        let f = tiny_factory();
        let config = CampaignConfig {
            threads: 1,
            master_seed: seed,
            ..CampaignConfig::default()
        };
        let spec = tiny_spec();
        let baseline = Campaign::new(&f, config.clone()).run(&spec).unwrap();

        let path = std::env::temp_dir()
            .join(format!("permea-prop-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let c = Campaign::new(&f, config);
        let header = c.journal_header(&spec);
        let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
        c.run_resumable(&spec, Some(&mut j), None).unwrap();
        drop(j);

        // Keep the header plus `keep` records, then splice in torn bytes.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut kept: Vec<u8> = text
            .lines()
            .take(1 + keep)
            .flat_map(|l| format!("{l}\n").into_bytes())
            .collect();
        kept.extend_from_slice(&torn);
        std::fs::write(&path, kept).unwrap();

        let (mut j, loaded) = RunJournal::open_or_create(&path, &header).unwrap();
        prop_assert_eq!(loaded.recovered, keep);
        let resumed = c.run_resumable(&spec, Some(&mut j), None).unwrap();
        drop(j);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(resumed, baseline);
    }

    #[test]
    fn journal_bit_flips_are_rejected_with_the_line_number(
        entry in 0usize..15,
        byte_pick in any::<u64>(),
        bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        // Flip one bit anywhere inside a non-final record line (CRC
        // prefix, separator or JSON payload — everything but the
        // newline): reopening must reject the journal as corrupt and
        // name the physical line, never silently resume over the hole.
        let f = tiny_factory();
        let config = CampaignConfig {
            threads: 1,
            master_seed: seed,
            ..CampaignConfig::default()
        };
        let spec = tiny_spec();
        let path = std::env::temp_dir()
            .join(format!("permea-prop-crc-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let c = Campaign::new(&f, config);
        let header = c.journal_header(&spec);
        let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
        c.run_resumable(&spec, Some(&mut j), None).unwrap();
        drop(j);

        let mut data = std::fs::read(&path).unwrap();
        // Byte offsets of each line start; line 0 is the header, so the
        // targeted record line is at index `entry + 1` (1-based physical
        // line `entry + 2`).
        let mut starts = vec![0usize];
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' && i + 1 < data.len() {
                starts.push(i + 1);
            }
        }
        prop_assert!(starts.len() >= 17, "expected 16 record lines");
        let line_start = starts[entry + 1];
        let line_len = data[line_start..]
            .iter()
            .position(|&b| b == b'\n')
            .unwrap();
        let target = line_start + (byte_pick as usize % line_len);
        let mut flip = 1u8 << bit;
        // One flip is value-preserving: bit 5 of a hex letter in the CRC
        // prefix only changes its case, which `from_str_radix` accepts.
        // Redirect that single combination to a value-changing bit.
        if target < line_start + 8 && flip == 0x20 && data[target].is_ascii_alphabetic() {
            flip = 0x01;
        }
        data[target] ^= flip;
        std::fs::write(&path, &data).unwrap();

        let reopened = RunJournal::open_or_create(&path, &header);
        let _ = std::fs::remove_file(&path);
        match reopened {
            Err(FiError::JournalCorrupt { line }) => prop_assert_eq!(line, entry + 2),
            Err(other) => prop_assert!(false, "expected JournalCorrupt, got {:?}", other),
            Ok(_) => prop_assert!(false, "corrupt journal was accepted"),
        }
    }

    #[test]
    fn shard_partitions_are_disjoint_and_covering(count in 1usize..8, total in 0u64..300) {
        let shards: Vec<Shard> = (0..count)
            .map(|i| Shard::new(i, count).unwrap())
            .collect();
        let mut seen = vec![0u32; total as usize];
        for s in &shards {
            let mut expected = 0u64;
            for pos in s.positions(total) {
                prop_assert!(pos < total);
                prop_assert!(s.owns(pos), "{s} yielded {pos} it does not own");
                seen[pos as usize] += 1;
                expected += 1;
            }
            prop_assert_eq!(expected, s.len(total), "{}", s);
            prop_assert_eq!(s.is_empty(total), expected == 0);
        }
        // Every position is owned by exactly one shard.
        prop_assert!(seen.iter().all(|&n| n == 1));
        // Ownership is a pure function of the position, independent of
        // enumeration order or how work is claimed across threads.
        for pos in 0..total {
            prop_assert_eq!(shards.iter().filter(|s| s.owns(pos)).count(), 1);
        }
    }

    #[test]
    fn pair_stat_estimate_is_a_probability(errors_raw in any::<u64>(), injections in 1u64..1_000_000) {
        let errors = errors_raw % (injections + 1);
        let stat = PairStat {
            module: "M".into(),
            input_signal: "i".into(),
            output_signal: "o".into(),
            input: 0,
            output: 0,
            injections,
            errors,
        };
        prop_assert!((0.0..=1.0).contains(&stat.estimate()));
    }
}

proptest! {
    // Each case runs ~3(count+1) tiny campaigns; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_campaigns_are_thread_invariant_and_cover_the_grid(
        seed in any::<u64>(),
        count in 1usize..4,
    ) {
        // A shard's result set depends only on (index, count) and the
        // master seed — never on the thread count — and the shards
        // together execute exactly the unsharded grid.
        let f = tiny_factory();
        let spec = tiny_spec();
        let config = |threads: usize, shard: Option<Shard>| CampaignConfig {
            threads,
            master_seed: seed,
            shard,
            ..CampaignConfig::default()
        };
        let baseline = Campaign::new(&f, config(1, None)).run(&spec).unwrap();
        let mut union: Vec<String> = Vec::new();
        for i in 0..count {
            let shard = Some(Shard::new(i, count).unwrap());
            let solo = Campaign::new(&f, config(1, shard)).run(&spec).unwrap();
            let threaded = Campaign::new(&f, config(3, shard)).run(&spec).unwrap();
            prop_assert_eq!(&solo, &threaded, "shard {}/{} varies with threads", i, count);
            union.extend(solo.records.iter().map(|r| format!("{r:?}")));
        }
        let mut expected: Vec<String> =
            baseline.records.iter().map(|r| format!("{r:?}")).collect();
        union.sort();
        expected.sort();
        prop_assert_eq!(union, expected);
    }
}
