//! Does per-module permeability compose into system-level vulnerability?
//!
//! The framework's value proposition is that per-module permeabilities —
//! estimated once — let you *predict* where system-level vulnerabilities
//! are without injecting at every point. This example tests that claim on
//! the arrestment system: it composes the estimated permeabilities along
//! the backtrack-tree paths into a predicted `P(system input → TOC2)` and
//! compares against a direct measurement.
//!
//! Run with: `cargo run --release --example composition_validation`

use permea::analysis::study::{Study, StudyConfig};
use permea::analysis::validation::{
    orderings_agree, render_validation, validate_composition, ValidationConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("estimating per-module permeabilities (quick campaign)...");
    let study = Study::new(StudyConfig::quick()).run()?;

    eprintln!("measuring end-to-end propagation directly...");
    let rows = validate_composition(&study, &ValidationConfig::default())?;

    print!("{}", render_validation(&rows));
    println!(
        "\nrelative orderings agree: {}",
        if orderings_agree(&rows, 0.1) {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "(exact agreement is not expected: path composition assumes\n\
         independent single-pass propagation; the ordering is what the\n\
         paper's design guidance relies on)"
    );
    Ok(())
}
