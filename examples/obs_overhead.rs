//! Measures telemetry overhead on the quick study: the identical campaign
//! with the disabled `Obs` handle (every instrument a branch-and-skip
//! no-op), with live instruments aggregating into the in-memory registry,
//! and with the JSONL event log attached. Results must be identical; only
//! wall-clock may differ. The numbers land in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example obs_overhead
//! ```

use permea_analysis::study::{Study, StudyConfig};
use permea_obs::{JsonlSink, Obs, Sink};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut config = StudyConfig::quick();
    config.threads = 1;
    let events_path =
        std::env::temp_dir().join(format!("permea-obs-overhead-{}.jsonl", std::process::id()));

    let mut baseline = None;
    for label in ["disabled", "registry", "jsonl events"] {
        let obs = match label {
            "disabled" => Obs::disabled(),
            "registry" => Obs::with_sinks(Vec::new()),
            _ => {
                let sink: Arc<dyn Sink> =
                    Arc::new(JsonlSink::create(&events_path).expect("temp event log"));
                Obs::with_sinks(vec![sink])
            }
        };
        let study = Study::new(config.clone()).with_obs(obs);
        let started = Instant::now();
        let out = study.run().expect("quick study runs");
        let secs = started.elapsed().as_secs_f64();
        let overhead = baseline
            .map(|b: f64| format!("{:+.1}% vs disabled", (secs / b - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".to_owned());
        baseline.get_or_insert(secs);
        println!(
            "{label:<13} {secs:>6.1}s  ({} runs)  {overhead}",
            out.result.total_runs
        );
    }
    let _ = std::fs::remove_file(&events_path);
}
