//! The paper's experiment, end to end: fault-inject the aircraft-arrestment
//! controller, estimate the error permeability of all 25 input/output pairs,
//! and regenerate Tables 1–4 plus the shape checks against the paper.
//!
//! Run with: `cargo run --release --example arrestment_study [-- --full]`
//!
//! The default (quick) configuration keeps the full structure — all 13 input
//! ports, all 16 bit positions — on a reduced workload grid; `--full` runs
//! the paper's 52 000-injection campaign.

use permea::analysis::checks::{render_checks, run_shape_checks};
use permea::analysis::study::{Study, StudyConfig};
use permea::analysis::tables;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        StudyConfig::paper()
    } else {
        StudyConfig::quick()
    };
    eprintln!(
        "running the {} study ({} injections)...",
        if full { "full paper" } else { "quick" },
        config
            .spec(&permea::arrestment::ArrestmentSystem::topology())
            .run_count()
    );

    let out = Study::new(config).run()?;

    print!("{}", tables::render_table1(&out.topology, &out.matrix));
    println!();
    print!("{}", tables::render_table2(&out.topology, &out.measures));
    println!();
    print!("{}", tables::render_table3(&out.topology, &out.measures));
    println!();
    print!(
        "{}",
        tables::render_table4(&out.topology, &out.toc2_paths, true)
    );
    println!();
    print!("{}", render_checks(&run_shape_checks(&out)));
    Ok(())
}
