//! EDM/ERM placement, quantified (Section 5 and observations OB3–OB6).
//!
//! Part 1 compares detector placements under a system-wide error
//! population: the same calibrated assertion stack is attached to each
//! candidate signal, and coverage of system-output failures is measured —
//! including *preemptive* coverage (fired before the error reached `TOC2`),
//! the number that actually matters for recovery.
//!
//! Part 2 splices hold-last-good recovery guards onto the recommended
//! locations (`SetValue`, `OutValue` — the signals on every non-zero
//! propagation path) and onto a naive alternative (`IsValue`), and compares
//! how many system failures each choice eliminates.
//!
//! Run with: `cargo run --release --example edm_placement`

use permea::analysis::placement_experiment::{
    detection_comparison, recovery_comparison, render_coverage, PlacementConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PlacementConfig::quick();

    eprintln!("part 1: detector placement comparison...");
    let coverage = detection_comparison(
        &config,
        &["SetValue", "OutValue", "i", "pulscnt", "IsValue", "mscnt"],
    )?;
    print!("{}", render_coverage(&coverage));

    eprintln!("\npart 2: recovery guard comparison...");
    let guided = recovery_comparison(&config, &["SetValue", "OutValue"])?;
    let naive = recovery_comparison(&config, &["IsValue"])?;
    println!("\nRecovery guards on the exposure-guided locations (SetValue, OutValue):");
    println!(
        "  failures {} -> {}  ({:.0}% eliminated)",
        guided.baseline_failures,
        guided.guarded_failures,
        guided.failure_reduction() * 100.0
    );
    println!("Recovery guard on the naive location (IsValue):");
    println!(
        "  failures {} -> {}  ({:.0}% eliminated)",
        naive.baseline_failures,
        naive.guarded_failures,
        naive.failure_reduction() * 100.0
    );
    println!(
        "\nOB3/OB5: a mechanism at a high-exposure location outperforms an\n\
         equally good mechanism at a location errors rarely pass through."
    );
    Ok(())
}
