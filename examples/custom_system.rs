//! Bringing your own system: build a custom controller on `permea-runtime`,
//! estimate its permeability with `permea-fi`, and analyse it with
//! `permea-core` — the adoption path for systems other than the paper's.
//!
//! The system is a small thermostat: a sensor filter smooths a noisy
//! temperature reading, a bang-bang controller drives a heater command.
//!
//! ```text
//! temp_raw -> [FILTER] -> temp -> [CONTROL] -> heater (system output)
//! ```
//!
//! Run with: `cargo run --release --example custom_system`

use permea::core::prelude::*;
use permea::fi::prelude::*;
use permea::runtime::prelude::*;

/// Exponential smoothing filter: `state += (raw - state) / 4`.
struct Filter {
    state: i32,
}

impl SoftwareModule for Filter {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let raw = ctx.read(0) as i32;
        self.state += (raw - self.state) / 4;
        ctx.write_on_change(0, self.state.clamp(0, u16::MAX as i32) as u16);
    }
    fn reset(&mut self) {
        self.state = 0;
    }
}

/// Bang-bang controller with hysteresis around a fixed set-point (2000).
struct Control {
    heating: bool,
}

impl SoftwareModule for Control {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let temp = ctx.read(0);
        if temp < 1950 {
            self.heating = true;
        } else if temp > 2050 {
            self.heating = false;
        }
        ctx.write_bool_on_change(0, self.heating);
    }
    fn reset(&mut self) {
        self.heating = false;
    }
}

/// A little thermal world: temperature decays towards ambient and rises
/// while the heater is on.
struct ThermalEnv {
    temp: f64,
    temp_raw: SignalRef,
    heater: SignalRef,
    limit: u64,
}

impl Environment for ThermalEnv {
    fn pre_tick(&mut self, _now: SimTime, bus: &mut SignalBus) {
        bus.write(self.temp_raw, self.temp.round().clamp(0.0, 65535.0) as u16);
    }
    fn post_tick(&mut self, _now: SimTime, bus: &mut SignalBus) {
        let heating = bus.read(self.heater) != 0;
        let ambient = 1500.0;
        self.temp += (ambient - self.temp) * 0.001 + if heating { 3.0 } else { 0.0 };
    }
    fn finished(&self, now: SimTime) -> bool {
        now.as_millis() >= self.limit
    }
}

fn build_sim(_case: usize) -> permea::runtime::sim::Simulation {
    let mut b = SimulationBuilder::new();
    let temp_raw = b.define_signal("temp_raw");
    let temp = b.define_signal("temp");
    let heater = b.define_signal("heater");
    b.add_module(
        "FILTER",
        Box::new(Filter { state: 0 }),
        Schedule::every_ms(),
        &[temp_raw],
        &[temp],
    );
    b.add_module(
        "CONTROL",
        Box::new(Control { heating: false }),
        Schedule::in_slot(1, 5),
        &[temp],
        &[heater],
    );
    let mut sim = b.build(Box::new(ThermalEnv {
        temp: 1500.0,
        temp_raw,
        heater,
        limit: 4_000,
    }));
    sim.enable_tracing_all();
    sim
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The analysis topology mirrors the runtime wiring.
    let mut b = TopologyBuilder::new("thermostat");
    let temp_raw = b.external("temp_raw");
    let filter = b.add_module("FILTER");
    b.bind_input(filter, temp_raw);
    let temp = b.add_output(filter, "temp");
    let control = b.add_module("CONTROL");
    b.bind_input(control, temp);
    let heater = b.add_output(control, "heater");
    b.mark_system_output(heater);
    let topology = b.build()?;

    // Estimate permeability with a bit-flip campaign.
    let factory = FnSystemFactory::new(1, 10_000, build_sim);
    let campaign = Campaign::new(
        &factory,
        CampaignConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let spec = CampaignSpec::paper_style(
        vec![
            PortTarget::new("FILTER", "temp_raw"),
            PortTarget::new("CONTROL", "temp"),
        ],
        1,
    );
    let result = campaign.run(&spec)?;
    let matrix = estimate_matrix(&topology, &result)?;

    println!(
        "estimated permeabilities ({} injections per input):",
        spec.injections_per_target()
    );
    for (m, i, k, v) in matrix.iter() {
        println!(
            "  P({} -> {}) = {:.3}",
            topology.signal_name(topology.inputs_of(m)[i]),
            topology.signal_name(topology.outputs_of(m)[k]),
            v
        );
    }

    // Full analysis on the estimated values.
    let graph = PermeabilityGraph::new(&topology, &matrix)?;
    let measures = SystemMeasures::compute(&graph)?;
    let ranked = measures.ranked_by_signal_exposure();
    println!("\nsignals by error exposure:");
    for se in ranked.iter().filter(|se| se.exposure > 0.0) {
        println!(
            "  {:<10} X = {:.3}",
            topology.signal_name(se.signal),
            se.exposure
        );
    }
    let plan = PlacementAdvisor::new(&graph)?.plan();
    println!(
        "\nrecommended EDM signals: {:?}",
        plan.edm_signals()
            .iter()
            .map(|&s| topology.signal_name(s))
            .collect::<Vec<_>>()
    );
    Ok(())
}
