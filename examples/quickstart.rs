//! Quickstart: the analytical workflow on a five-module system.
//!
//! Builds the paper's Fig. 2-style example (modules A–E with a feedback
//! loop), assigns permeability values, and walks through every analysis:
//! measures, backtrack/trace trees, ranked propagation paths and EDM/ERM
//! placement.
//!
//! Run with: `cargo run --example quickstart`

use permea::analysis::fivemod::five_module_system;
use permea::core::dot;
use permea::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A system model: five modules, three external inputs, one output,
    //    one self-feedback loop (module B).
    let (topology, matrix) = five_module_system();
    println!(
        "system `{}`: {} modules, {} signals, {} permeability pairs\n",
        topology.name(),
        topology.module_count(),
        topology.signal_count(),
        topology.pair_count()
    );

    // 2. Join topology and permeability values into the permeability graph.
    let graph = PermeabilityGraph::new(&topology, &matrix)?;

    // 3. Module-level measures (Eqs. 2-5).
    let measures = SystemMeasures::compute(&graph)?;
    println!("module measures (P = relative permeability, X = exposure):");
    for mm in measures.modules() {
        println!(
            "  {:<4} P={:.3}  Pbar={:.3}  X={:.3}  Xbar={:.3}",
            topology.module_name(mm.module),
            mm.relative_permeability,
            mm.non_weighted_relative_permeability,
            mm.exposure,
            mm.non_weighted_exposure
        );
    }

    // 4. Output Error Tracing: where do errors on OUT come from?
    let out = topology.signal_by_name("OUT").expect("OUT exists");
    let tree = BacktrackTree::build(&graph, out)?;
    println!("\nbacktrack tree of OUT ({} paths):", tree.leaf_count());
    print!("{}", dot::backtrack_to_ascii(&graph, &tree));

    // 5. Ranked propagation paths (the Table 4 of this little system).
    let paths = tree.into_path_set().sorted_by_weight();
    println!("heaviest propagation paths:");
    for p in paths.iter().take(3) {
        let names: Vec<&str> = p.signals.iter().map(|&s| topology.signal_name(s)).collect();
        println!("  {:.4}  {}", p.weight, names.join(" <- "));
    }

    // 6. Input Error Tracing: where does an error on extA end up?
    let ext_a = topology.signal_by_name("extA").expect("extA exists");
    let trace = TraceTree::build(&graph, ext_a)?;
    println!("\ntrace tree of extA ({} paths):", trace.leaf_count());
    print!("{}", dot::trace_to_ascii(&graph, &trace));

    // 7. Where should detection and recovery go?
    let plan = PlacementAdvisor::new(&graph)?.plan();
    let loc_name = |loc| match loc {
        permea::core::placement::Location::Signal(s) => {
            format!("signal {}", topology.signal_name(s))
        }
        permea::core::placement::Location::Module(m) => {
            format!("module {}", topology.module_name(m))
        }
    };
    println!("EDM candidates (detection):");
    for rec in &plan.edm {
        println!("  {:<14} score {:.3}", loc_name(rec.location), rec.score);
    }
    println!("ERM candidates (recovery):");
    for rec in &plan.erm {
        println!("  {:<14} score {:.3}", loc_name(rec.location), rec.score);
    }
    Ok(())
}
