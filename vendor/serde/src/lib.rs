//! Offline stand-in for the `serde` facade.
//!
//! The real `serde` crate cannot be fetched in this build environment, so
//! this crate provides the minimal surface the workspace actually uses:
//! `Serialize`/`Deserialize` traits (routed through an owned [`Value`]
//! tree instead of serde's visitor machinery) and the matching derive
//! macros re-exported from the sibling `serde_derive` stand-in.
//!
//! The derives honour `#[serde(skip)]` (field omitted on serialisation,
//! filled from `Default` on deserialisation) — the only serde attribute
//! used in this workspace.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing serialisation tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Helpers used by the generated derive code.
pub mod value {
    use super::Value;

    /// Looks up a field in a serialised object.
    pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Deserialisation error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the serialised object.
    /// `Option` fields quietly become `None` (mirroring serde's derive);
    /// everything else is an error.
    fn when_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => {
                        return Err(DeError::custom(concat!(
                            "expected unsigned integer for ",
                            stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(|_| {
                        DeError::custom(concat!("integer out of range for ", stringify!($t)))
                    })?,
                    _ => {
                        return Err(DeError::custom(concat!(
                            "expected signed integer for ",
                            stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected boolean")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn when_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::custom("array length mismatch"))
    }
}

/// Map keys: JSON objects require string keys, so a key is serialized to a
/// [`Value`] and then stringified — strings pass through, integers and bools
/// are formatted (mirroring `serde_json`, which stringifies any key whose
/// serialization is a string or integer and rejects the rest).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        _ => panic!("map key must serialize to a string, integer or bool"),
    }
}

/// Inverse of [`key_to_string`]: feed the string form back through the key
/// type's `Deserialize` impl, trying the string value first and then the
/// integer reparses (covers plain strings, integer newtypes and integers).
fn key_from_str<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(DeError::custom("unparseable map key"))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::custom("expected object")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::custom("expected object")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::custom("expected tuple array"))?;
                if s.len() != $len {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::custom("expected null")),
        }
    }
}
