//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` / `serde::Deserialize`
//! traits (value-tree based) by hand-parsing the item's `TokenStream` — no
//! `syn`/`quote`, since external crates cannot be fetched in this build
//! environment. Supports non-generic structs (named, tuple, unit) and enums
//! (unit, tuple, struct variants), plus the `#[serde(skip)]` attribute.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Field {
    name: Option<String>,
    ty: String,
    skip: bool,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Consumes leading attributes; returns whether `#[serde(skip)]` was seen.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i + 1 < tokens.len() && is_punct(&tokens[*i], '#') {
        if let TokenTree::Group(g) = &tokens[*i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if !inner.is_empty() && is_ident(&inner[0], "serde") {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for t in args.stream() {
                            if is_ident(&t, "skip") {
                                skip = true;
                            }
                        }
                    }
                }
                *i += 2;
                continue;
            }
        }
        break;
    }
    skip
}

/// Consumes a visibility qualifier if present.
fn eat_vis(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        if *i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Collects tokens up to (not including) a top-level `,`, tracking `<...>`
/// nesting so commas inside generic arguments are not split points.
///
/// Joint punctuation (the first `:` of `::`, etc.) is emitted without a
/// trailing space so multi-character separators survive re-parsing.
fn take_until_comma(tokens: &[TokenTree], i: &mut usize) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
                out.push(p.as_char());
                if p.spacing() == Spacing::Alone {
                    out.push(' ');
                }
            }
            other => {
                out.push_str(&other.to_string());
                out.push(' ');
            }
        }
        *i += 1;
    }
    out.trim().to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = eat_attrs(&tokens, &mut i);
        eat_vis(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        };
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        let ty = take_until_comma(&tokens, &mut i);
        if i < tokens.len() {
            i += 1; // skip comma
        }
        fields.push(Field {
            name: Some(name),
            ty,
            skip,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = eat_attrs(&tokens, &mut i);
        eat_vis(&tokens, &mut i);
        let ty = take_until_comma(&tokens, &mut i);
        if i < tokens.len() {
            i += 1;
        }
        if !ty.is_empty() {
            fields.push(Field {
                name: None,
                ty,
                skip,
            });
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let shape = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let f = parse_named_fields(g.stream());
                    i += 1;
                    Shape::Named(f)
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let f = parse_tuple_fields(g.stream());
                    i += 1;
                    Shape::Tuple(f)
                }
                _ => Shape::Unit,
            }
        } else {
            Shape::Unit
        };
        // Skip any discriminant and the trailing comma.
        let _ = take_until_comma(&tokens, &mut i);
        if i < tokens.len() {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Item-level attributes and visibility.
    eat_attrs(&tokens, &mut i);
    eat_vis(&tokens, &mut i);
    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!(
            "serde_derive: expected `struct` or `enum`, found `{}`",
            tokens[i]
        );
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found `{other}`"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive stand-in: generic type `{name}` is not supported");
    }
    if is_enum {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: expected enum body, found `{other}`"),
        }
    } else {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        Item::Struct { name, shape }
    }
}

// ---------------------------------------------------------------------------
// Code generation (as strings, re-parsed into a TokenStream)
// ---------------------------------------------------------------------------

const HEAD: &str =
    "#[automatically_derived]\n#[allow(unused_mut, unused_variables, clippy::all)]\n";

fn ser_named_fields(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from(
        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        let name = f.name.as_deref().unwrap();
        out.push_str(&format!(
            "__m.push((::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::to_value({})));\n",
            accessor(name)
        ));
    }
    out.push_str("::serde::Value::Map(__m)\n");
    out
}

fn de_named_fields(fields: &[Field], type_name: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let name = f.name.as_deref().unwrap();
        if f.skip {
            out.push_str(&format!("{name}: ::std::default::Default::default(),\n"));
        } else {
            out.push_str(&format!(
                "{name}: match ::serde::value::map_get(__m, \"{name}\") {{\n\
                 ::std::option::Option::Some(__x) => \
                 <{ty} as ::serde::Deserialize>::from_value(__x)?,\n\
                 ::std::option::Option::None => \
                 <{ty} as ::serde::Deserialize>::when_missing(\"{name}\")?,\n}},\n",
                ty = f.ty
            ));
        }
    }
    let _ = type_name;
    out
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = (0..fields.len())
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => ser_named_fields(fields, |n| format!("&self.{n}")),
            };
            format!(
                "{HEAD}impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{{ {body} }}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut all_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => all_arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|k| format!("__f{k}")).collect();
                        let payload = if fields.len() == 1 {
                            "::serde::Serialize::to_value(&*__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value(&*{b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        all_arms.push_str(&format!(
                            "{name}::{vn}({}) => \
                             ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let body = ser_named_fields(fields, |n| format!("&*{n}")).replace(
                            "::serde::Value::Map(__m)\n",
                            &format!(
                                "::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(__m))])\n"
                            ),
                        );
                        all_arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{body}}},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{HEAD}impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{all_arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(fields) if fields.len() == 1 => format!(
                    "::std::result::Result::Ok({name}(\
                     <{ty} as ::serde::Deserialize>::from_value(__v)?))",
                    ty = fields[0].ty
                ),
                Shape::Tuple(fields) => {
                    let n = fields.len();
                    let items: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(k, f)| {
                            format!(
                                "<{ty} as ::serde::Deserialize>::from_value(&__s[{k}])?",
                                ty = f.ty
                            )
                        })
                        .collect();
                    format!(
                        "let __s = __v.as_seq().ok_or_else(|| \
                         ::serde::DeError::custom(\"{name}: expected array\"))?;\n\
                         if __s.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(\"{name}: tuple length mismatch\")); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => format!(
                    "let __m = __v.as_map().ok_or_else(|| \
                     ::serde::DeError::custom(\"{name}: expected object\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n{}}})",
                    de_named_fields(fields, name)
                ),
            };
            format!(
                "{HEAD}impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(fields) if fields.len() == 1 => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             <{ty} as ::serde::Deserialize>::from_value(__payload)?)),\n",
                            ty = fields[0].ty
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(k, f)| {
                                format!(
                                    "<{ty} as ::serde::Deserialize>::from_value(&__s[{k}])?",
                                    ty = f.ty
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __s = __payload.as_seq().ok_or_else(|| \
                             ::serde::DeError::custom(\"{name}::{vn}: expected array\"))?;\n\
                             if __s.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\
                             \"{name}::{vn}: tuple length mismatch\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __m = __payload.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(\"{name}::{vn}: expected object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{}}})\n}},\n",
                            de_named_fields(fields, name)
                        ));
                    }
                }
            }
            format!(
                "{HEAD}impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __payload) = &__entries[0];\n\
                 match __k.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"{name}: expected variant\")),\n}}\n}}\n}}\n"
            )
        }
    }
}
