//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest! { #![proptest_config(...)] #[test] fn name(x in strategy) {..} }`,
//! `prop_assert*`, `prop_oneof!`, `Just`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, `.prop_map(..)` and
//! `prop::collection::vec(..)`.
//!
//! Sampling is deterministic (seeded per test from the test's name) and
//! failures report the sampled inputs; there is no shrinking.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed `prop_assert*` inside a property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }
}

/// The deterministic sampling RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds deterministically from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
///
/// Object-safe: the combinator methods are `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works (used by `prop_oneof!`).
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `.prop_map(f)` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full u64 domain: any value works.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Include the endpoint with probability ~2^-53 by rounding up.
        let x = lo + rng.unit_f64() * (hi - lo);
        x.min(hi)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Marker for types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Produces any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// A length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with a random length.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::` namespace mirroring proptest's prelude re-export.
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Vector of `element` samples with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// One-of combinator backing `prop_oneof!`.
pub struct OneOf<T> {
    pub choices: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.choices.len() as u64) as usize;
        self.choices[k].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf {
            choices: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config = $config;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{} with inputs: {}\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __inputs,
                        __e.message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}
