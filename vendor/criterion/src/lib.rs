//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `Throughput`, `BatchSize`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery.
//!
//! When invoked by `cargo test` (which passes `--test` to `harness = false`
//! bench targets), each benchmark body runs exactly once as a smoke check.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped (ignored; kept for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (recorded for display only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    test_mode: bool,
    /// Measured mean time per iteration of the last `iter` call.
    elapsed: Option<Duration>,
    iters_done: u64,
}

impl Bencher {
    fn run<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.elapsed = Some(Duration::ZERO);
            self.iters_done = 1;
            return;
        }
        // Warm-up and calibration: run once to gauge the per-iteration cost.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed();
        // Aim for ~1 s of measurement, capped to keep long benches usable.
        let target = Duration::from_secs(1);
        let iters = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = Some(t1.elapsed() / iters as u32);
        self.iters_done = iters;
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, routine: F) {
        self.run(routine);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            std::hint::black_box(routine(input));
            self.elapsed = Some(Duration::ZERO);
            self.iters_done = 1;
            return;
        }
        let iters = 10u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
        }
        self.elapsed = Some(total / iters as u32);
        self.iters_done = iters;
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark manager.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            test_mode: self.test_mode,
            elapsed: None,
            iters_done: 0,
        };
        f(&mut b);
        match b.elapsed {
            Some(d) if !self.test_mode => {
                println!(
                    "{name:<50} {:>12}/iter ({} iters)",
                    format_duration(d),
                    b.iters_done
                );
            }
            _ => println!("{name:<50} ok (test mode)"),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
