//! Offline stand-in for `rand`, covering exactly the surface this workspace
//! uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64` and `Rng::gen`.
//!
//! The generator is xorshift64* seeded through SplitMix64 — deterministic,
//! full-period and fast; the workspace only relies on determinism under a
//! fixed seed, never on a specific stream.

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (`seed_from_u64` is the only constructor used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the uniform "standard" distribution.
pub trait Standard {
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scramble so nearby seeds give unrelated streams,
            // and so a zero seed yields a non-zero xorshift state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}
