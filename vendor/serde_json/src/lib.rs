//! Offline stand-in for `serde_json`: renders the serde stand-in's
//! [`serde::Value`] tree to JSON text and parses JSON text back into it.
//! Supports exactly the workspace's surface: [`to_string`],
//! [`to_string_pretty`] and [`from_str`].

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// JSON serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// A `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Infallible for tree-representable values; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for tree-representable values (see [`to_string`]).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip float formatting; force a
                // fractional part so the value re-parses as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("bad trailing surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}
