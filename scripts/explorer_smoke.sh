#!/usr/bin/env bash
# Explorer smoke test: a quick study writes the self-contained explorer
# page alongside its artifacts, and the page is validated end to end:
#   * the page fetches nothing (no src=/href=/@import/url()/fetch()),
#   * both embedded JSON blocks extract and parse,
#   * the embedded raw matrix block is byte-identical to matrix.json,
#   * the JavaScript what-if port, run under node against the embedded
#     data, reproduces the Rust-computed fixture bit for bit
#     (selfCheck: ok, maxAbsDiff == 0, ranking order identical),
#   * the stitched timeline carries progress and stratum-close points,
#   * `permea-explorer --follow` renders a self-refreshing page from the
#     same artifacts.
#
# Usage: scripts/explorer_smoke.sh [path-to-study-binary]

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
STUDY="${1:-target/release/study}"
if [[ ! -x "$STUDY" ]]; then
    echo "building study binary..."
    cargo build --release -p permea-analysis --bin study
    STUDY=target/release/study
fi
if [[ ! -x target/release/permea-explorer ]]; then
    echo "building permea-explorer binary..."
    cargo build --release -p permea-explorer --bin permea-explorer
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK/study"
PAGE="$WORK/explorer.html"

echo "== quick study with --events --metrics-out --html-out =="
"$STUDY" --quick --adaptive --out "$WORK/study" \
    --events "$WORK/study/events.jsonl" \
    --metrics-out "$WORK/study/metrics.json" \
    --html-out "$PAGE" >"$WORK/study.log" 2>&1
[[ -s "$PAGE" ]] || { echo "FAIL: no explorer.html produced" >&2; exit 1; }
echo "page: $(wc -c <"$PAGE") bytes"

echo "== page is self-contained (no fetched resources) =="
if grep -qE 'src=|href=|@import|url\(|fetch\(|XMLHttpRequest' "$PAGE"; then
    echo "FAIL: page references external resources" >&2
    grep -nE 'src=|href=|@import|url\(|fetch\(|XMLHttpRequest' "$PAGE" | head -5 >&2
    exit 1
fi

echo "== embedded JSON blocks extract and parse =="
python3 - "$PAGE" "$WORK/data.json" "$WORK/matrix-embedded.json" <<'PY'
import sys
html = open(sys.argv[1]).read()
def block(block_id):
    marker = '<script id="%s" type="application/json">' % block_id
    assert marker in html, "missing block " + block_id
    return html.split(marker, 1)[1].split('</script>', 1)[0]
open(sys.argv[2], 'w').write(block('permea-data'))
open(sys.argv[3], 'w').write(block('permea-raw-matrix'))
PY
if command -v jq >/dev/null; then
    jq empty "$WORK/data.json"
    jq empty "$WORK/matrix-embedded.json"
    jq empty "$WORK/study/metrics.json"
else
    python3 -m json.tool "$WORK/data.json" >/dev/null
    python3 -m json.tool "$WORK/matrix-embedded.json" >/dev/null
fi

echo "== embedded matrix block is byte-identical to matrix.json =="
cmp "$WORK/matrix-embedded.json" "$WORK/study/matrix.json"

echo "== timeline carries progress and stratum-close points =="
python3 - "$WORK/data.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
tl = data["timeline"]
assert tl and len(tl["progress"]) > 0, "no progress points"
assert len(tl["closes"]) > 0, "no stratum-close points (adaptive run)"
assert data["campaign"]["total_runs"] > 0
assert data["system"] and data["whatif"] and data["placement"]
PY

if command -v node >/dev/null; then
    echo "== JS what-if port matches the Rust fixture bit for bit =="
    node - "$ROOT/crates/explorer/assets/explorer.js" "$WORK/data.json" <<'JS'
const ex = require(process.argv[2]);
const data = JSON.parse(require('fs').readFileSync(process.argv[3], 'utf8'));
const check = ex.selfCheck(data);
console.log(JSON.stringify(check));
if (!check.ok || check.maxAbsDiff !== 0 || !check.rankingMatches) {
    console.error('FAIL: JS port disagrees with the embedded Rust fixture');
    process.exit(1);
}
JS
else
    echo "warning: node not found, skipping the JS port cross-check" >&2
fi

echo "== --follow renders a self-refreshing page =="
target/release/permea-explorer \
    --events "$WORK/study/events.jsonl" \
    --result "$WORK/study/result.json" \
    --matrix "$WORK/study/matrix.json" \
    --metrics "$WORK/study/metrics.json" \
    --follow --interval-ms 1000 --max-refreshes 2 \
    --out "$WORK/live.html"
grep -q 'http-equiv="refresh"' "$WORK/live.html"
grep -q 'id="permea-raw-matrix"' "$WORK/live.html"

echo "PASS: explorer smoke — self-contained page, byte-identical matrix," \
     "bit-identical JS what-if port, live follow mode"
