#!/usr/bin/env bash
# Campaign-daemon smoke test: crash recovery and graceful drain.
#
# Phase 1 (SIGKILL): starts `permea-server`, submits two smoke campaigns
# from two tenants (different seeds), SIGKILLs the daemon mid-flight, and
# restarts it over the same state directory. The write-ahead ledger must
# re-queue both campaigns and both results must come out byte-identical to
# standalone `study` runs of the same presets.
#
# Phase 2 (SIGTERM): starts a fresh daemon, submits a quick campaign
# (9360 runs — long enough that the signal lands mid-flight), SIGTERMs the
# daemon and requires exit 0 with the metrics snapshot flushed and the
# socket removed. A restart then finishes the campaign without re-running
# any journaled work: every injection run appends exactly one journal
# record, so the final journal must hold exactly the preset's 9360 records.
#
# Usage: scripts/server_smoke.sh [path-to-target-dir]
#
# Set ARTIFACT_DIR to keep the daemon logs and the drained metrics
# snapshot after the run (CI uploads them).

set -euo pipefail

TARGET="${1:-target/release}"
for bin in permea-server permea-cli study; do
    if [[ ! -x "$TARGET/$bin" ]]; then
        echo "building $bin..."
        cargo build --release -p permea-analysis --bin "$bin"
    fi
done
SERVER="$TARGET/permea-server"
CLI="$TARGET/permea-cli"
STUDY="$TARGET/study"

WORK="$(mktemp -d)"
SRV=""
keep_artifacts() {
    if [[ -n "${ARTIFACT_DIR:-}" ]]; then
        mkdir -p "$ARTIFACT_DIR"
        cp "$WORK"/server*.log "$ARTIFACT_DIR/" 2>/dev/null || true
        cp "$WORK/state2/metrics.json" "$ARTIFACT_DIR/drain-metrics.json" 2>/dev/null || true
    fi
}
trap 'if [[ -n "$SRV" ]]; then kill -9 "$SRV" 2>/dev/null || true; fi; keep_artifacts; rm -rf "$WORK"' EXIT

wait_for_socket() {
    local sock="$1"
    for _ in $(seq 1 200); do
        if [[ -S "$sock" ]] && "$CLI" --socket "$sock" status >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.05
    done
    echo "FAIL: daemon never came up on $sock" >&2
    exit 1
}

journal_lines() {
    wc -l <"$1" 2>/dev/null || echo 0
}

echo "== standalone reference runs =="
"$STUDY" --smoke --out "$WORK/ref-alice" --threads 1 >"$WORK/ref-alice.log" 2>&1
"$STUDY" --smoke --seed 99 --out "$WORK/ref-bob" --threads 1 >"$WORK/ref-bob.log" 2>&1
"$STUDY" --quick --out "$WORK/ref-quick" >"$WORK/ref-quick.log" 2>&1

echo "== phase 1: SIGKILL mid-flight, restart, byte-identical results =="
STATE="$WORK/state"
SOCK="$STATE/permea.sock"
"$SERVER" --state "$STATE" --slots 2 --slice-runs 16 >"$WORK/server1.log" 2>&1 &
SRV=$!
wait_for_socket "$SOCK"

ID_ALICE=$("$CLI" --socket "$SOCK" submit --tenant alice --preset smoke)
ID_BOB=$("$CLI" --socket "$SOCK" submit --tenant bob --preset smoke --seed 99)
echo "submitted campaigns $ID_ALICE (alice) and $ID_BOB (bob, seed 99)"

# Pull the plug once both campaigns have journaled some runs but before
# the 104-run grids can finish. If the daemon outraces us, recovery still
# has to replay the closed ledger records correctly.
for _ in $(seq 1 200); do
    A=$(journal_lines "$STATE/campaigns/$ID_ALICE/journal.jsonl")
    B=$(journal_lines "$STATE/campaigns/$ID_BOB/journal.jsonl")
    if [[ "$A" -ge 8 && "$B" -ge 8 ]] || ! kill -0 "$SRV" 2>/dev/null; then
        break
    fi
    sleep 0.05
done
kill -9 "$SRV" 2>/dev/null || true
wait "$SRV" 2>/dev/null || true
SRV=""
echo "SIGKILLed the daemon with $A + $B runs journaled"

"$SERVER" --state "$STATE" --slots 2 --slice-runs 16 >"$WORK/server2.log" 2>&1 &
SRV=$!
wait_for_socket "$SOCK"
"$CLI" --socket "$SOCK" watch "$ID_ALICE" 2>/dev/null
"$CLI" --socket "$SOCK" watch "$ID_BOB" 2>/dev/null
echo "both campaigns completed after restart"

cmp "$STATE/campaigns/$ID_ALICE/result.json" "$WORK/ref-alice/result.json"
cmp "$STATE/campaigns/$ID_BOB/result.json" "$WORK/ref-bob/result.json"
echo "results are byte-identical to the standalone runs"

"$CLI" --socket "$SOCK" shutdown >/dev/null 2>&1
wait "$SRV"
SRV=""

echo "== phase 2: SIGTERM drains with exit 0, restart re-runs nothing =="
STATE="$WORK/state2"
SOCK="$STATE/permea.sock"
"$SERVER" --state "$STATE" --slots 1 --slice-runs 16 >"$WORK/server3.log" 2>&1 &
SRV=$!
wait_for_socket "$SOCK"

ID=$("$CLI" --socket "$SOCK" submit --tenant carol --preset quick)
JOURNAL="$STATE/campaigns/$ID/journal.jsonl"
for _ in $(seq 1 400); do
    if [[ "$(journal_lines "$JOURNAL")" -ge 200 ]] || ! kill -0 "$SRV" 2>/dev/null; then
        break
    fi
    sleep 0.05
done

kill -TERM "$SRV"
if ! wait "$SRV"; then
    echo "FAIL: SIGTERM drain did not exit 0" >&2
    exit 1
fi
SRV=""
DRAINED=$(journal_lines "$JOURNAL")
if [[ ! -f "$STATE/metrics.json" ]]; then
    echo "FAIL: drain did not flush metrics.json" >&2
    exit 1
fi
if [[ -e "$SOCK" ]]; then
    echo "FAIL: drain did not remove the socket" >&2
    exit 1
fi
if [[ "$DRAINED" -ge 9361 ]]; then
    echo "note: the quick campaign outraced the drain; restart still replays it"
fi
echo "SIGTERM drain exited 0 with $((DRAINED - 1)) run(s) journaled"

"$SERVER" --state "$STATE" --slots 1 --slice-runs 16 >"$WORK/server4.log" 2>&1 &
SRV=$!
wait_for_socket "$SOCK"
"$CLI" --socket "$SOCK" watch "$ID" 2>/dev/null
"$CLI" --socket "$SOCK" shutdown >/dev/null 2>&1
wait "$SRV"
SRV=""

cmp "$STATE/campaigns/$ID/result.json" "$WORK/ref-quick/result.json"
# One journal record per executed run: exactly header + 9360 records means
# the restart resumed the drained campaign without re-running anything.
FINAL=$(journal_lines "$JOURNAL")
if [[ "$FINAL" -ne 9361 ]]; then
    echo "FAIL: expected 9361 journal lines (header + 9360 runs), got $FINAL" >&2
    exit 1
fi

echo "PASS: SIGKILL recovery is byte-identical and SIGTERM drain is clean" \
     "(phase 1: $A+$B runs survived the kill; phase 2: $((DRAINED - 1))" \
     "runs drained, $((FINAL - 1)) total, none re-run)"
