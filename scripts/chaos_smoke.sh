#!/usr/bin/env bash
# Chaos-harness smoke test: a seeded fault plan (worker SIGKILL + journal
# EIO + artifact-write failure) is injected into the quick study in both
# isolation modes, and the recovered campaign is checked against the clean
# baseline:
#   * injected journal EIO aborts with the environment-failure exit code
#     (4) and leaves a resumable journal,
#   * an injected artifact-write failure also exits 4 and leaves no torn
#     result.json behind,
#   * a scheduled worker SIGKILL is absorbed by the retry path,
#   * after resume, result.json is sha256-identical to the undisturbed
#     baseline in both modes.
#
# Usage: scripts/chaos_smoke.sh [path-to-study-binary]

set -euo pipefail

STUDY="${1:-target/release/study}"
if [[ ! -x "$STUDY" ]]; then
    echo "building study binary..."
    cargo build --release -p permea-analysis --bin study
    STUDY=target/release/study
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
BASE="$WORK/baseline"
INPROC="$WORK/inproc"
PROC="$WORK/process"

# Runs the study expecting a specific exit code; fails loudly otherwise.
expect_exit() {
    local want="$1" log="$2"
    shift 2
    local got=0
    "$STUDY" "$@" >"$log" 2>&1 || got=$?
    if [[ "$got" -ne "$want" ]]; then
        echo "FAIL: expected exit $want, got $got for: $*" >&2
        tail -n 40 "$log" >&2
        exit 1
    fi
}

echo "== clean baseline (chaos off) =="
expect_exit 0 "$WORK/baseline.log" --quick --out "$BASE"
BASELINE_SHA=$(sha256sum "$BASE/result.json" | cut -d' ' -f1)
echo "baseline result.json sha256: $BASELINE_SHA"

echo "== in-process: journal EIO aborts with exit 4 =="
expect_exit 4 "$WORK/inproc-eio.log" \
    --quick --journal --out "$INPROC" \
    --chaos-plan "seed=7, journal-write=eio@5"
grep -q "environment failure" "$WORK/inproc-eio.log"

echo "== in-process: resume under an artifact-write failure exits 4 =="
expect_exit 4 "$WORK/inproc-artifact.log" \
    --quick --resume "$INPROC" \
    --chaos-plan "seed=7, artifact-fail=result.json"
if [[ -e "$INPROC/result.json" ]]; then
    echo "FAIL: failed artifact write left a result.json behind" >&2
    exit 1
fi

echo "== in-process: final resume recovers byte-identically =="
expect_exit 0 "$WORK/inproc-resume.log" --quick --resume "$INPROC"
echo "$BASELINE_SHA  $INPROC/result.json" | sha256sum -c - >/dev/null
echo "in-process recovery matches the baseline"

echo "== process mode: worker kill absorbed, journal EIO aborts with exit 4 =="
expect_exit 4 "$WORK/proc-chaos.log" \
    --quick --isolation process --workers 2 --journal --out "$PROC" \
    --chaos-plan "seed=7, kill-run@3, journal-write=eio@20"
grep -q "environment failure" "$WORK/proc-chaos.log"

echo "== process mode: resume recovers byte-identically =="
expect_exit 0 "$WORK/proc-resume.log" \
    --quick --isolation process --workers 2 --resume "$PROC"
echo "$BASELINE_SHA  $PROC/result.json" | sha256sum -c - >/dev/null
echo "process-mode recovery matches the baseline"

echo "PASS: chaos smoke — EIO/artifact failures exit 4 and stay resumable," \
     "worker kills are absorbed, and recovery is sha256-identical in both modes"
