#!/usr/bin/env bash
# Adaptive/dense equivalence smoke test for the sequential sampling planner.
#
# Runs the quick study twice — once over the dense injection grid, once with
# `--adaptive` — and checks that the adaptive campaign (1) executes
# meaningfully fewer runs (the acceptance bar is >= 40% saved), (2) ranks
# the TOC2 propagation paths in exactly the same order (weights may shift
# within their confidence intervals, the ordering may not), and (3) reports
# per-target precision within the planner's CI goal. A third run repeats the
# adaptive campaign under `--isolation process` and must be byte-identical
# to the in-process adaptive run.
#
# Usage: scripts/adaptive_equivalence_smoke.sh [path-to-study-binary]

set -euo pipefail

STUDY="${1:-target/release/study}"
if [[ ! -x "$STUDY" ]]; then
    echo "building study binary..."
    cargo build --release -p permea-analysis --bin study
    STUDY=target/release/study
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
DENSE="$WORK/dense"
ADAPTIVE="$WORK/adaptive"
ISOLATED="$WORK/adaptive-process"

echo "== dense quick study =="
"$STUDY" --quick --out "$DENSE" >"$WORK/dense.log" 2>&1

echo "== adaptive quick study =="
"$STUDY" --quick --adaptive --out "$ADAPTIVE" >"$WORK/adaptive.log" 2>&1

echo "== compare run budgets =="
total_runs() {
    # The totals row of precision.txt: "total  <runs>  <dense>  <saved> ..."
    awk '$1 == "total" {print $2}' "$1/precision.txt"
}
DENSE_RUNS=$(total_runs "$DENSE")
ADAPTIVE_RUNS=$(total_runs "$ADAPTIVE")
if [[ -z "$DENSE_RUNS" || -z "$ADAPTIVE_RUNS" ]]; then
    echo "FAIL: could not read run totals from precision.txt" >&2
    exit 1
fi
if (( ADAPTIVE_RUNS * 100 > DENSE_RUNS * 60 )); then
    echo "FAIL: adaptive spent $ADAPTIVE_RUNS of $DENSE_RUNS dense runs" \
         "— less than 40% saved" >&2
    exit 1
fi
echo "adaptive spent $ADAPTIVE_RUNS of $DENSE_RUNS runs" \
     "($(( (DENSE_RUNS - ADAPTIVE_RUNS) * 100 / DENSE_RUNS ))% saved)"

echo "== compare ranked propagation paths =="
# Strip the weight column: the *ordering* of TOC2 propagation paths must be
# identical; the weights themselves legitimately move within their CIs.
paths_only() {
    awk 'NR > 2 {$2 = ""; print}' "$1"
}
if ! diff <(paths_only "$DENSE/table4_all.txt") \
          <(paths_only "$ADAPTIVE/table4_all.txt"); then
    echo "FAIL: adaptive sampling reordered the propagation paths" >&2
    exit 1
fi

echo "== check the planner met its precision goal =="
# Every non-total row's max CI half-width (last column) must be within the
# default target of 0.05 (plus binomial-boundary slack: a stratum can close
# only at a batch boundary, so widths sit just under the goal).
if awk '$1 != "total" && NR > 1 && $5 + 0 > 0.05 {bad = 1; print}
        END {exit bad}' "$ADAPTIVE/precision.txt"; then
    :
else
    echo "FAIL: a stratum stopped above the 0.05 CI half-width goal" >&2
    exit 1
fi

echo "== adaptive quick study under process isolation =="
"$STUDY" --quick --adaptive --isolation process --out "$ISOLATED" \
    >"$WORK/isolated.log" 2>&1

# metrics.json and telemetry.txt carry process-local wall-clock figures;
# every derived artifact must match byte for byte.
if ! diff -r --exclude=metrics.json --exclude=telemetry.txt \
        "$ADAPTIVE" "$ISOLATED"; then
    echo "FAIL: process-isolated adaptive run differs from in-process" >&2
    exit 1
fi
cmp "$ADAPTIVE/result.json" "$ISOLATED/result.json"

echo "PASS: adaptive run preserved the dense path ranking with" \
     "$(( (DENSE_RUNS - ADAPTIVE_RUNS) * 100 / DENSE_RUNS ))% fewer runs," \
     "byte-identical under process isolation"
