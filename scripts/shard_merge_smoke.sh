#!/usr/bin/env bash
# Shard/merge smoke test for horizontally scaled campaigns.
#
# Runs the quick study unsharded, then again as two `--shard i/2` slices,
# merges the shard journals with `study journal merge`, and checks the
# merged journal is byte-identical to the unsharded one. Resuming from the
# merged journal must re-execute nothing and reproduce every unsharded
# artifact byte for byte. The whole sequence repeats with
# `--isolation process` to cover the supervised worker-pool path.
#
# Everything runs with `--threads 1` (and `--workers 1` in process mode):
# journal byte-identity relies on records being appended in ascending
# coordinate order, which only a single executor guarantees. Merged output
# is sorted by coordinate, so shard journals produced at any parallelism
# still merge correctly — only the byte-for-byte comparison needs it.
#
# Usage: scripts/shard_merge_smoke.sh [path-to-study-binary]

set -euo pipefail

STUDY="${1:-target/release/study}"
if [[ ! -x "$STUDY" ]]; then
    echo "building study binary..."
    cargo build --release -p permea-analysis --bin study
    STUDY=target/release/study
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run_pass() {
    local label="$1"
    shift
    local extra=("$@")
    local full="$WORK/$label-full"
    local merged="$WORK/$label-merged"
    mkdir -p "$merged"

    echo "== [$label] unsharded reference run =="
    "$STUDY" --quick --journal --out "$full" --threads 1 "${extra[@]}" \
        >"$WORK/$label-full.log" 2>&1

    echo "== [$label] two sharded runs =="
    for i in 0 1; do
        "$STUDY" --quick --journal --out "$WORK/$label-shard$i" --threads 1 \
            --shard "$i/2" "${extra[@]}" >"$WORK/$label-shard$i.log" 2>&1
    done

    echo "== [$label] merge shard journals =="
    "$STUDY" journal merge --out "$merged/journal.jsonl" \
        "$WORK/$label-shard0/journal.jsonl" "$WORK/$label-shard1/journal.jsonl"

    echo "== [$label] merged journal must equal the unsharded journal =="
    cmp "$merged/journal.jsonl" "$full/journal.jsonl"

    echo "== [$label] resume from the merged journal =="
    local records
    records=$(($(wc -l <"$full/journal.jsonl") - 1))
    "$STUDY" --quick --resume "$merged" --threads 1 "${extra[@]}" \
        >"$WORK/$label-resume.log" 2>&1
    if ! grep -q "$records run(s) already recorded" "$WORK/$label-resume.log"; then
        echo "FAIL: merged journal did not recover all $records runs" >&2
        grep -m1 "already recorded" "$WORK/$label-resume.log" >&2 || true
        exit 1
    fi

    echo "== [$label] compare artifacts =="
    # metrics.json / telemetry.txt carry process-local wall-clock figures;
    # every derived artifact must match byte for byte.
    if ! diff -r --exclude=metrics.json --exclude=telemetry.txt \
            "$merged" "$full"; then
        echo "FAIL: merged artifacts differ from the unsharded run" >&2
        exit 1
    fi
    cmp "$merged/result.json" "$full/result.json"
    echo "PASS [$label]: two shards merge to the unsharded campaign"
}

run_pass "in-process"
run_pass "process" --isolation process --workers 1
echo "PASS: shard/merge reproduces unsharded artifacts in both isolation modes"
