#!/usr/bin/env bash
# Kill/resume smoke test for the resumable study campaign.
#
# Starts `study --quick` with a journal, SIGKILLs it mid-campaign, resumes
# from the journal, and checks the final artifacts are byte-identical to an
# uninterrupted run. Exercises the whole durability path: write-ahead
# journal, torn-tail recovery, and coordinate-keyed resume — plus the
# telemetry merge: the resumed run's deterministic `campaign` metrics must
# equal the uninterrupted run's, and its run total must equal the journal's
# record count.
#
# Usage: scripts/kill_resume_smoke.sh [path-to-study-binary]

set -euo pipefail

STUDY="${1:-target/release/study}"
if [[ ! -x "$STUDY" ]]; then
    echo "building study binary..."
    cargo build --release -p permea-analysis --bin study
    STUDY=target/release/study
fi

WORK="$(mktemp -d)"
PID=""
# Also reap the background study if the script dies before killing it
# itself — otherwise a failed run leaks a campaign writing into the
# (removed) work directory.
trap 'if [[ -n "$PID" ]]; then kill -9 "$PID" 2>/dev/null || true; fi; rm -rf "$WORK"' EXIT
INTERRUPTED="$WORK/interrupted"
CLEAN="$WORK/clean"

echo "== start a journaled quick study and SIGKILL it mid-campaign =="
"$STUDY" --quick --journal --out "$INTERRUPTED" --threads 1 \
    >"$WORK/first.log" 2>&1 &
PID=$!
# Wait until a handful of runs are journaled (line 1 is the header), then
# pull the plug. If the quick study outraces us that is fine too: resume
# then simply recovers a complete journal.
for _ in $(seq 1 200); do
    LINES=$(wc -l <"$INTERRUPTED/journal.jsonl" 2>/dev/null || echo 0)
    if [[ "$LINES" -ge 6 ]] || ! kill -0 "$PID" 2>/dev/null; then
        break
    fi
    sleep 0.05
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

if [[ ! -s "$INTERRUPTED/journal.jsonl" ]]; then
    echo "FAIL: no journal was written before the kill" >&2
    exit 1
fi
JOURNALED=$(($(wc -l <"$INTERRUPTED/journal.jsonl") - 1))
echo "killed with $JOURNALED run(s) journaled"

echo "== resume from the journal =="
"$STUDY" --quick --resume "$INTERRUPTED" --threads 1 \
    --metrics-out "$INTERRUPTED/metrics.json" >"$WORK/resume.log" 2>&1

echo "== uninterrupted reference run =="
"$STUDY" --quick --journal --out "$CLEAN" --threads 1 \
    --metrics-out "$CLEAN/metrics.json" >"$WORK/clean.log" 2>&1

echo "== compare artifacts =="
# journal.jsonl legitimately differs (record order reflects execution
# order), and metrics.json / telemetry.txt carry process-local wall-clock
# figures; every derived artifact must match byte for byte.
if ! diff -r --exclude=journal.jsonl --exclude=metrics.json \
        --exclude=telemetry.txt "$INTERRUPTED" "$CLEAN"; then
    echo "FAIL: resumed artifacts differ from the uninterrupted run" >&2
    exit 1
fi
cmp "$INTERRUPTED/result.json" "$CLEAN/result.json"

echo "== compare deterministic campaign metrics =="
# The `campaign` section of metrics.json is deterministic: the resumed
# run merges journaled run statistics, so its totals must equal the
# uninterrupted run's exactly (only the `process` section may differ).
extract_campaign() {
    sed -n '/^  "campaign": {$/,/^  },$/p' "$1"
}
if ! diff <(extract_campaign "$INTERRUPTED/metrics.json") \
          <(extract_campaign "$CLEAN/metrics.json"); then
    echo "FAIL: resumed campaign metrics differ from the uninterrupted run" >&2
    exit 1
fi

# The merged run total must equal the journal's record count (all lines
# after the header).
RUNS_TOTAL=$(grep -m1 '"runs_total"' "$INTERRUPTED/metrics.json" | tr -dc '0-9')
RECORDS=$(($(wc -l <"$INTERRUPTED/journal.jsonl") - 1))
if [[ "$RUNS_TOTAL" != "$RECORDS" ]]; then
    echo "FAIL: metrics runs_total ($RUNS_TOTAL) != journal records ($RECORDS)" >&2
    exit 1
fi
echo "PASS: resumed run is byte-identical ($JOURNALED runs recovered," \
     "$RUNS_TOTAL runs in merged metrics)"
