#!/usr/bin/env bash
# Scenario-suite smoke test for the declarative target/scenario subsystem.
#
# Runs `study suite examples/scenarios` in both isolation modes and checks:
#   1. every scenario passes and the summary artifacts exist;
#   2. the two modes produce byte-identical per-scenario result.json files;
#   3. the scenario-driven arrestment-quick result is byte-identical to the
#      legacy `study --quick` artifact (the declarative path is a
#      re-spelling of the preset path, not a parallel implementation);
#   4. an invalid scenario directory exits with the pinned usage code 2 and
#      names the offending TOML key path.
#
# Usage: scripts/scenario_suite_smoke.sh [path-to-study-binary]

set -euo pipefail

STUDY="${1:-target/release/study}"
if [[ ! -x "$STUDY" ]]; then
    echo "building study binary..."
    cargo build --release -p permea-analysis --bin study
    STUDY=target/release/study
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== suite, in-process isolation =="
"$STUDY" suite examples/scenarios --out "$WORK/inproc" | tee "$WORK/inproc.log"
grep -q "3/3 scenarios passed" "$WORK/inproc.log"
for f in suite.json suite.txt arrestment-quick/result.json \
         five-module-extended-models/result.json \
         mask-pipeline-fep/result.json; do
    if [[ ! -s "$WORK/inproc/$f" ]]; then
        echo "FAIL: missing suite artifact $f" >&2
        exit 1
    fi
done

echo "== suite, process isolation =="
"$STUDY" suite examples/scenarios --isolation process --out "$WORK/proc" \
    | tee "$WORK/proc.log"
grep -q "3/3 scenarios passed" "$WORK/proc.log"

echo "== isolation modes must agree byte for byte =="
for d in arrestment-quick five-module-extended-models mask-pipeline-fep; do
    cmp "$WORK/inproc/$d/result.json" "$WORK/proc/$d/result.json"
done

echo "== scenario quick study == legacy --quick, byte for byte =="
"$STUDY" --quick --out "$WORK/legacy" >/dev/null
cmp "$WORK/inproc/arrestment-quick/result.json" "$WORK/legacy/result.json"
SHA=$(sha256sum "$WORK/legacy/result.json" | cut -c1-8)
echo "quick result.json sha256 prefix: $SHA"

echo "== invalid scenario exits 2 with the offending key path =="
mkdir -p "$WORK/bad"
cat >"$WORK/bad/broken.toml" <<'EOF'
[target]
name = "arrestment"

[campaign]
times_ms = [700]
tyop = 1

[error-model]
kind = "zero"
EOF
set +e
"$STUDY" suite "$WORK/bad" >"$WORK/bad.log" 2>&1
CODE=$?
set -e
if [[ "$CODE" != 2 ]]; then
    echo "FAIL: invalid scenario suite exited $CODE, expected 2" >&2
    cat "$WORK/bad.log" >&2
    exit 1
fi
grep -q "campaign.tyop" "$WORK/bad.log"

echo "PASS: scenario suite identical across isolation modes," \
     "quick scenario matches the preset artifact ($SHA...)"
