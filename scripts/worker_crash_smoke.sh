#!/usr/bin/env bash
# Worker-crash smoke test for the process-isolated study campaign.
#
# Starts `study --quick --isolation process`, SIGKILLs worker processes
# mid-campaign (twice, spaced out), and checks that:
#   * the supervisor absorbs the deaths (respawn + retry) and exits 0,
#   * result.json is byte-identical to a clean in-process run — killed
#     attempts change no result bit,
#   * metrics.json records the respawns (`process.worker_respawns` >= 1).
#
# Usage: scripts/worker_crash_smoke.sh [path-to-study-binary]

set -euo pipefail

STUDY="${1:-target/release/study}"
if [[ ! -x "$STUDY" ]]; then
    echo "building study binary..."
    cargo build --release -p permea-analysis --bin study
    STUDY=target/release/study
fi

WORK="$(mktemp -d)"
PID=""
trap 'if [[ -n "$PID" ]]; then kill -9 "$PID" 2>/dev/null || true; fi; rm -rf "$WORK"' EXIT
PROC="$WORK/process"
CLEAN="$WORK/clean"

echo "== start a process-isolated quick study =="
"$STUDY" --quick --isolation process --workers 2 --max-retries 5 \
    --out "$PROC" --metrics-out "$PROC/metrics.json" \
    >"$WORK/process.log" 2>&1 &
PID=$!

# SIGKILL a worker process (a child of the supervisor) twice while the
# campaign runs, with a pause in between so the first death's retry has
# long finished before the second one lands.
KILLS=0
for _ in $(seq 1 600); do
    if ! kill -0 "$PID" 2>/dev/null; then
        break
    fi
    if [[ "$KILLS" -lt 2 ]]; then
        VICTIM=$(pgrep -P "$PID" | head -n1 || true)
        if [[ -n "$VICTIM" ]] && kill -9 "$VICTIM" 2>/dev/null; then
            KILLS=$((KILLS + 1))
            echo "SIGKILLed worker $VICTIM (kill $KILLS)"
            sleep 1
            continue
        fi
    fi
    sleep 0.05
done

if [[ "$KILLS" -lt 1 ]]; then
    echo "FAIL: the campaign finished before any worker could be killed" >&2
    exit 1
fi
if ! wait "$PID"; then
    echo "FAIL: supervisor did not survive the worker kills" >&2
    tail -n 40 "$WORK/process.log" >&2
    exit 1
fi
PID=""
echo "supervisor exited 0 after $KILLS worker kill(s)"

echo "== clean in-process reference run =="
"$STUDY" --quick --threads 1 --out "$CLEAN" >"$WORK/clean.log" 2>&1

echo "== compare results =="
cmp "$PROC/result.json" "$CLEAN/result.json"

RESPAWNS=$(grep -m1 '"process.worker_respawns"' "$PROC/metrics.json" | tr -dc '0-9')
if [[ -z "$RESPAWNS" || "$RESPAWNS" -lt 1 ]]; then
    echo "FAIL: expected at least one recorded worker respawn, got '$RESPAWNS'" >&2
    exit 1
fi
echo "PASS: process-mode result is byte-identical to in-process" \
     "($KILLS kills absorbed, $RESPAWNS respawn(s) recorded)"
