//! # permea — error-propagation analysis for modular software
//!
//! A full reproduction of Hiller, Jhumka & Suri, *"An Approach for Analysing
//! the Propagation of Data Errors in Software"* (DSN 2001), packaged as a
//! reusable library family:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`] (`permea-core`) | error permeability, exposure, permeability graphs, backtrack/trace trees, propagation paths, EDM/ERM placement |
//! | [`runtime`] (`permea-runtime`) | deterministic slot-scheduled embedded simulation runtime with injection traps |
//! | [`fi`] (`permea-fi`) | SWIFI fault injection, Golden Run Comparison, permeability estimation |
//! | [`arrestment`] (`permea-arrestment`) | the paper's aircraft-arrestment target system and its environment physics |
//! | [`mech`] (`permea-mech`) | executable assertions, recovery guards, placement evaluation |
//! | [`target`] (`permea-target`) | pluggable FI targets, the built-in registry, declarative TOML scenarios, the suite runner with FEP accounting |
//! | [`analysis`] (`permea-analysis`) | the end-to-end study regenerating every table and figure |
//! | [`explorer`] (`permea-explorer`) | self-contained interactive HTML explorer for study artifacts |
//!
//! # Quick start
//!
//! Analyse a hand-specified system:
//!
//! ```
//! use permea::core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = TopologyBuilder::new("demo");
//! let sensor = b.external("sensor");
//! let filt = b.add_module("FILTER");
//! b.bind_input(filt, sensor);
//! let clean = b.add_output(filt, "clean");
//! let ctl = b.add_module("CONTROL");
//! b.bind_input(ctl, clean);
//! let actuator = b.add_output(ctl, "actuator");
//! b.mark_system_output(actuator);
//! let topo = b.build()?;
//!
//! let mut pm = PermeabilityMatrix::zeroed(&topo);
//! pm.set_named(&topo, "FILTER", "sensor", "clean", 0.2)?;
//! pm.set_named(&topo, "CONTROL", "clean", "actuator", 0.9)?;
//!
//! let graph = PermeabilityGraph::new(&topo, &pm)?;
//! let measures = SystemMeasures::compute(&graph)?;
//! let plan = PlacementAdvisor::new(&graph)?.plan();
//! assert_eq!(plan.edm_signals(), vec![clean]);
//! # let _ = measures;
//! # Ok(())
//! # }
//! ```
//!
//! Or estimate permeability experimentally — see the `arrestment_study`
//! example and the `study` binary in `permea-analysis`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use permea_analysis as analysis;
pub use permea_arrestment as arrestment;
pub use permea_core as core;
pub use permea_explorer as explorer;
pub use permea_fi as fi;
pub use permea_mech as mech;
pub use permea_obs as obs;
pub use permea_runtime as runtime;
pub use permea_target as target;

/// One-stop prelude re-exporting each crate's prelude.
pub mod prelude {
    pub use permea_analysis::prelude::*;
    pub use permea_arrestment::prelude::*;
    pub use permea_core::prelude::*;
    pub use permea_fi::prelude::*;
    pub use permea_mech::prelude::*;
    pub use permea_runtime::prelude::*;
}
