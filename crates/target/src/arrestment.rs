//! The paper's aircraft-arrestment system as a registered [`Target`].
//!
//! [`ArrestmentFactory`] moved here from `permea-analysis` (which re-exports
//! it) when the FI environment was generalised: the campaign now executes
//! against the [`Target`] trait, and the arrestment system is simply the
//! first registered implementation.

use crate::target::Target;
use crate::workload::{Workload, WorkloadError};
use permea_arrestment::constants::SCENARIO_CAP_MS;
use permea_arrestment::system::ArrestmentSystem;
use permea_arrestment::testcase::TestCase;
use permea_core::topology::SystemTopology;
use permea_fi::campaign::SystemFactory;
use permea_runtime::sim::Simulation;
use serde::{Deserialize, Serialize};

/// Wire form of a workload grid, used as the worker-process setup payload
/// (see [`permea_fi::process`]): the supervisor serialises the grid shape,
/// each worker rebuilds the identical factory from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct GridPayload {
    masses: usize,
    velocities: usize,
}

/// Builds one [`ArrestmentSystem`] simulation per workload case.
#[derive(Debug, Clone)]
pub struct ArrestmentFactory {
    cases: Vec<TestCase>,
}

impl ArrestmentFactory {
    /// Uses the paper's 25-case grid.
    pub fn paper() -> Self {
        ArrestmentFactory {
            cases: TestCase::paper_grid(),
        }
    }

    /// Uses an explicit case list.
    ///
    /// # Panics
    ///
    /// Panics if `cases` is empty.
    pub fn with_cases(cases: Vec<TestCase>) -> Self {
        assert!(!cases.is_empty(), "factory needs at least one case");
        ArrestmentFactory { cases }
    }

    /// The workload cases.
    pub fn cases(&self) -> &[TestCase] {
        &self.cases
    }

    /// Serialises a `masses × velocities` grid as a worker setup payload
    /// for [`from_payload`](Self::from_payload).
    pub fn grid_payload(masses: usize, velocities: usize) -> String {
        serde_json::to_string(&GridPayload { masses, velocities }).expect("payload serialises")
    }

    /// Rebuilds the factory from a [`grid_payload`](Self::grid_payload)
    /// string — the worker half of the process-isolation handshake.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed payload.
    pub fn from_payload(payload: &str) -> Result<Self, String> {
        let grid: GridPayload =
            serde_json::from_str(payload).map_err(|e| format!("malformed factory payload: {e}"))?;
        if grid.masses == 0 || grid.velocities == 0 {
            return Err(format!(
                "factory payload describes an empty {}x{} grid",
                grid.masses, grid.velocities
            ));
        }
        Ok(ArrestmentFactory::with_cases(TestCase::grid(
            grid.masses,
            grid.velocities,
        )))
    }
}

impl SystemFactory for ArrestmentFactory {
    fn build(&self, case: usize) -> Simulation {
        ArrestmentSystem::new(self.cases[case]).into_sim()
    }

    fn case_count(&self) -> usize {
        self.cases.len()
    }

    fn max_run_ms(&self) -> u64 {
        SCENARIO_CAP_MS + 300
    }
}

/// The arrestment system as a [`Target`]: workload keys `masses` and
/// `velocities` span the paper's `masses × velocities` test-case grid.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrestmentTarget;

impl Target for ArrestmentTarget {
    fn name(&self) -> &'static str {
        "arrestment"
    }

    fn description(&self) -> &'static str {
        "the paper's six-module aircraft-arrestment controller (PACNT/TIC1/TCNT/ADC inputs, TOC2 output)"
    }

    fn topology(&self) -> SystemTopology {
        ArrestmentSystem::topology()
    }

    fn default_workload(&self) -> Workload {
        Workload::new()
            .with_int("masses", 5)
            .with_int("velocities", 5)
    }

    fn factory(&self, workload: &Workload) -> Result<Box<dyn SystemFactory>, WorkloadError> {
        let masses = workload.int_in("masses", 1, 4_096)? as usize;
        let velocities = workload.int_in("velocities", 1, 4_096)? as usize;
        Ok(Box::new(ArrestmentFactory::with_cases(TestCase::grid(
            masses, velocities,
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_factory_has_25_cases() {
        let f = ArrestmentFactory::paper();
        assert_eq!(f.case_count(), 25);
        assert!(f.max_run_ms() > SCENARIO_CAP_MS);
    }

    #[test]
    fn built_simulations_have_the_six_modules() {
        let f = ArrestmentFactory::with_cases(vec![TestCase::new(14_000.0, 60.0)]);
        let sim = f.build(0);
        assert_eq!(sim.module_count(), 6);
        assert!(sim.module_by_name("CALC").is_some());
    }

    #[test]
    #[should_panic(expected = "at least one case")]
    fn empty_cases_panics() {
        ArrestmentFactory::with_cases(vec![]);
    }

    #[test]
    fn payload_roundtrips_the_grid() {
        let payload = ArrestmentFactory::grid_payload(3, 3);
        let f = ArrestmentFactory::from_payload(&payload).unwrap();
        assert_eq!(f.cases(), TestCase::grid(3, 3).as_slice());
    }

    #[test]
    fn malformed_and_empty_payloads_are_rejected() {
        assert!(ArrestmentFactory::from_payload("not json").is_err());
        assert!(ArrestmentFactory::from_payload(&ArrestmentFactory::grid_payload(0, 3)).is_err());
    }

    #[test]
    fn target_factory_spans_the_workload_grid() {
        let t = ArrestmentTarget;
        let w = t
            .default_workload()
            .overlaid(
                &Workload::new()
                    .with_int("masses", 3)
                    .with_int("velocities", 2),
            )
            .unwrap();
        let f = t.factory(&w).unwrap();
        assert_eq!(f.case_count(), 6);
        assert!(t.factory(&Workload::new().with_int("masses", 3)).is_err());
        let topo = t.topology();
        assert_eq!(topo.module_count(), 6);
    }
}
