//! The scenario suite runner: resolve a [`ScenarioSpec`] against the
//! registry, drive the campaign, measure failed error propagation, check
//! `[expect]` assertions, and — for `study suite DIR` — do all of that for
//! every scenario in a directory with a pass/fail summary table.

use crate::registry::{self, Registry};
use crate::scenario::{ScenarioError, ScenarioSpec};
use crate::target::Target;
use crate::workload::Workload;
use permea_fi::campaign::{Campaign, CampaignConfig};
use permea_fi::env::atomic_write;
use permea_fi::error::FiError;
use permea_fi::journal::{JournalHeader, RunJournal};
use permea_fi::outcome::RunOutcome;
use permea_fi::process::{IsolationMode, ProcessIsolation, WorkerCommand};
use permea_fi::results::CampaignResult;
use permea_fi::spec::CampaignSpec;
use permea_obs::Obs;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::AtomicBool;

/// Failed-error-propagation statistics over a campaign's run records.
///
/// A completed run whose injection actually changed the value
/// (`corrupted != original`) is *effective*; an effective run where no
/// monitored output ever diverged from the golden trace is *masked* —
/// the error died inside the system (Jahangirova et al. call this failed
/// error propagation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FepStats {
    /// Completed runs.
    pub completed: u64,
    /// Completed runs whose injected value differed from the original.
    pub effective: u64,
    /// Effective runs with no output divergence.
    pub masked: u64,
}

impl FepStats {
    /// Tallies the records of a campaign result (requires
    /// `keep_records = true`).
    pub fn from_result(result: &CampaignResult) -> FepStats {
        let mut stats = FepStats::default();
        for r in &result.records {
            if !matches!(r.outcome, RunOutcome::Completed) {
                continue;
            }
            stats.completed += 1;
            if r.corrupted_value == r.original_value {
                continue;
            }
            stats.effective += 1;
            if r.first_divergence.iter().all(Option::is_none) {
                stats.masked += 1;
            }
        }
        stats
    }

    /// The FEP rate `masked / effective` (0 when nothing was effective).
    pub fn rate(&self) -> f64 {
        if self.effective == 0 {
            0.0
        } else {
            self.masked as f64 / self.effective as f64
        }
    }
}

/// Execution options the suite applies on top of each scenario.
#[derive(Debug, Clone, Default)]
pub struct SuiteOptions {
    /// Run injection runs in supervised worker processes (requires the
    /// current executable to understand `--worker`, as the `study` and
    /// `campaign` bins do).
    pub process_isolation: bool,
    /// Overrides every scenario's thread count.
    pub threads: Option<usize>,
    /// Telemetry handle.
    pub obs: Obs,
}

/// A scenario resolved against the registry and ready to run.
pub struct ScenarioStudy {
    spec: ScenarioSpec,
    target: &'static dyn Target,
    workload: Workload,
    topology: permea_core::topology::SystemTopology,
    factory: Box<dyn permea_fi::campaign::SystemFactory>,
    campaign: CampaignSpec,
}

impl std::fmt::Debug for ScenarioStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioStudy")
            .field("scenario", &self.spec.name)
            .field("target", &self.target.name())
            .field("cases", &self.factory.case_count())
            .finish_non_exhaustive()
    }
}

impl ScenarioStudy {
    /// Resolves a parsed scenario: registry lookup, workload overlay,
    /// factory construction and campaign-spec validation. Everything that
    /// can be wrong with a scenario *file* is caught here, with the
    /// offending key path — running afterwards can only fail
    /// operationally.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] anchored at `target.name`, `workload.<key>` or
    /// the campaign/error-model key that failed validation.
    pub fn resolve(spec: ScenarioSpec) -> Result<ScenarioStudy, ScenarioError> {
        let target = Registry::builtin()
            .resolve(&spec.target)
            .map_err(|reason| ScenarioError::at("target.name", reason))?;
        let workload = target
            .default_workload()
            .overlaid(&spec.workload)
            .map_err(|e| ScenarioError::at(format!("workload.{}", e.key), e.reason))?;
        let factory = target
            .factory(&workload)
            .map_err(|e| ScenarioError::at(format!("workload.{}", e.key), e.reason))?;
        let topology = target.topology();
        let campaign = spec.campaign_spec_checked(&topology, factory.case_count())?;
        Ok(ScenarioStudy {
            spec,
            target,
            workload,
            topology,
            factory,
            campaign,
        })
    }

    /// The parsed scenario.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The resolved target.
    pub fn target(&self) -> &'static dyn Target {
        self.target
    }

    /// The fully overlaid workload (defaults + scenario overrides).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The target's topology.
    pub fn topology(&self) -> &permea_core::topology::SystemTopology {
        &self.topology
    }

    /// The expanded, validated campaign spec.
    pub fn campaign_spec(&self) -> &CampaignSpec {
        &self.campaign
    }

    /// The journal header identifying this scenario's campaign.
    pub fn journal_header(&self) -> JournalHeader {
        JournalHeader::new(
            &self.campaign,
            self.spec.campaign.seed,
            self.spec.campaign.horizon_ms,
        )
    }

    /// The campaign configuration the scenario expands to.
    pub fn campaign_config(&self, options: &SuiteOptions) -> Result<CampaignConfig, FiError> {
        let isolation = if options.process_isolation {
            let command = WorkerCommand::current_exe(vec!["--worker".to_string()])?;
            let payload = registry::worker_payload(self.target.name(), &self.workload);
            IsolationMode::Process(ProcessIsolation::new(command, payload))
        } else {
            IsolationMode::InProcess
        };
        Ok(CampaignConfig {
            threads: options.threads.unwrap_or(self.spec.campaign.threads),
            master_seed: self.spec.campaign.seed,
            keep_records: self.spec.campaign.keep_records,
            horizon_ms: self.spec.campaign.horizon_ms,
            fast_forward: self.spec.campaign.fast_forward,
            isolation,
            ..CampaignConfig::default()
        })
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Propagates campaign failures ([`FiError`]).
    pub fn run(&self, options: &SuiteOptions) -> Result<CampaignResult, FiError> {
        self.run_resumable_budgeted(options, None, None, None)
    }

    /// Runs with optional journal durability, cancellation and a budget of
    /// fresh runs — the same resumability contract as
    /// `permea_analysis::study::Study::run_resumable_budgeted`, target-
    /// agnostically. The journal must have been opened against
    /// [`ScenarioStudy::journal_header`].
    ///
    /// # Errors
    ///
    /// As [`ScenarioStudy::run`], plus [`FiError::Interrupted`] on
    /// cancellation or budget exhaustion.
    pub fn run_resumable_budgeted(
        &self,
        options: &SuiteOptions,
        journal: Option<&mut RunJournal>,
        cancel: Option<&AtomicBool>,
        max_new_runs: Option<u64>,
    ) -> Result<CampaignResult, FiError> {
        let config = self.campaign_config(options)?;
        let campaign = Campaign::new(self.factory.as_ref(), config).with_obs(options.obs.clone());
        campaign.run_resumable_budgeted(&self.campaign, journal, cancel, max_new_runs)
    }

    /// Checks the scenario's `[expect]` assertions against a result.
    /// Returns one human-readable violation per failed assertion.
    pub fn check_expectations(&self, result: &CampaignResult) -> Vec<String> {
        let mut violations = Vec::new();
        let Some(expect) = &self.spec.expect else {
            return violations;
        };
        let fep = FepStats::from_result(result);
        if let Some(runs) = expect.runs {
            if result.total_runs != runs {
                violations.push(format!(
                    "expected exactly {runs} runs, campaign executed {}",
                    result.total_runs
                ));
            }
        }
        let quarantined = result.outcomes.panicked + result.outcomes.hung + result.outcomes.crashed;
        if let Some(max) = expect.max_quarantined {
            if quarantined > max {
                violations.push(format!(
                    "expected at most {max} quarantined runs, saw {quarantined}"
                ));
            }
        }
        if let Some(min) = expect.min_fep {
            if fep.rate() < min {
                violations.push(format!(
                    "expected FEP rate >= {min}, measured {:.4} ({}/{} effective runs masked)",
                    fep.rate(),
                    fep.masked,
                    fep.effective
                ));
            }
        }
        if let Some(max) = expect.max_fep {
            if fep.rate() > max {
                violations.push(format!(
                    "expected FEP rate <= {max}, measured {:.4} ({}/{} effective runs masked)",
                    fep.rate(),
                    fep.masked,
                    fep.effective
                ));
            }
        }
        violations
    }
}

/// How one suite scenario ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioStatus {
    /// Ran and met every expectation.
    Pass,
    /// Ran, but the campaign failed or an expectation was violated.
    Fail,
    /// Never ran: the file failed parsing or validation.
    Invalid,
}

/// One row of the suite summary.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Scenario file name (relative to the suite directory).
    pub file: String,
    /// Scenario name (file stem until parsed).
    pub name: String,
    /// Target name ("?" until resolved).
    pub target: String,
    /// Outcome class.
    pub status: ScenarioStatus,
    /// Total runs executed.
    pub runs: u64,
    /// Quarantined (panicked/hung/crashed) runs.
    pub quarantined: u64,
    /// Measured FEP rate, when the scenario ran.
    pub fep: Option<f64>,
    /// Failure reasons / violations, empty on pass.
    pub detail: Vec<String>,
}

/// The result of running a scenario directory.
#[derive(Debug, Clone, Default)]
pub struct SuiteReport {
    /// One row per scenario file, in file-name order.
    pub rows: Vec<SuiteRow>,
}

impl SuiteReport {
    /// Whether every scenario passed.
    pub fn all_passed(&self) -> bool {
        self.rows.iter().all(|r| r.status == ScenarioStatus::Pass)
    }

    /// The pinned process exit code for this report: 0 all pass, 2 when
    /// any scenario file is invalid (usage), 1 for runtime/expectation
    /// failures.
    pub fn exit_code(&self) -> u8 {
        if self
            .rows
            .iter()
            .any(|r| r.status == ScenarioStatus::Invalid)
        {
            2
        } else if !self.all_passed() {
            1
        } else {
            0
        }
    }

    /// Renders the pass/fail summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:<20} {:<14} {:>6} {:>6} {:>7}  status",
            "scenario", "name", "target", "runs", "quar", "fep"
        );
        let _ = writeln!(out, "{}", "-".repeat(96));
        for r in &self.rows {
            let fep = r
                .fep
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".to_string());
            let status = match r.status {
                ScenarioStatus::Pass => "PASS",
                ScenarioStatus::Fail => "FAIL",
                ScenarioStatus::Invalid => "INVALID",
            };
            let _ = writeln!(
                out,
                "{:<28} {:<20} {:<14} {:>6} {:>6} {:>7}  {}",
                r.file, r.name, r.target, r.runs, r.quarantined, fep, status
            );
            for d in &r.detail {
                let _ = writeln!(out, "    - {d}");
            }
        }
        let passed = self
            .rows
            .iter()
            .filter(|r| r.status == ScenarioStatus::Pass)
            .count();
        let _ = writeln!(out, "{}/{} scenarios passed", passed, self.rows.len());
        out
    }

    /// Serialises the report as JSON for artifact upload.
    pub fn to_json(&self) -> String {
        #[derive(serde::Serialize)]
        struct JsonRow {
            file: String,
            name: String,
            target: String,
            status: String,
            runs: u64,
            quarantined: u64,
            fep: Option<f64>,
            detail: Vec<String>,
        }
        #[derive(serde::Serialize)]
        struct JsonReport {
            scenarios: Vec<JsonRow>,
            exit_code: u8,
        }
        let scenarios = self
            .rows
            .iter()
            .map(|r| JsonRow {
                file: r.file.clone(),
                name: r.name.clone(),
                target: r.target.clone(),
                status: match r.status {
                    ScenarioStatus::Pass => "pass",
                    ScenarioStatus::Fail => "fail",
                    ScenarioStatus::Invalid => "invalid",
                }
                .to_string(),
                runs: r.runs,
                quarantined: r.quarantined,
                fep: r.fep,
                detail: r.detail.clone(),
            })
            .collect();
        serde_json::to_string(&JsonReport {
            scenarios,
            exit_code: self.exit_code(),
        })
        .expect("report serialises")
    }
}

/// Runs every `*.toml` scenario under `dir` (file-name order). When
/// `out_dir` is given, writes `<out>/<stem>/result.json` plus a
/// `suite.json` / `suite.txt` summary pair.
///
/// # Errors
///
/// Only directory-level I/O failures error out; per-scenario problems
/// become `Invalid`/`Fail` rows.
pub fn run_suite(
    dir: &Path,
    out_dir: Option<&Path>,
    options: &SuiteOptions,
) -> Result<SuiteReport, FiError> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| FiError::ArtifactWrite {
            path: dir.display().to_string(),
            message: format!("cannot read scenario directory: {e}"),
        })?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();

    let mut report = SuiteReport::default();
    for path in files {
        let file = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let row = run_one(&path, &file, &stem, out_dir, options);
        report.rows.push(row);
    }

    if let Some(out) = out_dir {
        std::fs::create_dir_all(out).map_err(|e| FiError::ArtifactWrite {
            path: out.display().to_string(),
            message: e.to_string(),
        })?;
        atomic_write(out.join("suite.json"), report.to_json().as_bytes())?;
        atomic_write(out.join("suite.txt"), report.render().as_bytes())?;
    }
    Ok(report)
}

fn run_one(
    path: &Path,
    file: &str,
    stem: &str,
    out_dir: Option<&Path>,
    options: &SuiteOptions,
) -> SuiteRow {
    let mut row = SuiteRow {
        file: file.to_string(),
        name: stem.to_string(),
        target: "?".to_string(),
        status: ScenarioStatus::Invalid,
        runs: 0,
        quarantined: 0,
        fep: None,
        detail: Vec::new(),
    };
    let spec = match ScenarioSpec::load(path) {
        Ok(spec) => spec,
        Err(e) => {
            row.detail.push(e.to_string());
            return row;
        }
    };
    row.name = spec.name.clone();
    row.target = spec.target.clone();
    let study = match ScenarioStudy::resolve(spec) {
        Ok(study) => study,
        Err(e) => {
            row.detail.push(e.to_string());
            return row;
        }
    };
    let result = match study.run(options) {
        Ok(result) => result,
        Err(e) => {
            row.status = ScenarioStatus::Fail;
            row.detail.push(format!("campaign failed: {e}"));
            return row;
        }
    };
    let fep = FepStats::from_result(&result);
    row.runs = result.total_runs;
    row.quarantined = result.outcomes.panicked + result.outcomes.hung + result.outcomes.crashed;
    row.fep = Some(fep.rate());
    row.detail = study.check_expectations(&result);
    row.status = if row.detail.is_empty() {
        ScenarioStatus::Pass
    } else {
        ScenarioStatus::Fail
    };
    if let Some(out) = out_dir {
        let scenario_dir = out.join(stem);
        let write = std::fs::create_dir_all(&scenario_dir)
            .map_err(|e| FiError::ArtifactWrite {
                path: scenario_dir.display().to_string(),
                message: e.to_string(),
            })
            .and_then(|()| {
                let json = serde_json::to_string(&result).expect("result serialises");
                atomic_write(scenario_dir.join("result.json"), json.as_bytes())
            });
        if let Err(e) = write {
            row.status = ScenarioStatus::Fail;
            row.detail.push(format!("artifact write failed: {e}"));
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("permea-suite-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const PIPELINE_SCENARIO: &str = r#"
[scenario]
name = "pipeline-smoke"

[target]
name = "mask-pipeline"

[workload]
cases = 2

[campaign]
seed = 0xACED
times_ms = [100, 101, 250, 251]
targets = ["SCALE.extIn", "QUANT.clamped", "FOLD.quant"]

[error-model]
kind = "bit-flip"
bits = [0, 1, 9, 13]

[expect]
runs = 96
min_fep = 0.05
max_quarantined = 0
"#;

    #[test]
    fn resolve_rejects_unknown_targets_and_workload_keys() {
        let mut spec = ScenarioSpec::parse(PIPELINE_SCENARIO, "x").unwrap();
        spec.target = "warp-drive".to_string();
        let e = ScenarioStudy::resolve(spec).unwrap_err();
        assert_eq!(e.path, "target.name");
        assert!(e.reason.contains("unknown target"), "{e}");

        let mut spec = ScenarioSpec::parse(PIPELINE_SCENARIO, "x").unwrap();
        spec.workload = Workload::new().with_int("casez", 2);
        let e = ScenarioStudy::resolve(spec).unwrap_err();
        assert_eq!(e.path, "workload.casez");
    }

    #[test]
    fn scenario_runs_and_measures_nonzero_fep() {
        let spec = ScenarioSpec::parse(PIPELINE_SCENARIO, "x").unwrap();
        let study = ScenarioStudy::resolve(spec).unwrap();
        let result = study.run(&SuiteOptions::default()).unwrap();
        assert_eq!(result.total_runs, 96);
        let fep = FepStats::from_result(&result);
        assert!(fep.effective > 0);
        assert!(fep.masked > 0, "pipeline must mask something: {fep:?}");
        assert!(fep.rate() > 0.0 && fep.rate() < 1.0, "{fep:?}");
        assert!(study.check_expectations(&result).is_empty());
    }

    #[test]
    fn suite_runner_reports_pass_fail_and_invalid_rows() {
        let dir = scratch("mixed");
        std::fs::write(dir.join("a-good.toml"), PIPELINE_SCENARIO).unwrap();
        // Impossible expectation: same campaign, FEP floor of 1.0.
        std::fs::write(
            dir.join("b-failing.toml"),
            PIPELINE_SCENARIO.replace("min_fep = 0.05", "min_fep = 1.0"),
        )
        .unwrap();
        std::fs::write(dir.join("c-broken.toml"), "[target]\nname = \"nope\"\n").unwrap();
        let out = dir.join("out");
        let report = run_suite(&dir, Some(&out), &SuiteOptions::default()).unwrap();
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].status, ScenarioStatus::Pass);
        assert_eq!(report.rows[1].status, ScenarioStatus::Fail);
        assert!(
            report.rows[1].detail[0].contains("FEP"),
            "{:?}",
            report.rows[1]
        );
        assert_eq!(report.rows[2].status, ScenarioStatus::Invalid);
        assert_eq!(report.exit_code(), 2, "invalid dominates");
        assert!(out.join("suite.json").is_file());
        assert!(out.join("suite.txt").is_file());
        assert!(out.join("a-good").join("result.json").is_file());
        let rendered = report.render();
        assert!(rendered.contains("1/3 scenarios passed"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journaled_scenario_resumes_byte_identically_with_extended_models() {
        // Kill/resume smoke for the burst, multi-bit and intermittent
        // models: a journal written in two budgeted slices must replay to
        // the identical result, and the journal bytes must match a
        // one-shot journaled run.
        let text = r#"
[target]
name = "five-module"

[workload]
cases = 2

[campaign]
seed = 0xF1FE
threads = 1
times_ms = [51, 300]
targets = ["B.fbB", "E.sD"]

[error-model]
kind = "burst"
starts = [3, 9]
width = 3

[error-model.2]
kind = "multi-bit"
masks = [0x0041, 0x8001]

[error-model.3]
kind = "intermittent"
bits = [5]
period_ms = 7
count = 4
"#;
        let spec = ScenarioSpec::parse(text, "resume").unwrap();
        let study = ScenarioStudy::resolve(spec).unwrap();
        let options = SuiteOptions::default();
        let baseline = study.run(&options).unwrap();
        assert_eq!(baseline.total_runs, 2 * 5 * 2 * 2);

        let dir = scratch("resume");
        let header = study.journal_header();

        // One-shot journaled reference.
        let full = dir.join("full.jsonl");
        let (mut j, _) = RunJournal::open_or_create(&full, &header).unwrap();
        let full_result = study
            .run_resumable_budgeted(&options, Some(&mut j), None, None)
            .unwrap();
        j.sync().unwrap();
        drop(j);
        assert_eq!(full_result, baseline);

        // Killed after a 7-run budget slice, then resumed.
        let sliced = dir.join("sliced.jsonl");
        let (mut j, _) = RunJournal::open_or_create(&sliced, &header).unwrap();
        let e = study
            .run_resumable_budgeted(&options, Some(&mut j), None, Some(7))
            .unwrap_err();
        assert!(
            matches!(e, FiError::Interrupted { completed: 7, .. }),
            "{e}"
        );
        j.sync().unwrap();
        drop(j);
        let (mut j, loaded) = RunJournal::open_or_create(&sliced, &header).unwrap();
        assert_eq!(loaded.recovered, 7);
        let resumed = study
            .run_resumable_budgeted(&options, Some(&mut j), None, None)
            .unwrap();
        j.sync().unwrap();
        drop(j);
        assert_eq!(resumed, baseline);
        assert_eq!(
            std::fs::read(&sliced).unwrap(),
            std::fs::read(&full).unwrap(),
            "sliced and one-shot journals must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
