//! # permea-target — target-agnostic fault injection
//!
//! The paper's method (inject at module ports, compare against golden
//! traces, estimate permeability, backtrack propagation paths) is
//! system-agnostic; this crate is the seam that keeps it that way:
//!
//! - [`target::Target`] — the trait a system implements to become
//!   analysable: topology, workload parameters, and a campaign factory
//!   whose simulations carry the signal-bus wiring, snapshot/restore hooks
//!   and golden-trace access the runtime provides uniformly;
//! - [`registry`] — named built-in targets (`arrestment`, `five-module`,
//!   `mask-pipeline`) plus the worker-process payload both bins resolve
//!   through;
//! - [`scenario`] — the declarative TOML scenario format
//!   (`[target]` + `[workload]` + `[campaign]` + `[error-model]`) with
//!   key-path-anchored validation errors;
//! - [`suite`] — the scenario runner: resolve, execute, measure failed
//!   error propagation, check `[expect]` assertions, summarise a directory;
//! - [`toml`] — the self-contained TOML subset reader/writer underneath
//!   (the build environment vendors no TOML crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrestment;
pub mod fivemod;
pub mod pipeline;
pub mod registry;
pub mod scenario;
pub mod suite;
pub mod target;
pub mod toml;
pub mod workload;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::arrestment::{ArrestmentFactory, ArrestmentTarget};
    pub use crate::fivemod::{FiveModuleFactory, FiveModuleTarget};
    pub use crate::pipeline::{MaskPipelineFactory, MaskPipelineTarget};
    pub use crate::registry::Registry;
    pub use crate::scenario::{ScenarioError, ScenarioSpec};
    pub use crate::suite::{run_suite, FepStats, ScenarioStudy, SuiteOptions, SuiteReport};
    pub use crate::target::Target;
    pub use crate::workload::{Workload, WorkloadError, WorkloadValue};
}
