//! Workload parameters: the knobs a scenario turns on a target.
//!
//! A [`Workload`] is a flat, ordered map of scalar parameters (`masses = 3`,
//! `cases = 4`, ...). Each [`Target`](crate::target::Target) publishes its
//! accepted keys through [`Target::default_workload`]; the scenario layer
//! overlays the `[workload]` section on those defaults and rejects unknown
//! keys, so a typo fails loudly instead of silently running the default.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One scalar workload parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadValue {
    /// An integer parameter.
    Int(i64),
    /// A float parameter.
    Float(f64),
    /// A boolean parameter.
    Bool(bool),
    /// A string parameter.
    Str(String),
}

impl fmt::Display for WorkloadValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadValue::Int(v) => write!(f, "{v}"),
            WorkloadValue::Float(v) => write!(f, "{v:?}"),
            WorkloadValue::Bool(v) => write!(f, "{v}"),
            WorkloadValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

/// A workload parameter error: which key, and what is wrong with it.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadError {
    /// The offending key.
    pub key: String,
    /// What is wrong.
    pub reason: String,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload key `{}`: {}", self.key, self.reason)
    }
}

impl std::error::Error for WorkloadError {}

impl WorkloadError {
    /// Creates an error for `key`.
    pub fn new(key: impl Into<String>, reason: impl Into<String>) -> Self {
        WorkloadError {
            key: key.into(),
            reason: reason.into(),
        }
    }
}

/// A flat map of scalar workload parameters (sorted by key, so the wire
/// and TOML forms are canonical).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Workload(BTreeMap<String, WorkloadValue>);

impl Workload {
    /// An empty workload.
    pub fn new() -> Self {
        Workload::default()
    }

    /// Sets a parameter (builder style).
    pub fn with(mut self, key: impl Into<String>, value: WorkloadValue) -> Self {
        self.0.insert(key.into(), value);
        self
    }

    /// Sets an integer parameter (builder style).
    pub fn with_int(self, key: impl Into<String>, value: i64) -> Self {
        self.with(key, WorkloadValue::Int(value))
    }

    /// Inserts a parameter.
    pub fn set(&mut self, key: impl Into<String>, value: WorkloadValue) {
        self.0.insert(key.into(), value);
    }

    /// Looks a parameter up.
    pub fn get(&self, key: &str) -> Option<&WorkloadValue> {
        self.0.get(key)
    }

    /// Iterates parameters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &WorkloadValue)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether the workload has no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Overlays `other` on `self`: every key in `other` must already exist
    /// in `self` (the target's published defaults), or the overlay is
    /// rejected — this is what turns a typoed scenario key into an error.
    ///
    /// # Errors
    ///
    /// Returns the first unknown key with the accepted key list.
    pub fn overlaid(&self, other: &Workload) -> Result<Workload, WorkloadError> {
        let mut merged = self.clone();
        for (key, value) in other.iter() {
            if !self.0.contains_key(key) {
                let known: Vec<&str> = self.0.keys().map(String::as_str).collect();
                return Err(WorkloadError::new(
                    key,
                    format!("unknown workload key (accepted: {})", known.join(", ")),
                ));
            }
            merged.0.insert(key.to_string(), value.clone());
        }
        Ok(merged)
    }

    /// Reads a required integer parameter within `[min, max]`.
    ///
    /// # Errors
    ///
    /// Missing key, wrong type, or out-of-range value.
    pub fn int_in(&self, key: &str, min: i64, max: i64) -> Result<i64, WorkloadError> {
        match self.get(key) {
            None => Err(WorkloadError::new(key, "missing required parameter")),
            Some(WorkloadValue::Int(v)) if (min..=max).contains(v) => Ok(*v),
            Some(WorkloadValue::Int(v)) => Err(WorkloadError::new(
                key,
                format!("{v} is out of range {min}..={max}"),
            )),
            Some(other) => Err(WorkloadError::new(
                key,
                format!("expected an integer, got {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_accepts_known_keys_and_rejects_unknown_ones() {
        let defaults = Workload::new()
            .with_int("masses", 5)
            .with_int("velocities", 5);
        let merged = defaults
            .overlaid(&Workload::new().with_int("masses", 3))
            .unwrap();
        assert_eq!(merged.get("masses"), Some(&WorkloadValue::Int(3)));
        assert_eq!(merged.get("velocities"), Some(&WorkloadValue::Int(5)));

        let e = defaults
            .overlaid(&Workload::new().with_int("massess", 3))
            .unwrap_err();
        assert_eq!(e.key, "massess");
        assert!(e.reason.contains("masses, velocities"), "{e}");
    }

    #[test]
    fn int_in_enforces_type_and_range() {
        let w = Workload::new()
            .with_int("cases", 4)
            .with("label", WorkloadValue::Str("x".into()));
        assert_eq!(w.int_in("cases", 1, 64).unwrap(), 4);
        assert!(w
            .int_in("cases", 5, 64)
            .unwrap_err()
            .reason
            .contains("out of range"));
        assert!(w
            .int_in("label", 0, 9)
            .unwrap_err()
            .reason
            .contains("expected an integer"));
        assert!(w
            .int_in("absent", 0, 9)
            .unwrap_err()
            .reason
            .contains("missing"));
    }

    #[test]
    fn workload_json_roundtrips() {
        let w = Workload::new()
            .with_int("cases", 2)
            .with("scale", WorkloadValue::Float(1.5))
            .with("fast", WorkloadValue::Bool(true))
            .with("tag", WorkloadValue::Str("demo".into()));
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
