//! The [`Target`] trait: what a system must provide to be analysable.
//!
//! The paper's method is system-agnostic — inject at module input ports,
//! compare against golden traces, estimate permeability, backtrack
//! propagation paths. A [`Target`] packages everything that method needs
//! from a concrete system:
//!
//! - **module-graph topology** ([`Target::topology`]) — the static module /
//!   signal graph the analysis stages run over;
//! - **signal-bus wiring, snapshot/restore hooks and golden-trace access**
//!   — all carried by the [`Simulation`](permea_runtime::sim::Simulation)s
//!   the target's [`SystemFactory`] builds (the runtime's snapshot and
//!   tracing machinery is uniform across targets, so the campaign needs no
//!   per-target code);
//! - **workload generation** ([`Target::default_workload`] +
//!   [`Target::factory`]) — how scenario parameters become the set of test
//!   cases a campaign sweeps.
//!
//! `permea_fi::campaign` executes against the factory, never against a
//! concrete system type; registering a new system is implementing this
//! trait and adding it to [`crate::registry`].

use crate::workload::{Workload, WorkloadError};
use permea_core::topology::SystemTopology;
use permea_fi::campaign::SystemFactory;

/// A system under analysis.
///
/// Implementations must be deterministic: the same workload must always
/// produce factories whose simulations tick identically, or golden-run
/// comparison (and journal resume) breaks.
pub trait Target: Send + Sync {
    /// The registry name scenarios refer to (`[target] name = "..."`).
    fn name(&self) -> &'static str;

    /// One line describing the system.
    fn description(&self) -> &'static str;

    /// The static module/signal topology the analysis stages run over.
    /// Module and signal names must match the simulations the factory
    /// builds, port for port.
    fn topology(&self) -> SystemTopology;

    /// The accepted workload parameters with their default values. Keys
    /// absent here are rejected when a scenario's `[workload]` section is
    /// overlaid.
    fn default_workload(&self) -> Workload;

    /// Builds the campaign factory for a (fully overlaid) workload.
    ///
    /// # Errors
    ///
    /// Returns the offending key and reason for out-of-range or
    /// wrongly-typed parameters.
    fn factory(&self, workload: &Workload) -> Result<Box<dyn SystemFactory>, WorkloadError>;
}
