//! The target registry: the bins, the scenario suite and the server
//! submission path resolve target *names* here instead of linking against
//! concrete system types.
//!
//! The registry also owns the worker-process setup payload: supervisors
//! serialise `(target name, workload)` with [`worker_payload`], and worker
//! processes rebuild the identical factory with [`factory_from_payload`] —
//! one wire format for every target, so adding a system never touches the
//! process-isolation plumbing.

use crate::arrestment::ArrestmentTarget;
use crate::fivemod::FiveModuleTarget;
use crate::pipeline::MaskPipelineTarget;
use crate::target::Target;
use crate::workload::Workload;
use permea_fi::campaign::SystemFactory;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A set of named targets.
pub struct Registry {
    targets: Vec<Box<dyn Target>>,
}

impl Registry {
    /// The built-in targets: `arrestment`, `five-module`, `mask-pipeline`.
    pub fn builtin() -> &'static Registry {
        static BUILTIN: OnceLock<Registry> = OnceLock::new();
        BUILTIN.get_or_init(|| Registry {
            targets: vec![
                Box::new(ArrestmentTarget),
                Box::new(FiveModuleTarget),
                Box::new(MaskPipelineTarget),
            ],
        })
    }

    /// Looks a target up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Target> {
        self.targets
            .iter()
            .find(|t| t.name() == name)
            .map(Box::as_ref)
    }

    /// Looks a target up, describing the known names on failure.
    ///
    /// # Errors
    ///
    /// Returns a one-line human-readable reason (used verbatim as the
    /// server's typed `Rejected` reason).
    pub fn resolve(&self, name: &str) -> Result<&dyn Target, String> {
        self.get(name).ok_or_else(|| {
            format!(
                "unknown target `{name}` (known targets: {})",
                self.names().join(", ")
            )
        })
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.targets.iter().map(|t| t.name()).collect()
    }

    /// All registered targets, in registration order.
    pub fn targets(&self) -> impl Iterator<Item = &dyn Target> {
        self.targets.iter().map(Box::as_ref)
    }
}

/// Wire form of the worker-process setup payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WorkerPayload {
    target: String,
    workload: Workload,
}

/// Serialises `(target, workload)` as the worker setup payload for
/// [`factory_from_payload`]. The workload must already be fully overlaid
/// on the target's defaults.
pub fn worker_payload(target: &str, workload: &Workload) -> String {
    serde_json::to_string(&WorkerPayload {
        target: target.to_string(),
        workload: workload.clone(),
    })
    .expect("payload serialises")
}

/// Rebuilds a factory from a [`worker_payload`] string — the worker half
/// of the process-isolation handshake, resolved through
/// [`Registry::builtin`].
///
/// # Errors
///
/// Returns a description of the malformed payload, unknown target or
/// invalid workload.
pub fn factory_from_payload(payload: &str) -> Result<Box<dyn SystemFactory>, String> {
    let wire: WorkerPayload =
        serde_json::from_str(payload).map_err(|e| format!("malformed factory payload: {e}"))?;
    let target = Registry::builtin().resolve(&wire.target)?;
    let workload = target
        .default_workload()
        .overlaid(&wire.workload)
        .map_err(|e| e.to_string())?;
    target.factory(&workload).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_the_three_targets() {
        let names = Registry::builtin().names();
        assert_eq!(names, vec!["arrestment", "five-module", "mask-pipeline"]);
        for t in Registry::builtin().targets() {
            assert!(!t.description().is_empty());
            // Every target's defaults must build a working factory.
            let f = t.factory(&t.default_workload()).unwrap();
            assert!(f.case_count() >= 1, "{}", t.name());
            let topo = t.topology();
            assert!(topo.module_count() >= 1, "{}", t.name());
        }
    }

    #[test]
    fn resolve_names_known_targets_in_the_error() {
        let e = Registry::builtin().resolve("warp-drive").err().unwrap();
        assert!(e.contains("unknown target `warp-drive`"), "{e}");
        assert!(e.contains("arrestment"), "{e}");
        assert!(e.contains("mask-pipeline"), "{e}");
    }

    #[test]
    fn worker_payload_roundtrips_through_the_registry() {
        let payload = worker_payload(
            "arrestment",
            &Workload::new()
                .with_int("masses", 3)
                .with_int("velocities", 2),
        );
        let f = factory_from_payload(&payload).unwrap();
        assert_eq!(f.case_count(), 6);
    }

    #[test]
    fn bad_payloads_are_rejected_with_reasons() {
        assert!(factory_from_payload("not json")
            .err()
            .unwrap()
            .contains("malformed"));
        let unknown = worker_payload("warp-drive", &Workload::new());
        assert!(factory_from_payload(&unknown)
            .err()
            .unwrap()
            .contains("unknown target"));
        let bad_key = worker_payload("five-module", &Workload::new().with_int("masses", 3));
        assert!(factory_from_payload(&bad_key)
            .err()
            .unwrap()
            .contains("unknown workload key"));
    }
}
