//! Declarative TOML scenarios: one file describes a complete campaign.
//!
//! ```toml
//! [scenario]
//! name = "arrestment-quick"
//! description = "the quick study, declaratively"
//!
//! [target]
//! name = "arrestment"
//!
//! [workload]
//! masses = 3
//! velocities = 3
//!
//! [campaign]
//! seed = 0x5EED
//! times_ms = [500, 1500, 2500, 3500, 4500]
//! horizon_ms = 9000
//!
//! [error-model]
//! kind = "bit-flip"
//! bits = [0, 1, 2, 3]
//!
//! [expect]
//! min_fep = 0.0
//! ```
//!
//! Several `[error-model]` sections may appear (suffix later ones, e.g.
//! `[error-model.2]`); their models concatenate in file order. Every
//! validation error names the offending key path (`campaign.times_ms`,
//! `error-model.bits[2]`, ...) so a bad scenario fails with a pointer into
//! the file, not a stack trace.

use crate::toml::{write_table, TomlDoc, TomlTable, TomlValue};
use crate::workload::{Workload, WorkloadValue};
use permea_core::topology::SystemTopology;
use permea_fi::error::FiError;
use permea_fi::model::ErrorModel;
use permea_fi::spec::{CampaignSpec, InjectionScope, PortTarget};
use std::fmt;
use std::path::Path;

/// A scenario-layer error: the offending TOML key path plus the reason.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// Dotted key path (`campaign.times_ms`), a section name, or
    /// `line N` for raw syntax errors.
    pub path: String,
    /// What is wrong.
    pub reason: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error at `{}`: {}", self.path, self.reason)
    }
}

impl std::error::Error for ScenarioError {}

impl ScenarioError {
    /// Creates an error anchored at `path`.
    pub fn at(path: impl Into<String>, reason: impl Into<String>) -> Self {
        ScenarioError {
            path: path.into(),
            reason: reason.into(),
        }
    }
}

/// The `[campaign]` section: how the runs are driven.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCampaign {
    /// Master seed (default `0x5EED`).
    pub seed: u64,
    /// Worker threads, 0 = all cores (default 0).
    pub threads: usize,
    /// Injection instants in ms (required, non-empty).
    pub times_ms: Vec<u64>,
    /// Comparison horizon in ms (default: full scenario).
    pub horizon_ms: Option<u64>,
    /// Injection scope: `"port"` (default) or `"signal"`.
    pub scope: InjectionScope,
    /// Fork from golden snapshots and early-exit on reconvergence
    /// (default true; bit-identical either way).
    pub fast_forward: bool,
    /// Keep per-run records (default true; FEP needs them).
    pub keep_records: bool,
    /// Explicit `"MODULE.signal"` injection targets; empty = every input
    /// port of every module (the paper's experiment).
    pub targets: Vec<PortTarget>,
}

impl Default for ScenarioCampaign {
    fn default() -> Self {
        ScenarioCampaign {
            seed: 0x5EED,
            threads: 0,
            times_ms: Vec::new(),
            horizon_ms: None,
            scope: InjectionScope::Port,
            fast_forward: true,
            keep_records: true,
            targets: Vec::new(),
        }
    }
}

/// The optional `[expect]` section: per-scenario pass/fail assertions the
/// suite runner checks after the campaign completes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioExpect {
    /// Exact total run count.
    pub runs: Option<u64>,
    /// Lower bound on the failed-error-propagation rate (masked/effective).
    pub min_fep: Option<f64>,
    /// Upper bound on the failed-error-propagation rate.
    pub max_fep: Option<f64>,
    /// Upper bound on quarantined (crashed/hung) runs.
    pub max_quarantined: Option<u64>,
}

impl ScenarioExpect {
    fn is_empty(&self) -> bool {
        *self == ScenarioExpect::default()
    }
}

/// A fully parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (defaults to the file stem).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Registry name of the target system.
    pub target: String,
    /// Workload overrides (overlaid on the target's defaults).
    pub workload: Workload,
    /// Campaign drive parameters.
    pub campaign: ScenarioCampaign,
    /// Error models, in file order.
    pub models: Vec<ErrorModel>,
    /// Optional pass/fail assertions.
    pub expect: Option<ScenarioExpect>,
}

const KNOWN_SECTIONS: &[&str] = &["scenario", "target", "workload", "campaign", "expect"];

impl ScenarioSpec {
    /// Reads and parses a scenario file; the file stem is the fallback
    /// scenario name.
    ///
    /// # Errors
    ///
    /// I/O failures surface at path `file`, everything else as
    /// [`ScenarioSpec::parse`].
    pub fn load(path: &Path) -> Result<ScenarioSpec, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            ScenarioError::at("file", format!("cannot read {}: {e}", path.display()))
        })?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "scenario".to_string());
        ScenarioSpec::parse(&text, &stem)
    }

    /// Parses scenario TOML.
    ///
    /// # Errors
    ///
    /// Syntax errors carry their line (`line N`); semantic errors carry the
    /// offending key path.
    pub fn parse(text: &str, fallback_name: &str) -> Result<ScenarioSpec, ScenarioError> {
        let doc = TomlDoc::parse(text)
            .map_err(|e| ScenarioError::at(format!("line {}", e.line), e.message))?;

        for (name, _) in doc.tables() {
            let known = KNOWN_SECTIONS.contains(&name)
                || name == "error-model"
                || name.starts_with("error-model.");
            if !known {
                return Err(ScenarioError::at(
                    name,
                    format!(
                        "unknown section (known: {}, error-model)",
                        KNOWN_SECTIONS.join(", ")
                    ),
                ));
            }
        }

        let mut spec = ScenarioSpec {
            name: fallback_name.to_string(),
            description: String::new(),
            target: String::new(),
            workload: Workload::new(),
            campaign: ScenarioCampaign::default(),
            models: Vec::new(),
            expect: None,
        };

        if let Some(t) = doc.table("scenario") {
            reject_unknown(t, "scenario", &["name", "description"])?;
            if let Some(name) = get_str(t, "scenario", "name")? {
                if name.is_empty() {
                    return Err(ScenarioError::at("scenario.name", "must not be empty"));
                }
                spec.name = name;
            }
            if let Some(d) = get_str(t, "scenario", "description")? {
                spec.description = d;
            }
        }

        let target = doc
            .table("target")
            .ok_or_else(|| ScenarioError::at("target", "missing required [target] section"))?;
        reject_unknown(target, "target", &["name"])?;
        spec.target = get_str(target, "target", "name")?
            .ok_or_else(|| ScenarioError::at("target.name", "missing required key"))?;
        if spec.target.is_empty() {
            return Err(ScenarioError::at("target.name", "must not be empty"));
        }

        if let Some(w) = doc.table("workload") {
            for (key, value) in w.iter() {
                let path = format!("workload.{key}");
                let v = match value {
                    TomlValue::Int(i) => WorkloadValue::Int(*i),
                    TomlValue::Float(f) => WorkloadValue::Float(*f),
                    TomlValue::Bool(b) => WorkloadValue::Bool(*b),
                    TomlValue::Str(s) => WorkloadValue::Str(s.clone()),
                    TomlValue::Array(_) => {
                        return Err(ScenarioError::at(path, "workload values must be scalars"));
                    }
                };
                spec.workload.set(key, v);
            }
        }

        let campaign = doc
            .table("campaign")
            .ok_or_else(|| ScenarioError::at("campaign", "missing required [campaign] section"))?;
        reject_unknown(
            campaign,
            "campaign",
            &[
                "seed",
                "threads",
                "times_ms",
                "horizon_ms",
                "scope",
                "fast_forward",
                "keep_records",
                "targets",
            ],
        )?;
        // Seeds are 64-bit patterns, not quantities: a negative literal is
        // the two's-complement spelling of the upper seed range, mirroring
        // how `to_toml` has to emit them through the signed TOML integer.
        match campaign.get("seed") {
            None => {}
            Some(TomlValue::Int(i)) => spec.campaign.seed = *i as u64,
            Some(other) => {
                return Err(ScenarioError::at(
                    "campaign.seed",
                    format!("expected an integer, got {}", other.type_name()),
                ))
            }
        }
        if let Some(threads) = get_u64(campaign, "campaign", "threads")? {
            spec.campaign.threads = threads as usize;
        }
        spec.campaign.times_ms = get_u64_array(campaign, "campaign", "times_ms")?
            .ok_or_else(|| ScenarioError::at("campaign.times_ms", "missing required key"))?;
        if spec.campaign.times_ms.is_empty() {
            return Err(ScenarioError::at(
                "campaign.times_ms",
                "needs at least one injection instant",
            ));
        }
        if let Some(h) = get_u64(campaign, "campaign", "horizon_ms")? {
            if h == 0 {
                return Err(ScenarioError::at("campaign.horizon_ms", "must be positive"));
            }
            spec.campaign.horizon_ms = Some(h);
        }
        if let Some(scope) = get_str(campaign, "campaign", "scope")? {
            spec.campaign.scope = match scope.as_str() {
                "port" => InjectionScope::Port,
                "signal" => InjectionScope::Signal,
                other => {
                    return Err(ScenarioError::at(
                        "campaign.scope",
                        format!("unknown scope `{other}` (expected \"port\" or \"signal\")"),
                    ));
                }
            };
        }
        if let Some(ff) = get_bool(campaign, "campaign", "fast_forward")? {
            spec.campaign.fast_forward = ff;
        }
        if let Some(keep) = get_bool(campaign, "campaign", "keep_records")? {
            spec.campaign.keep_records = keep;
        }
        if let Some(TomlValue::Array(items)) = campaign.get("targets") {
            for (i, item) in items.iter().enumerate() {
                let path = format!("campaign.targets[{i}]");
                let TomlValue::Str(s) = item else {
                    return Err(ScenarioError::at(
                        path,
                        "expected a \"MODULE.signal\" string",
                    ));
                };
                let Some((module, signal)) = s.split_once('.') else {
                    return Err(ScenarioError::at(
                        path,
                        format!("`{s}` is not of the form \"MODULE.signal\""),
                    ));
                };
                if module.is_empty() || signal.is_empty() {
                    return Err(ScenarioError::at(
                        path,
                        format!("`{s}` is not of the form \"MODULE.signal\""),
                    ));
                }
                spec.campaign.targets.push(PortTarget::new(module, signal));
            }
        } else if let Some(other) = campaign.get("targets") {
            return Err(ScenarioError::at(
                "campaign.targets",
                format!("expected an array of strings, got {}", other.type_name()),
            ));
        }

        for (name, table) in doc.tables() {
            if name == "error-model" || name.starts_with("error-model.") {
                parse_models(table, name, &mut spec.models)?;
            }
        }
        if spec.models.is_empty() {
            return Err(ScenarioError::at(
                "error-model",
                "missing required [error-model] section",
            ));
        }

        if let Some(e) = doc.table("expect") {
            reject_unknown(
                e,
                "expect",
                &["runs", "min_fep", "max_fep", "max_quarantined"],
            )?;
            let expect = ScenarioExpect {
                runs: get_u64(e, "expect", "runs")?,
                min_fep: get_fraction(e, "expect", "min_fep")?,
                max_fep: get_fraction(e, "expect", "max_fep")?,
                max_quarantined: get_u64(e, "expect", "max_quarantined")?,
            };
            if let (Some(lo), Some(hi)) = (expect.min_fep, expect.max_fep) {
                if lo > hi {
                    return Err(ScenarioError::at(
                        "expect.min_fep",
                        format!("{lo} exceeds max_fep = {hi}"),
                    ));
                }
            }
            if !expect.is_empty() {
                spec.expect = Some(expect);
            }
        }

        Ok(spec)
    }

    /// Serialises the scenario in the canonical subset syntax
    /// [`ScenarioSpec::parse`] reads back identically.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let mut scenario: Vec<(&str, TomlValue)> =
            vec![("name", TomlValue::Str(self.name.clone()))];
        if !self.description.is_empty() {
            scenario.push(("description", TomlValue::Str(self.description.clone())));
        }
        write_table(&mut out, "scenario", scenario);
        write_table(
            &mut out,
            "target",
            vec![("name", TomlValue::Str(self.target.clone()))],
        );
        if !self.workload.is_empty() {
            let entries: Vec<(&str, TomlValue)> = self
                .workload
                .iter()
                .map(|(k, v)| {
                    let value = match v {
                        WorkloadValue::Int(i) => TomlValue::Int(*i),
                        WorkloadValue::Float(f) => TomlValue::Float(*f),
                        WorkloadValue::Bool(b) => TomlValue::Bool(*b),
                        WorkloadValue::Str(s) => TomlValue::Str(s.clone()),
                    };
                    (k, value)
                })
                .collect();
            write_table(&mut out, "workload", entries);
        }
        let c = &self.campaign;
        let mut campaign: Vec<(&str, TomlValue)> = vec![
            ("seed", TomlValue::Int(c.seed as i64)),
            ("threads", TomlValue::Int(c.threads as i64)),
            (
                "times_ms",
                TomlValue::Array(
                    c.times_ms
                        .iter()
                        .map(|&t| TomlValue::Int(t as i64))
                        .collect(),
                ),
            ),
        ];
        if let Some(h) = c.horizon_ms {
            campaign.push(("horizon_ms", TomlValue::Int(h as i64)));
        }
        campaign.push((
            "scope",
            TomlValue::Str(
                match c.scope {
                    InjectionScope::Port => "port",
                    InjectionScope::Signal => "signal",
                }
                .to_string(),
            ),
        ));
        campaign.push(("fast_forward", TomlValue::Bool(c.fast_forward)));
        campaign.push(("keep_records", TomlValue::Bool(c.keep_records)));
        if !c.targets.is_empty() {
            campaign.push((
                "targets",
                TomlValue::Array(
                    c.targets
                        .iter()
                        .map(|t| TomlValue::Str(format!("{}.{}", t.module, t.input_signal)))
                        .collect(),
                ),
            ));
        }
        write_table(&mut out, "campaign", campaign);

        for (i, group) in group_models(&self.models).iter().enumerate() {
            let section = if i == 0 {
                "error-model".to_string()
            } else {
                format!("error-model.{}", i + 1)
            };
            write_table(&mut out, &section, group.clone());
        }

        if let Some(e) = &self.expect {
            let mut expect: Vec<(&str, TomlValue)> = Vec::new();
            if let Some(runs) = e.runs {
                expect.push(("runs", TomlValue::Int(runs as i64)));
            }
            if let Some(v) = e.min_fep {
                expect.push(("min_fep", TomlValue::Float(v)));
            }
            if let Some(v) = e.max_fep {
                expect.push(("max_fep", TomlValue::Float(v)));
            }
            if let Some(v) = e.max_quarantined {
                expect.push(("max_quarantined", TomlValue::Int(v as i64)));
            }
            write_table(&mut out, "expect", expect);
        }
        out
    }

    /// Expands the campaign spec against a target's topology: explicit
    /// `campaign.targets` if given, otherwise every input port of every
    /// module in topology order (as the paper's experiment does).
    pub fn campaign_spec(&self, topology: &SystemTopology, cases: usize) -> CampaignSpec {
        let targets = if self.campaign.targets.is_empty() {
            let mut all = Vec::new();
            for m in topology.modules() {
                for &sig in topology.inputs_of(m) {
                    all.push(PortTarget::new(
                        topology.module_name(m),
                        topology.signal_name(sig),
                    ));
                }
            }
            all
        } else {
            self.campaign.targets.clone()
        };
        CampaignSpec {
            targets,
            models: self.models.clone(),
            times_ms: self.campaign.times_ms.clone(),
            cases,
            scope: self.campaign.scope,
            adaptive: None,
        }
    }

    /// As [`ScenarioSpec::campaign_spec`], but validated — spec-level
    /// failures come back anchored at the scenario key that caused them.
    ///
    /// # Errors
    ///
    /// Any [`CampaignSpec::validate`] failure, re-anchored.
    pub fn campaign_spec_checked(
        &self,
        topology: &SystemTopology,
        cases: usize,
    ) -> Result<CampaignSpec, ScenarioError> {
        let spec = self.campaign_spec(topology, cases);
        spec.validate().map_err(|e| {
            let path = match &e {
                FiError::EmptySpec("times") => "campaign.times_ms",
                FiError::EmptySpec("targets") | FiError::DuplicateTarget { .. } => {
                    "campaign.targets"
                }
                FiError::EmptySpec("models") | FiError::InvalidErrorModel { .. } => "error-model",
                FiError::DuplicateInstant { .. } => "campaign.times_ms",
                FiError::EmptySpec("cases") => "workload",
                _ => "campaign",
            };
            ScenarioError::at(path, e.to_string())
        })?;
        for (i, t) in spec.targets.iter().enumerate() {
            let path = if self.campaign.targets.is_empty() {
                "campaign.targets".to_string()
            } else {
                format!("campaign.targets[{i}]")
            };
            let Some(m) = topology.module_by_name(&t.module) else {
                return Err(ScenarioError::at(
                    path,
                    format!("target `{}` has no module `{}`", self.target, t.module),
                ));
            };
            let has_port = topology
                .inputs_of(m)
                .iter()
                .any(|&s| topology.signal_name(s) == t.input_signal);
            if !has_port {
                return Err(ScenarioError::at(
                    path,
                    format!(
                        "module `{}` has no input port bound to signal `{}`",
                        t.module, t.input_signal
                    ),
                ));
            }
        }
        Ok(spec)
    }
}

fn reject_unknown(table: &TomlTable, section: &str, known: &[&str]) -> Result<(), ScenarioError> {
    for key in table.keys() {
        if !known.contains(&key) {
            return Err(ScenarioError::at(
                format!("{section}.{key}"),
                format!("unknown key (known: {})", known.join(", ")),
            ));
        }
    }
    Ok(())
}

fn get_str(table: &TomlTable, section: &str, key: &str) -> Result<Option<String>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(TomlValue::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ScenarioError::at(
            format!("{section}.{key}"),
            format!("expected a string, got {}", other.type_name()),
        )),
    }
}

fn get_bool(table: &TomlTable, section: &str, key: &str) -> Result<Option<bool>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(TomlValue::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(ScenarioError::at(
            format!("{section}.{key}"),
            format!("expected a boolean, got {}", other.type_name()),
        )),
    }
}

fn get_u64(table: &TomlTable, section: &str, key: &str) -> Result<Option<u64>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(TomlValue::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(TomlValue::Int(i)) => Err(ScenarioError::at(
            format!("{section}.{key}"),
            format!("{i} must not be negative"),
        )),
        Some(other) => Err(ScenarioError::at(
            format!("{section}.{key}"),
            format!("expected an integer, got {}", other.type_name()),
        )),
    }
}

fn get_u64_array(
    table: &TomlTable,
    section: &str,
    key: &str,
) -> Result<Option<Vec<u64>>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(TomlValue::Array(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match item {
                    TomlValue::Int(v) if *v >= 0 => out.push(*v as u64),
                    TomlValue::Int(v) => {
                        return Err(ScenarioError::at(
                            format!("{section}.{key}[{i}]"),
                            format!("{v} must not be negative"),
                        ));
                    }
                    other => {
                        return Err(ScenarioError::at(
                            format!("{section}.{key}[{i}]"),
                            format!("expected an integer, got {}", other.type_name()),
                        ));
                    }
                }
            }
            Ok(Some(out))
        }
        Some(other) => Err(ScenarioError::at(
            format!("{section}.{key}"),
            format!("expected an array of integers, got {}", other.type_name()),
        )),
    }
}

fn get_fraction(table: &TomlTable, section: &str, key: &str) -> Result<Option<f64>, ScenarioError> {
    let v = match table.get(key) {
        None => return Ok(None),
        Some(TomlValue::Float(f)) => *f,
        Some(TomlValue::Int(i)) => *i as f64,
        Some(other) => {
            return Err(ScenarioError::at(
                format!("{section}.{key}"),
                format!("expected a number, got {}", other.type_name()),
            ));
        }
    };
    if !(0.0..=1.0).contains(&v) {
        return Err(ScenarioError::at(
            format!("{section}.{key}"),
            format!("{v} is out of range 0.0..=1.0"),
        ));
    }
    Ok(Some(v))
}

/// Parses one `[error-model*]` section, appending its models in order.
fn parse_models(
    table: &TomlTable,
    section: &str,
    models: &mut Vec<ErrorModel>,
) -> Result<(), ScenarioError> {
    let kind = get_str(table, section, "kind")?
        .ok_or_else(|| ScenarioError::at(format!("{section}.kind"), "missing required key"))?;

    let bit_list = |key: &str| -> Result<Vec<u8>, ScenarioError> {
        let raw = get_u64_array(table, section, key)?
            .ok_or_else(|| ScenarioError::at(format!("{section}.{key}"), "missing required key"))?;
        if raw.is_empty() {
            return Err(ScenarioError::at(
                format!("{section}.{key}"),
                "needs at least one entry",
            ));
        }
        raw.iter()
            .enumerate()
            .map(|(i, &b)| {
                if b < 16 {
                    Ok(b as u8)
                } else {
                    Err(ScenarioError::at(
                        format!("{section}.{key}[{i}]"),
                        format!("bit {b} is out of range 0..16"),
                    ))
                }
            })
            .collect()
    };
    let scalar_u64 = |key: &str, max: u64| -> Result<u64, ScenarioError> {
        let v = get_u64(table, section, key)?
            .ok_or_else(|| ScenarioError::at(format!("{section}.{key}"), "missing required key"))?;
        if v > max {
            return Err(ScenarioError::at(
                format!("{section}.{key}"),
                format!("{v} is out of range 0..={max}"),
            ));
        }
        Ok(v)
    };

    match kind.as_str() {
        "bit-flip" => {
            reject_unknown(table, section, &["kind", "bits"])?;
            for bit in bit_list("bits")? {
                models.push(ErrorModel::BitFlip { bit });
            }
        }
        "stuck-at-one" => {
            reject_unknown(table, section, &["kind", "bits"])?;
            for bit in bit_list("bits")? {
                models.push(ErrorModel::StuckAtOne { bit });
            }
        }
        "stuck-at-zero" => {
            reject_unknown(table, section, &["kind", "bits"])?;
            for bit in bit_list("bits")? {
                models.push(ErrorModel::StuckAtZero { bit });
            }
        }
        "offset" => {
            reject_unknown(table, section, &["kind", "deltas"])?;
            let Some(TomlValue::Array(items)) = table.get("deltas") else {
                return Err(ScenarioError::at(
                    format!("{section}.deltas"),
                    "missing required key (an array of non-zero integers)",
                ));
            };
            if items.is_empty() {
                return Err(ScenarioError::at(
                    format!("{section}.deltas"),
                    "needs at least one entry",
                ));
            }
            for (i, item) in items.iter().enumerate() {
                let path = format!("{section}.deltas[{i}]");
                let TomlValue::Int(v) = item else {
                    return Err(ScenarioError::at(
                        path,
                        format!("expected an integer, got {}", item.type_name()),
                    ));
                };
                let delta = i16::try_from(*v).map_err(|_| {
                    ScenarioError::at(&path, format!("{v} does not fit in a signed 16-bit offset"))
                })?;
                models.push(ErrorModel::Offset { delta });
            }
        }
        "random" => {
            reject_unknown(table, section, &["kind"])?;
            models.push(ErrorModel::RandomValue);
        }
        "zero" => {
            reject_unknown(table, section, &["kind"])?;
            models.push(ErrorModel::Zero);
        }
        "saturate" => {
            reject_unknown(table, section, &["kind"])?;
            models.push(ErrorModel::Saturate);
        }
        "burst" => {
            reject_unknown(table, section, &["kind", "start", "starts", "width"])?;
            let width = scalar_u64("width", 16)? as u8;
            let starts: Vec<u8> = if table.get("starts").is_some() {
                bit_list("starts")?
            } else {
                vec![scalar_u64("start", 15)? as u8]
            };
            for (i, &start) in starts.iter().enumerate() {
                if u32::from(start) + u32::from(width) > 16 || width == 0 {
                    let path = if table.get("starts").is_some() {
                        format!("{section}.starts[{i}]")
                    } else {
                        format!("{section}.start")
                    };
                    return Err(ScenarioError::at(
                        path,
                        format!("burst {start}+{width} leaves the 16-bit word"),
                    ));
                }
                models.push(ErrorModel::Burst { start, width });
            }
        }
        "multi-bit" => {
            reject_unknown(table, section, &["kind", "mask", "masks"])?;
            let masks: Vec<u64> = if table.get("masks").is_some() {
                let raw = get_u64_array(table, section, "masks")?.expect("checked present");
                if raw.is_empty() {
                    return Err(ScenarioError::at(
                        format!("{section}.masks"),
                        "needs at least one entry",
                    ));
                }
                raw
            } else {
                vec![scalar_u64("mask", 0xFFFF)?]
            };
            for (i, &mask) in masks.iter().enumerate() {
                let path = if table.get("masks").is_some() {
                    format!("{section}.masks[{i}]")
                } else {
                    format!("{section}.mask")
                };
                if mask == 0 || mask > 0xFFFF {
                    return Err(ScenarioError::at(
                        path,
                        format!("mask {mask:#x} must be non-zero and fit in 16 bits"),
                    ));
                }
                models.push(ErrorModel::MultiBit { mask: mask as u16 });
            }
        }
        "intermittent" => {
            reject_unknown(
                table,
                section,
                &["kind", "bit", "bits", "period_ms", "count"],
            )?;
            let period = scalar_u64("period_ms", u64::from(u16::MAX))? as u16;
            let count = scalar_u64("count", u64::from(u8::MAX))? as u8;
            if period == 0 {
                return Err(ScenarioError::at(
                    format!("{section}.period_ms"),
                    "must be positive",
                ));
            }
            if count == 0 {
                return Err(ScenarioError::at(
                    format!("{section}.count"),
                    "must be positive",
                ));
            }
            let bits: Vec<u8> = if table.get("bits").is_some() {
                bit_list("bits")?
            } else {
                vec![scalar_u64("bit", 15)? as u8]
            };
            for bit in bits {
                models.push(ErrorModel::Intermittent {
                    bit,
                    period_ms: period,
                    count,
                });
            }
        }
        other => {
            return Err(ScenarioError::at(
                format!("{section}.kind"),
                format!(
                    "unknown error-model kind `{other}` (known: bit-flip, stuck-at-one, \
                     stuck-at-zero, offset, random, zero, saturate, burst, multi-bit, \
                     intermittent)"
                ),
            ));
        }
    }
    Ok(())
}

/// Groups consecutive same-shape models into compact sections, preserving
/// order: the inverse of [`parse_models`].
fn group_models(models: &[ErrorModel]) -> Vec<Vec<(&'static str, TomlValue)>> {
    #[derive(PartialEq)]
    enum Shape {
        Bits(&'static str),
        Deltas,
        Single(&'static str),
        Burst(u8),
        Masks,
        Intermittent(u16, u8),
    }
    fn shape(m: &ErrorModel) -> Shape {
        match m {
            ErrorModel::BitFlip { .. } => Shape::Bits("bit-flip"),
            ErrorModel::StuckAtOne { .. } => Shape::Bits("stuck-at-one"),
            ErrorModel::StuckAtZero { .. } => Shape::Bits("stuck-at-zero"),
            ErrorModel::Offset { .. } => Shape::Deltas,
            ErrorModel::RandomValue => Shape::Single("random"),
            ErrorModel::Zero => Shape::Single("zero"),
            ErrorModel::Saturate => Shape::Single("saturate"),
            ErrorModel::Burst { width, .. } => Shape::Burst(*width),
            ErrorModel::MultiBit { .. } => Shape::Masks,
            ErrorModel::Intermittent {
                period_ms, count, ..
            } => Shape::Intermittent(*period_ms, *count),
            // `ErrorModel` is non-exhaustive: a variant this crate does not
            // know about cannot be expressed in scenario TOML yet.
            other => unimplemented!("error model {other} has no scenario syntax"),
        }
    }

    let mut groups: Vec<Vec<(&'static str, TomlValue)>> = Vec::new();
    let mut i = 0;
    while i < models.len() {
        let s = shape(&models[i]);
        let mut j = i + 1;
        // `Single` shapes carry no list key, so each model is its own
        // section even when consecutive duplicates occur.
        if !matches!(s, Shape::Single(_)) {
            while j < models.len() && shape(&models[j]) == s {
                j += 1;
            }
        }
        let run = &models[i..j];
        let section: Vec<(&'static str, TomlValue)> = match s {
            Shape::Bits(kind) => {
                let bits = run
                    .iter()
                    .map(|m| match m {
                        ErrorModel::BitFlip { bit }
                        | ErrorModel::StuckAtOne { bit }
                        | ErrorModel::StuckAtZero { bit } => TomlValue::Int(i64::from(*bit)),
                        _ => unreachable!("shape grouped"),
                    })
                    .collect();
                vec![
                    ("kind", TomlValue::Str(kind.to_string())),
                    ("bits", TomlValue::Array(bits)),
                ]
            }
            Shape::Deltas => {
                let deltas = run
                    .iter()
                    .map(|m| match m {
                        ErrorModel::Offset { delta } => TomlValue::Int(i64::from(*delta)),
                        _ => unreachable!("shape grouped"),
                    })
                    .collect();
                vec![
                    ("kind", TomlValue::Str("offset".to_string())),
                    ("deltas", TomlValue::Array(deltas)),
                ]
            }
            Shape::Single(kind) => vec![("kind", TomlValue::Str(kind.to_string()))],
            Shape::Burst(width) => {
                let starts = run
                    .iter()
                    .map(|m| match m {
                        ErrorModel::Burst { start, .. } => TomlValue::Int(i64::from(*start)),
                        _ => unreachable!("shape grouped"),
                    })
                    .collect();
                vec![
                    ("kind", TomlValue::Str("burst".to_string())),
                    ("starts", TomlValue::Array(starts)),
                    ("width", TomlValue::Int(i64::from(width))),
                ]
            }
            Shape::Masks => {
                let masks = run
                    .iter()
                    .map(|m| match m {
                        ErrorModel::MultiBit { mask } => TomlValue::Int(i64::from(*mask)),
                        _ => unreachable!("shape grouped"),
                    })
                    .collect();
                vec![
                    ("kind", TomlValue::Str("multi-bit".to_string())),
                    ("masks", TomlValue::Array(masks)),
                ]
            }
            Shape::Intermittent(period_ms, count) => {
                let bits = run
                    .iter()
                    .map(|m| match m {
                        ErrorModel::Intermittent { bit, .. } => TomlValue::Int(i64::from(*bit)),
                        _ => unreachable!("shape grouped"),
                    })
                    .collect();
                vec![
                    ("kind", TomlValue::Str("intermittent".to_string())),
                    ("bits", TomlValue::Array(bits)),
                    ("period_ms", TomlValue::Int(i64::from(period_ms))),
                    ("count", TomlValue::Int(i64::from(count))),
                ]
            }
        };
        groups.push(section);
        i = j;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
[scenario]
name = "demo"
description = "a demo"

[target]
name = "five-module"

[workload]
cases = 4

[campaign]
seed = 0xF1FE
times_ms = [51, 300]
scope = "port"
targets = ["B.sA", "B.fbB", "D.sB", "E.sD"]

[error-model]
kind = "bit-flip"
bits = [0, 5, 12, 15]

[error-model.2]
kind = "burst"
starts = [4, 8]
width = 3

[expect]
runs = 128
max_quarantined = 0
"#;

    #[test]
    fn parses_a_full_scenario() {
        let spec = ScenarioSpec::parse(GOOD, "fallback").unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.target, "five-module");
        assert_eq!(spec.campaign.seed, 0xF1FE);
        assert_eq!(spec.campaign.times_ms, vec![51, 300]);
        assert_eq!(spec.campaign.targets.len(), 4);
        assert_eq!(spec.models.len(), 6);
        assert_eq!(spec.models[4], ErrorModel::Burst { start: 4, width: 3 });
        let expect = spec.expect.unwrap();
        assert_eq!(expect.runs, Some(128));
        assert_eq!(expect.max_quarantined, Some(0));
    }

    #[test]
    fn roundtrips_through_to_toml() {
        let spec = ScenarioSpec::parse(GOOD, "fallback").unwrap();
        let back = ScenarioSpec::parse(&spec.to_toml(), "fallback").unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn name_falls_back_to_the_file_stem() {
        let text = r#"
[target]
name = "arrestment"
[campaign]
times_ms = [500]
[error-model]
kind = "zero"
"#;
        let spec = ScenarioSpec::parse(text, "my-file").unwrap();
        assert_eq!(spec.name, "my-file");
        assert_eq!(spec.models, vec![ErrorModel::Zero]);
        assert!(spec.expect.is_none());
    }

    #[test]
    fn unknown_keys_sections_and_kinds_are_rejected_with_paths() {
        let cases: &[(&str, &str, &str)] = &[
            (
                "[target]\nname = \"a\"\nextra = 1\n[campaign]\ntimes_ms = [1]\n[error-model]\nkind = \"zero\"\n",
                "target.extra",
                "unknown key",
            ),
            (
                "[target]\nname = \"a\"\n[campaign]\ntimes_ms = [1]\ntyop = 2\n[error-model]\nkind = \"zero\"\n",
                "campaign.tyop",
                "unknown key",
            ),
            (
                "[mystery]\nx = 1\n[target]\nname = \"a\"\n[campaign]\ntimes_ms = [1]\n[error-model]\nkind = \"zero\"\n",
                "mystery",
                "unknown section",
            ),
            (
                "[target]\nname = \"a\"\n[campaign]\ntimes_ms = [1]\n[error-model]\nkind = \"gamma-ray\"\n",
                "error-model.kind",
                "unknown error-model kind",
            ),
        ];
        for (text, path, needle) in cases {
            let e = ScenarioSpec::parse(text, "x").unwrap_err();
            assert_eq!(e.path, *path, "{e}");
            assert!(e.reason.contains(needle), "{e}");
        }
    }

    #[test]
    fn bad_ranges_are_rejected_with_paths() {
        let cases: &[(&str, &str)] = &[
            (
                "[target]\nname = \"a\"\n[campaign]\ntimes_ms = [1]\n[error-model]\nkind = \"bit-flip\"\nbits = [0, 16]\n",
                "error-model.bits[1]",
            ),
            (
                "[target]\nname = \"a\"\n[campaign]\ntimes_ms = [1]\n[error-model]\nkind = \"burst\"\nstart = 15\nwidth = 4\n",
                "error-model.start",
            ),
            (
                "[target]\nname = \"a\"\n[campaign]\ntimes_ms = [1]\n[error-model]\nkind = \"multi-bit\"\nmask = 0\n",
                "error-model.mask",
            ),
            (
                "[target]\nname = \"a\"\n[campaign]\ntimes_ms = [1]\n[error-model]\nkind = \"intermittent\"\nbit = 3\nperiod_ms = 0\ncount = 2\n",
                "error-model.period_ms",
            ),
            (
                "[target]\nname = \"a\"\n[campaign]\ntimes_ms = [-5]\n[error-model]\nkind = \"zero\"\n",
                "campaign.times_ms[0]",
            ),
            (
                "[target]\nname = \"a\"\n[campaign]\ntimes_ms = [1]\n[error-model]\nkind = \"zero\"\n[expect]\nmin_fep = 1.5\n",
                "expect.min_fep",
            ),
        ];
        for (text, path) in cases {
            let e = ScenarioSpec::parse(text, "x").unwrap_err();
            assert_eq!(e.path, *path, "{e}");
        }
    }

    #[test]
    fn syntax_errors_carry_their_line() {
        let e = ScenarioSpec::parse("[target]\nname =\n", "x").unwrap_err();
        assert_eq!(e.path, "line 2");
    }

    #[test]
    fn campaign_spec_expands_all_ports_and_checks_explicit_ones() {
        let topo = crate::fivemod::topology();
        let text = r#"
[target]
name = "five-module"
[campaign]
times_ms = [51]
[error-model]
kind = "bit-flip"
bits = [0]
"#;
        let spec = ScenarioSpec::parse(text, "x").unwrap();
        let campaign = spec.campaign_spec_checked(&topo, 2).unwrap();
        // A 1 + B 2 + C 1 + D 2 + E 3 input ports.
        assert_eq!(campaign.targets.len(), 9);
        assert_eq!(campaign.cases, 2);

        let bad = ScenarioSpec {
            campaign: ScenarioCampaign {
                targets: vec![PortTarget::new("B", "nope")],
                ..spec.campaign.clone()
            },
            ..spec.clone()
        };
        let e = bad.campaign_spec_checked(&topo, 2).unwrap_err();
        assert_eq!(e.path, "campaign.targets[0]");
        assert!(e.reason.contains("no input port"), "{e}");

        let dup = ScenarioSpec {
            campaign: ScenarioCampaign {
                times_ms: vec![51, 51],
                ..spec.campaign.clone()
            },
            ..spec.clone()
        };
        let e = dup.campaign_spec_checked(&topo, 2).unwrap_err();
        assert_eq!(e.path, "campaign.times_ms");
    }
}
