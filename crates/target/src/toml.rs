//! A minimal TOML subset parser and serializer for scenario files.
//!
//! The build environment vendors no TOML crate, so the scenario layer
//! carries its own reader for the slice of TOML it actually uses:
//!
//! - `[section]` headers (dotted names allowed, e.g. `[error-model.2]`)
//! - `key = value` pairs with bare keys (`A-Za-z0-9_-`)
//! - values: basic strings with escapes, integers (decimal or `0x` hex,
//!   `_` separators), floats, booleans, and flat arrays of those scalars
//! - `#` comments and blank lines
//!
//! Deliberately out of scope: multi-line strings, literal strings, dates,
//! inline tables, arrays of tables, and nested arrays. Every error carries
//! the 1-based line number it was found on; callers prepend the key path.

use std::fmt;

/// A scalar or flat-array TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic string.
    Str(String),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array of scalars.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// A short name for error messages ("string", "integer", ...).
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
        }
    }

    /// Renders the value in the same subset syntax [`TomlDoc::parse`]
    /// accepts, so serialize → parse round-trips exactly.
    pub fn render(&self) -> String {
        match self {
            TomlValue::Str(s) => render_string(s),
            TomlValue::Int(i) => i.to_string(),
            // `{:?}` prints the shortest representation that parses back to
            // the identical f64 and always includes a `.` or an exponent,
            // so the reader re-classifies it as a float.
            TomlValue::Float(f) => {
                let s = format!("{f:?}");
                if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("inf") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            TomlValue::Bool(b) => b.to_string(),
            TomlValue::Array(items) => {
                let inner: Vec<String> = items.iter().map(TomlValue::render).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }
}

fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{:04X}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One `[section]`: its key/value pairs in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    entries: Vec<(String, TomlValue, usize)>,
}

impl TomlTable {
    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v)
    }

    /// The line a key was defined on (1-based).
    pub fn line_of(&self, key: &str) -> Option<usize> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, _, l)| *l)
    }

    /// All keys in file order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _, _)| k.as_str())
    }

    /// All `(key, value)` pairs in file order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TomlValue)> {
        self.entries.iter().map(|(k, v, _)| (k.as_str(), v))
    }

    /// Whether the table has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed document: named tables in file order.
///
/// Keys before the first `[section]` header are rejected — every scenario
/// key lives in a named section.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlDoc {
    tables: Vec<(String, TomlTable, usize)>,
}

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

/// Strips a trailing `#` comment, honouring quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' {
            return &line[..i];
        }
    }
    line
}

impl TomlDoc {
    /// Parses a document.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error (unterminated string, bad number,
    /// duplicate key or section, key outside a section, ...) with its line.
    pub fn parse(text: &str) -> Result<TomlDoc, TomlError> {
        let mut doc = TomlDoc::default();
        let mut current: Option<usize> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err(line_no, "section header is missing its closing `]`"))?
                    .trim();
                if !is_bare_key(name) {
                    return Err(err(line_no, format!("invalid section name `{name}`")));
                }
                if doc.tables.iter().any(|(n, _, _)| n == name) {
                    return Err(err(line_no, format!("duplicate section `[{name}]`")));
                }
                doc.tables
                    .push((name.to_string(), TomlTable::default(), line_no));
                current = Some(doc.tables.len() - 1);
                continue;
            }
            let eq = line
                .find('=')
                .ok_or_else(|| err(line_no, "expected `key = value` or `[section]`"))?;
            let key = line[..eq].trim();
            if !is_bare_key(key) || key.contains('.') {
                return Err(err(line_no, format!("invalid key `{key}`")));
            }
            let value = parse_value(line[eq + 1..].trim(), line_no)?;
            let Some(t) = current else {
                return Err(err(
                    line_no,
                    format!("key `{key}` appears before any [section] header"),
                ));
            };
            let table = &mut doc.tables[t].1;
            if table.get(key).is_some() {
                return Err(err(
                    line_no,
                    format!("duplicate key `{key}` in section `[{}]`", doc.tables[t].0),
                ));
            }
            table.entries.push((key.to_string(), value, line_no));
        }
        Ok(doc)
    }

    /// Looks a section up by exact name.
    pub fn table(&self, name: &str) -> Option<&TomlTable> {
        self.tables
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, t, _)| t)
    }

    /// All `(name, table)` pairs in file order.
    pub fn tables(&self) -> impl Iterator<Item = (&str, &TomlTable)> {
        self.tables.iter().map(|(n, t, _)| (n.as_str(), t))
    }

    /// The line a section header appeared on (1-based).
    pub fn line_of(&self, name: &str) -> Option<usize> {
        self.tables
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, l)| *l)
    }
}

fn parse_value(s: &str, line: usize) -> Result<TomlValue, TomlError> {
    if s.is_empty() {
        return Err(err(line, "missing value after `=`"));
    }
    if s.starts_with('"') {
        let (v, rest) = parse_string(s, line)?;
        if !rest.trim().is_empty() {
            return Err(err(line, format!("trailing junk after string: `{rest}`")));
        }
        return Ok(TomlValue::Str(v));
    }
    if s.starts_with('[') {
        return parse_array(s, line);
    }
    parse_scalar(s, line)
}

/// Parses a leading basic string, returning it and the unconsumed tail.
fn parse_string(s: &str, line: usize) -> Result<(String, &str), TomlError> {
    debug_assert!(s.starts_with('"'));
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => {
                let (_, e) = chars
                    .next()
                    .ok_or_else(|| err(line, "unterminated escape in string"))?;
                match e {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' | 'U' => {
                        let n = if e == 'u' { 4 } else { 8 };
                        let mut code = 0u32;
                        for _ in 0..n {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| err(line, "truncated \\u escape"))?;
                            let d = h
                                .to_digit(16)
                                .ok_or_else(|| err(line, "non-hex digit in \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| err(line, "\\u escape is not a scalar value"))?,
                        );
                    }
                    other => {
                        return Err(err(line, format!("unsupported escape `\\{other}`")));
                    }
                }
            }
            c => out.push(c),
        }
    }
    Err(err(line, "unterminated string"))
}

fn parse_array(s: &str, line: usize) -> Result<TomlValue, TomlError> {
    debug_assert!(s.starts_with('['));
    let body = s.strip_suffix(']').ok_or_else(|| {
        err(
            line,
            "array is missing its closing `]` (arrays must be one line)",
        )
    })?;
    let body = &body[1..];
    let mut items = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        if rest.starts_with('[') {
            return Err(err(line, "nested arrays are not supported"));
        }
        let (item, tail) = if rest.starts_with('"') {
            let (v, tail) = parse_string(rest, line)?;
            (TomlValue::Str(v), tail)
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            (parse_scalar(rest[..end].trim(), line)?, &rest[end..])
        };
        items.push(item);
        rest = tail.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(err(line, format!("expected `,` or `]` near `{rest}`")));
        }
    }
    Ok(TomlValue::Array(items))
}

fn parse_scalar(s: &str, line: usize) -> Result<TomlValue, TomlError> {
    match s {
        "" => return Err(err(line, "missing value")),
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    let digits: String = s.chars().filter(|&c| c != '_').collect();
    let unsigned = digits.strip_prefix(['-', '+']).unwrap_or(&digits);
    if let Some(hex) = unsigned.strip_prefix("0x").or(unsigned.strip_prefix("0X")) {
        let v = i64::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("invalid hex integer `{s}`")))?;
        return Ok(TomlValue::Int(if digits.starts_with('-') { -v } else { v }));
    }
    if let Ok(v) = digits.parse::<i64>() {
        return Ok(TomlValue::Int(v));
    }
    let numeric_shape = unsigned.starts_with(|c: char| c.is_ascii_digit() || c == '.')
        || unsigned.starts_with("inf")
        || unsigned.starts_with("nan");
    if numeric_shape {
        if let Ok(v) = digits.parse::<f64>() {
            return Ok(TomlValue::Float(v));
        }
    }
    Err(err(
        line,
        format!("invalid value `{s}` (expected a string, integer, float, boolean or array)"),
    ))
}

/// Appends a `[name]` section with the given entries to `out`.
pub fn write_table<'a>(
    out: &mut String,
    name: &str,
    entries: impl IntoIterator<Item = (&'a str, TomlValue)>,
) {
    if !out.is_empty() {
        out.push('\n');
    }
    out.push('[');
    out.push_str(name);
    out.push_str("]\n");
    for (key, value) in entries {
        out.push_str(key);
        out.push_str(" = ");
        out.push_str(&value.render());
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_scalar_kinds() {
        let doc = TomlDoc::parse(
            r##"
# a scenario
[scenario]
name = "demo" # trailing comment
threads = 4
seed = 0x5EED
big = 1_000_000
ratio = 0.25
neg = -3
on = true

[campaign]
times_ms = [500, 1500, 2500]
words = ["a", "b,c", "d # not a comment"]
empty = []
"##,
        )
        .unwrap();
        let s = doc.table("scenario").unwrap();
        assert_eq!(s.get("name"), Some(&TomlValue::Str("demo".into())));
        assert_eq!(s.get("threads"), Some(&TomlValue::Int(4)));
        assert_eq!(s.get("seed"), Some(&TomlValue::Int(0x5EED)));
        assert_eq!(s.get("big"), Some(&TomlValue::Int(1_000_000)));
        assert_eq!(s.get("ratio"), Some(&TomlValue::Float(0.25)));
        assert_eq!(s.get("neg"), Some(&TomlValue::Int(-3)));
        assert_eq!(s.get("on"), Some(&TomlValue::Bool(true)));
        let c = doc.table("campaign").unwrap();
        assert_eq!(
            c.get("times_ms"),
            Some(&TomlValue::Array(vec![
                TomlValue::Int(500),
                TomlValue::Int(1500),
                TomlValue::Int(2500)
            ]))
        );
        assert_eq!(
            c.get("words"),
            Some(&TomlValue::Array(vec![
                TomlValue::Str("a".into()),
                TomlValue::Str("b,c".into()),
                TomlValue::Str("d # not a comment".into()),
            ]))
        );
        assert_eq!(c.get("empty"), Some(&TomlValue::Array(vec![])));
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in [
            "",
            "plain",
            "a\"b\\c",
            "line\nbreak\ttab\rcr",
            "\u{1}\u{7f}",
            "ünïcode ✓",
        ] {
            let rendered = render_string(s);
            let doc = TomlDoc::parse(&format!("[t]\nk = {rendered}\n")).unwrap();
            assert_eq!(
                doc.table("t").unwrap().get("k"),
                Some(&TomlValue::Str(s.to_string())),
                "roundtrip of {s:?} via {rendered}"
            );
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("[t]\nk = \"open\n", 2, "unterminated string"),
            ("[t]\nk =\n", 2, "missing value"),
            ("k = 1\n", 1, "before any [section]"),
            ("[t]\nk = 1\nk = 2\n", 3, "duplicate key `k`"),
            ("[t]\n[t]\n", 2, "duplicate section"),
            ("[t]\nk = [1, [2]]\n", 2, "nested arrays"),
            ("[t]\nk = zebra\n", 2, "invalid value `zebra`"),
            ("[t\nk = 1\n", 1, "closing `]`"),
            ("[t]\nbad key = 1\n", 2, "invalid key"),
            ("[t]\nk = 12monkeys\n", 2, "invalid value"),
            ("[t]\nk = \"x\" y\n", 2, "trailing junk"),
        ];
        for (text, line, needle) in cases {
            let e = TomlDoc::parse(text).unwrap_err();
            assert_eq!(e.line, *line, "line for {text:?}: {e}");
            assert!(e.message.contains(needle), "{e} should contain {needle:?}");
        }
    }

    #[test]
    fn write_table_output_parses_back() {
        let mut out = String::new();
        write_table(
            &mut out,
            "campaign",
            vec![
                ("seed", TomlValue::Int(0x5EED)),
                ("ratio", TomlValue::Float(1.0)),
                (
                    "times_ms",
                    TomlValue::Array(vec![TomlValue::Int(500), TomlValue::Int(1500)]),
                ),
                ("label", TomlValue::Str("a \"quoted\" name".into())),
            ],
        );
        let doc = TomlDoc::parse(&out).unwrap();
        let t = doc.table("campaign").unwrap();
        assert_eq!(t.get("seed"), Some(&TomlValue::Int(0x5EED)));
        assert_eq!(t.get("ratio"), Some(&TomlValue::Float(1.0)));
        assert_eq!(
            t.get("label"),
            Some(&TomlValue::Str("a \"quoted\" name".into()))
        );
    }

    #[test]
    fn float_rendering_always_reparses_as_float() {
        for f in [0.0, 1.0, -2.5, 1e-12, std::f64::consts::PI, 1e300] {
            let rendered = TomlValue::Float(f).render();
            match parse_scalar(&rendered, 1).unwrap() {
                TomlValue::Float(back) => assert_eq!(back.to_bits(), f.to_bits(), "{rendered}"),
                other => panic!("{rendered} parsed as {other:?}"),
            }
        }
    }
}
