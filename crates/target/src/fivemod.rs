//! The paper's five-module example (Fig. 2) as an *executable* registered
//! [`Target`] — the single definition behind `permea_analysis::fivemod`'s
//! topology and the equivalence-suite campaigns, which used to carry
//! drifting copies of the same wiring.
//!
//! Modules A–E run as real software modules so fault-injection campaigns
//! can be driven over them. Module B carries internal state across its
//! self-feedback loop, which makes this system a sharper differential
//! target than the arrestment one: any snapshot hook that forgets module
//! state shows up here immediately.
//!
//! Wiring:
//!
//! ```text
//! extA -> [A] -sA-> [B (self-loop fbB)] -sB-+-> [D] -sD-> [E] -OUT->
//! extC -> [C] ------sC-----------------> [D]         extE -> [E]
//!                                        sB ---------------> [E]
//! ```

use crate::target::Target;
use crate::workload::{Workload, WorkloadError};
use permea_core::topology::{SystemTopology, TopologyBuilder};
use permea_fi::campaign::SystemFactory;
use permea_runtime::module::{ModuleCtx, SoftwareModule};
use permea_runtime::scheduler::Schedule;
use permea_runtime::signals::{SignalBus, SignalRef};
use permea_runtime::sim::{Environment, Simulation, SimulationBuilder};
use permea_runtime::state::{StateReader, StateWriter};
use permea_runtime::time::SimTime;

/// A: `sA = rot1(extA)` (stateless).
struct ModA;
impl SoftwareModule for ModA {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        ctx.write(0, v.rotate_left(1));
    }
}

/// B: the self-feedback module. Its accumulator is genuine internal state —
/// exactly what `save_state`/`load_state` must carry across a snapshot.
struct ModB {
    acc: u16,
}
impl SoftwareModule for ModB {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let s_a = ctx.read(0);
        let fb_in = ctx.read(1);
        self.acc = self.acc.wrapping_add(s_a) ^ (fb_in >> 3);
        ctx.write(0, self.acc.rotate_right(2)); // fbB
        ctx.write(1, s_a.wrapping_add(self.acc)); // sB
    }
    fn reset(&mut self) {
        self.acc = 0;
    }
    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_u16(self.acc);
        w.finish()
    }
    fn load_state(&mut self, state: &[u8]) {
        let mut r = StateReader::new(state);
        self.acc = r.u16();
        r.finish();
    }
}

/// C: `sC = (extC / 3) * 2` (stateless).
struct ModC;
impl SoftwareModule for ModC {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        ctx.write(0, (v / 3).wrapping_mul(2));
    }
}

/// D: mixes sB and sC; writes on change only, exercising the out-cache part
/// of the snapshot.
struct ModD;
impl SoftwareModule for ModD {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let s_b = ctx.read(0);
        let s_c = ctx.read(1);
        ctx.write_on_change(0, s_b ^ s_c.wrapping_mul(5));
    }
}

/// E: the output stage (stateless).
struct ModE;
impl SoftwareModule for ModE {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let ext_e = ctx.read(0);
        let s_d = ctx.read(1);
        let s_b = ctx.read(2);
        ctx.write(0, s_d.wrapping_add(s_b ^ ext_e));
    }
}

/// Drives the three external inputs with case-dependent deterministic ramps.
struct FiveEnv {
    ext_a: SignalRef,
    ext_c: SignalRef,
    ext_e: SignalRef,
    base: u16,
    limit: u64,
}
impl Environment for FiveEnv {
    fn pre_tick(&mut self, now: SimTime, bus: &mut SignalBus) {
        let t = now.as_millis();
        bus.write(self.ext_a, self.base.wrapping_add((t % 809) as u16 * 7));
        bus.write(self.ext_c, (t % 331) as u16 * 3);
        bus.write(self.ext_e, self.base ^ (t % 97) as u16);
    }
    fn post_tick(&mut self, _: SimTime, _: &mut SignalBus) {}
    fn finished(&self, now: SimTime) -> bool {
        now.as_millis() >= self.limit
    }
}

/// An extra consumer module wired into [`build_with_taps`]: reads one of
/// the example's signals, writes a fresh output signal. Taps run every
/// tick, stepped after modules A and B but *before* C, D and E — so a tap
/// on `sC`, `sD` or `OUT` reads the signal before its producer rewrites
/// it, keeping port corruptions live for the tap. That is what the
/// equivalence suite relies on when it attaches deliberately brittle
/// consumers to `sC`.
pub struct Tap {
    /// Module name.
    pub name: &'static str,
    /// Name of the existing signal the tap consumes.
    pub input: &'static str,
    /// Name of the fresh output signal the tap produces.
    pub output: &'static str,
    /// The tap's implementation.
    pub module: Box<dyn SoftwareModule>,
}

/// Builds the simulation for workload case `case` with tracing enabled on
/// every signal. Case `k` shifts the input ramps (`base = 0x1234·(k+1)`)
/// and lengthens the scenario (`limit = 600 + 50·k` ms).
pub fn build(case: usize) -> Simulation {
    build_with_taps(case, Vec::new())
}

/// [`build`] plus extra [`Tap`] consumers (see there for scheduling).
///
/// # Panics
///
/// Panics if a tap names a signal the example does not define.
pub fn build_with_taps(case: usize, taps: Vec<Tap>) -> Simulation {
    let mut b = SimulationBuilder::new();
    let ext_a = b.define_signal("extA");
    let ext_c = b.define_signal("extC");
    let ext_e = b.define_signal("extE");
    let s_a = b.define_signal("sA");
    let fb_b = b.define_signal("fbB");
    let s_b = b.define_signal("sB");
    let s_c = b.define_signal("sC");
    let s_d = b.define_signal("sD");
    let out = b.define_signal("OUT");
    b.add_module("A", Box::new(ModA), Schedule::every_ms(), &[ext_a], &[s_a]);
    b.add_module(
        "B",
        Box::new(ModB { acc: 0 }),
        Schedule::every_ms(),
        &[s_a, fb_b],
        &[fb_b, s_b],
    );
    for tap in taps {
        let input = match tap.input {
            "extA" => ext_a,
            "extC" => ext_c,
            "extE" => ext_e,
            "sA" => s_a,
            "fbB" => fb_b,
            "sB" => s_b,
            "sC" => s_c,
            "sD" => s_d,
            "OUT" => out,
            other => panic!("tap {} reads unknown signal {other}", tap.name),
        };
        let tap_out = b.define_signal(tap.output);
        b.add_module(
            tap.name,
            tap.module,
            Schedule::every_ms(),
            &[input],
            &[tap_out],
        );
    }
    b.add_module("C", Box::new(ModC), Schedule::every_ms(), &[ext_c], &[s_c]);
    b.add_module(
        "D",
        Box::new(ModD),
        Schedule::in_slot(0, 2),
        &[s_b, s_c],
        &[s_d],
    );
    b.add_module(
        "E",
        Box::new(ModE),
        Schedule::every_ms(),
        &[ext_e, s_d, s_b],
        &[out],
    );
    let mut sim = b.build(Box::new(FiveEnv {
        ext_a,
        ext_c,
        ext_e,
        base: 0x1234u16.wrapping_mul(case as u16 + 1),
        limit: 600 + 50 * case as u64,
    }));
    sim.enable_tracing_all();
    sim
}

/// The example's static topology, port-for-port identical to the
/// simulations [`build`] constructs.
pub fn topology() -> SystemTopology {
    let mut b = TopologyBuilder::new("five-module-example");
    let ext_a = b.external("extA");
    let ext_c = b.external("extC");
    let ext_e = b.external("extE");

    let a = b.add_module("A");
    b.bind_input(a, ext_a);
    let s_a = b.add_output(a, "sA");

    let bm = b.add_module("B");
    let fb_b = b.add_output(bm, "fbB");
    let s_b = b.add_output(bm, "sB");
    b.bind_input(bm, s_a);
    b.bind_input(bm, fb_b);

    let c = b.add_module("C");
    b.bind_input(c, ext_c);
    let s_c = b.add_output(c, "sC");

    let d = b.add_module("D");
    b.bind_input(d, s_b);
    b.bind_input(d, s_c);
    let s_d = b.add_output(d, "sD");

    let e = b.add_module("E");
    b.bind_input(e, ext_e);
    b.bind_input(e, s_d);
    b.bind_input(e, s_b);
    let out = b.add_output(e, "OUT");
    b.mark_system_output(out);

    b.build().expect("example wiring is valid")
}

/// Builds one five-module simulation per workload case.
#[derive(Debug, Clone)]
pub struct FiveModuleFactory {
    cases: usize,
}

impl FiveModuleFactory {
    /// A factory spanning `cases` workload cases.
    ///
    /// # Panics
    ///
    /// Panics if `cases` is zero.
    pub fn new(cases: usize) -> Self {
        assert!(cases > 0, "factory needs at least one case");
        FiveModuleFactory { cases }
    }
}

impl SystemFactory for FiveModuleFactory {
    fn build(&self, case: usize) -> Simulation {
        build(case)
    }

    fn case_count(&self) -> usize {
        self.cases
    }

    fn max_run_ms(&self) -> u64 {
        10_000
    }
}

/// The five-module example as a [`Target`]: workload key `cases` sets the
/// number of ramp variants swept.
#[derive(Debug, Clone, Copy, Default)]
pub struct FiveModuleTarget;

impl Target for FiveModuleTarget {
    fn name(&self) -> &'static str {
        "five-module"
    }

    fn description(&self) -> &'static str {
        "the paper's five-module example (Fig. 2) with a stateful self-feedback loop in module B"
    }

    fn topology(&self) -> SystemTopology {
        topology()
    }

    fn default_workload(&self) -> Workload {
        Workload::new().with_int("cases", 2)
    }

    fn factory(&self, workload: &Workload) -> Result<Box<dyn SystemFactory>, WorkloadError> {
        let cases = workload.int_in("cases", 1, 64)? as usize;
        Ok(Box::new(FiveModuleFactory::new(cases)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_and_topology_agree_port_for_port() {
        let topo = topology();
        let sim = build(0);
        assert_eq!(sim.module_count(), topo.module_count());
        for m in topo.modules() {
            let name = topo.module_name(m);
            let idx = sim.module_by_name(name).expect("module exists in sim");
            let sim_inputs: Vec<&str> = sim
                .module_inputs(idx)
                .iter()
                .map(|&s| sim.bus().name(s))
                .collect();
            let topo_inputs: Vec<&str> = topo
                .inputs_of(m)
                .iter()
                .map(|&s| topo.signal_name(s))
                .collect();
            assert_eq!(sim_inputs, topo_inputs, "inputs of {name}");
        }
    }

    #[test]
    fn example_has_paper_shape() {
        let t = topology();
        assert_eq!(t.module_count(), 5);
        assert_eq!(t.system_inputs().len(), 3);
        assert_eq!(t.system_outputs().len(), 1);
    }

    #[test]
    fn target_builds_factories() {
        let t = FiveModuleTarget;
        let f = t.factory(&t.default_workload()).unwrap();
        assert_eq!(f.case_count(), 2);
        assert_eq!(f.build(1).module_count(), 5);
        let e = t
            .factory(&Workload::new().with_int("cases", 0))
            .err()
            .unwrap();
        assert!(e.reason.contains("out of range"), "{e}");
    }
}
