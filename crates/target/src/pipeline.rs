//! A multi-rate arithmetic pipeline with *deliberate masking* — the third
//! registered [`Target`], built to measure **failed error propagation**
//! (FEP): injected errors that corrupt a value yet never reach the system
//! output.
//!
//! The paper's arrestment controller propagates aggressively; real software
//! is full of constructs that absorb errors instead. This target stacks
//! four of them along one dataflow chain:
//!
//! ```text
//! extIn  -> [SCALE >>2] -scaled-> [SAT min] -sat-> [CLAMP lo..hi] -clamped->
//!                                            extGain ----^
//!           [QUANT & 0xFFF0, write-on-change] -quant-> [FOLD acc, odd ticks] -OUT->
//! ```
//!
//! - **value masking** — `SCALE` discards the two low bits (`>> 2`),
//!   `QUANT` the low nibble (`& 0xFFF0`), so small corruptions vanish
//!   arithmetically;
//! - **rail masking** — `SAT` saturates at `0x0A00` and `CLAMP` pins the
//!   value into a gain-dependent `[0x0120, 0x0280+g]` window; while the
//!   golden value sits on a rail, same-direction corruptions are absorbed;
//! - **dead stores** — `QUANT` writes on change only, so a corrupted input
//!   that quantises to the unchanged value stores nothing;
//! - **temporal masking** — `CLAMP` runs on even ticks and `FOLD` samples
//!   on odd ticks only, so corruptions injected in the wrong phase expire
//!   (their producer rewrites the signal) before anything downstream looks.
//!
//! `FOLD` keeps a decaying accumulator (genuine internal state, snapshot
//! hooks included), so every error that *does* get through diverges the
//! output permanently — the completed-run records split cleanly into
//! effective and masked, which is exactly what the FEP statistic needs.

use crate::target::Target;
use crate::workload::{Workload, WorkloadError};
use permea_core::topology::{SystemTopology, TopologyBuilder};
use permea_fi::campaign::SystemFactory;
use permea_runtime::module::{ModuleCtx, SoftwareModule};
use permea_runtime::scheduler::Schedule;
use permea_runtime::signals::{SignalBus, SignalRef};
use permea_runtime::sim::{Environment, Simulation, SimulationBuilder};
use permea_runtime::state::{StateReader, StateWriter};
use permea_runtime::time::SimTime;

/// SCALE: `scaled = extIn >> 2` — the two low bits never matter.
struct Scale;
impl SoftwareModule for Scale {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        ctx.write(0, v >> 2);
    }
}

/// SAT: `sat = min(scaled, 0x0A00)` — an upper rail.
struct Sat;
impl SoftwareModule for Sat {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        ctx.write(0, v.min(0x0A00));
    }
}

/// CLAMP: pins `sat` into `[0x0120, 0x0280 + (extGain & 0x7F)]`. Runs on
/// even ticks only.
struct Clamp;
impl SoftwareModule for Clamp {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        let g = ctx.read(1);
        let hi = 0x0280 + (g & 0x7F);
        ctx.write(0, v.clamp(0x0120, hi));
    }
}

/// QUANT: `quant = clamped & 0xFFF0`, stored only when it changes — the
/// dead-store absorber.
struct Quant;
impl SoftwareModule for Quant {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let v = ctx.read(0);
        ctx.write_on_change(0, v & 0xFFF0);
    }
}

/// FOLD: `acc = acc/2 + quant`, sampled on odd ticks only. The accumulator
/// is real internal state carried by the snapshot hooks.
struct Fold {
    acc: u16,
}
impl SoftwareModule for Fold {
    fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
        let q = ctx.read(0);
        self.acc = (self.acc >> 1).wrapping_add(q);
        ctx.write(0, self.acc);
    }
    fn reset(&mut self) {
        self.acc = 0;
    }
    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_u16(self.acc);
        w.finish()
    }
    fn load_state(&mut self, state: &[u8]) {
        let mut r = StateReader::new(state);
        self.acc = r.u16();
        r.finish();
    }
}

/// Drives `extIn` (a case-shifted ramp) and `extGain` (a slow sweep).
struct PipeEnv {
    ext_in: SignalRef,
    ext_gain: SignalRef,
    base: u16,
    limit: u64,
}
impl Environment for PipeEnv {
    fn pre_tick(&mut self, now: SimTime, bus: &mut SignalBus) {
        let t = now.as_millis();
        bus.write(self.ext_in, self.base.wrapping_add((t % 601) as u16 * 5));
        bus.write(self.ext_gain, (t % 127) as u16);
    }
    fn post_tick(&mut self, _: SimTime, _: &mut SignalBus) {}
    fn finished(&self, now: SimTime) -> bool {
        now.as_millis() >= self.limit
    }
}

/// Builds the simulation for workload case `case` with tracing enabled on
/// every signal. Case `k` shifts the input ramp (`base = 0x0400·(k+1)`)
/// and lengthens the scenario (`limit = 500 + 40·k` ms).
pub fn build(case: usize) -> Simulation {
    let mut b = SimulationBuilder::new();
    let ext_in = b.define_signal("extIn");
    let ext_gain = b.define_signal("extGain");
    let scaled = b.define_signal("scaled");
    let sat = b.define_signal("sat");
    let clamped = b.define_signal("clamped");
    let quant = b.define_signal("quant");
    let out = b.define_signal("OUT");
    b.add_module(
        "SCALE",
        Box::new(Scale),
        Schedule::every_ms(),
        &[ext_in],
        &[scaled],
    );
    b.add_module(
        "SAT",
        Box::new(Sat),
        Schedule::every_ms(),
        &[scaled],
        &[sat],
    );
    b.add_module(
        "CLAMP",
        Box::new(Clamp),
        Schedule::in_slot(0, 2),
        &[sat, ext_gain],
        &[clamped],
    );
    b.add_module(
        "QUANT",
        Box::new(Quant),
        Schedule::every_ms(),
        &[clamped],
        &[quant],
    );
    b.add_module(
        "FOLD",
        Box::new(Fold { acc: 0 }),
        Schedule::in_slot(1, 2),
        &[quant],
        &[out],
    );
    let mut sim = b.build(Box::new(PipeEnv {
        ext_in,
        ext_gain,
        base: 0x0400u16.wrapping_mul(case as u16 + 1),
        limit: 500 + 40 * case as u64,
    }));
    sim.enable_tracing_all();
    sim
}

/// The pipeline's static topology, port-for-port identical to the
/// simulations [`build`] constructs.
pub fn topology() -> SystemTopology {
    let mut b = TopologyBuilder::new("mask-pipeline");
    let ext_in = b.external("extIn");
    let ext_gain = b.external("extGain");

    let scale = b.add_module("SCALE");
    b.bind_input(scale, ext_in);
    let scaled = b.add_output(scale, "scaled");

    let sat_m = b.add_module("SAT");
    b.bind_input(sat_m, scaled);
    let sat = b.add_output(sat_m, "sat");

    let clamp = b.add_module("CLAMP");
    b.bind_input(clamp, sat);
    b.bind_input(clamp, ext_gain);
    let clamped = b.add_output(clamp, "clamped");

    let quant_m = b.add_module("QUANT");
    b.bind_input(quant_m, clamped);
    let quant = b.add_output(quant_m, "quant");

    let fold = b.add_module("FOLD");
    b.bind_input(fold, quant);
    let out = b.add_output(fold, "OUT");
    b.mark_system_output(out);

    b.build().expect("pipeline wiring is valid")
}

/// Builds one mask-pipeline simulation per workload case.
#[derive(Debug, Clone)]
pub struct MaskPipelineFactory {
    cases: usize,
}

impl MaskPipelineFactory {
    /// A factory spanning `cases` workload cases.
    ///
    /// # Panics
    ///
    /// Panics if `cases` is zero.
    pub fn new(cases: usize) -> Self {
        assert!(cases > 0, "factory needs at least one case");
        MaskPipelineFactory { cases }
    }
}

impl SystemFactory for MaskPipelineFactory {
    fn build(&self, case: usize) -> Simulation {
        build(case)
    }

    fn case_count(&self) -> usize {
        self.cases
    }

    fn max_run_ms(&self) -> u64 {
        10_000
    }
}

/// The masking pipeline as a [`Target`]: workload key `cases` sets the
/// number of ramp variants swept.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaskPipelineTarget;

impl Target for MaskPipelineTarget {
    fn name(&self) -> &'static str {
        "mask-pipeline"
    }

    fn description(&self) -> &'static str {
        "a multi-rate arithmetic pipeline whose shifts, rails, dead stores and phase-split schedules deliberately mask errors"
    }

    fn topology(&self) -> SystemTopology {
        topology()
    }

    fn default_workload(&self) -> Workload {
        Workload::new().with_int("cases", 3)
    }

    fn factory(&self, workload: &Workload) -> Result<Box<dyn SystemFactory>, WorkloadError> {
        let cases = workload.int_in("cases", 1, 64)? as usize;
        Ok(Box::new(MaskPipelineFactory::new(cases)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use permea_fi::campaign::{Campaign, CampaignConfig};
    use permea_fi::model::ErrorModel;
    use permea_fi::spec::{CampaignSpec, InjectionScope, PortTarget};

    #[test]
    fn simulation_and_topology_agree_port_for_port() {
        let topo = topology();
        let sim = build(0);
        assert_eq!(sim.module_count(), topo.module_count());
        for m in topo.modules() {
            let name = topo.module_name(m);
            let idx = sim.module_by_name(name).expect("module exists in sim");
            let sim_inputs: Vec<&str> = sim
                .module_inputs(idx)
                .iter()
                .map(|&s| sim.bus().name(s))
                .collect();
            let topo_inputs: Vec<&str> = topo
                .inputs_of(m)
                .iter()
                .map(|&s| topo.signal_name(s))
                .collect();
            assert_eq!(sim_inputs, topo_inputs, "inputs of {name}");
        }
    }

    #[test]
    fn pipeline_masks_some_errors_and_propagates_others() {
        // Low-bit flips into SCALE die in the `>> 2`; the campaign as a
        // whole must see both masked and effective completed runs, or the
        // target fails its purpose.
        let f = MaskPipelineFactory::new(2);
        let spec = CampaignSpec {
            targets: vec![
                PortTarget::new("SCALE", "extIn"),
                PortTarget::new("QUANT", "clamped"),
                PortTarget::new("FOLD", "quant"),
            ],
            models: vec![
                ErrorModel::BitFlip { bit: 0 },
                ErrorModel::BitFlip { bit: 1 },
                ErrorModel::BitFlip { bit: 9 },
                ErrorModel::BitFlip { bit: 13 },
            ],
            times_ms: vec![100, 101, 250, 251],
            cases: 2,
            scope: InjectionScope::Port,
            adaptive: None,
        };
        let res = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                master_seed: 0xACED,
                ..Default::default()
            },
        )
        .run(&spec)
        .unwrap();
        let mut masked = 0u64;
        let mut effective = 0u64;
        for r in &res.records {
            if !matches!(r.outcome, permea_fi::outcome::RunOutcome::Completed) {
                continue;
            }
            if r.corrupted_value == r.original_value {
                continue;
            }
            if r.first_divergence.iter().all(Option::is_none) {
                masked += 1;
            } else {
                effective += 1;
            }
        }
        assert!(masked > 0, "no run was masked: {:?}", res.outcomes);
        assert!(effective > 0, "no run propagated: {:?}", res.outcomes);
    }

    #[test]
    fn fast_forward_matches_replay() {
        // FOLD's accumulator state and QUANT's write-on-change cache ride
        // the snapshot: fork + early-exit must be exact here too.
        let f = MaskPipelineFactory::new(2);
        let spec = CampaignSpec {
            targets: vec![
                PortTarget::new("CLAMP", "sat"),
                PortTarget::new("FOLD", "quant"),
            ],
            models: vec![
                ErrorModel::BitFlip { bit: 3 },
                ErrorModel::Burst { start: 4, width: 3 },
                ErrorModel::Intermittent {
                    bit: 7,
                    period_ms: 5,
                    count: 3,
                },
            ],
            times_ms: vec![60, 61],
            cases: 2,
            scope: InjectionScope::Port,
            adaptive: None,
        };
        let config = |fast_forward| CampaignConfig {
            threads: 0,
            master_seed: 0xACED,
            fast_forward,
            ..Default::default()
        };
        let fast = Campaign::new(&f, config(true)).run(&spec).unwrap();
        let replay = Campaign::new(&f, config(false)).run(&spec).unwrap();
        assert_eq!(fast, replay);
    }
}
