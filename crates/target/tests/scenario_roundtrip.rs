//! Property-based round-trip tests: the scenario serializer's canonical
//! output must parse back to an identical spec, and the TOML subset
//! writer/reader must agree on arbitrary documents.

use permea_fi::model::ErrorModel;
use permea_fi::spec::{InjectionScope, PortTarget};
use permea_target::scenario::{ScenarioCampaign, ScenarioExpect, ScenarioSpec};
use permea_target::toml::{write_table, TomlDoc, TomlValue};
use permea_target::workload::{Workload, WorkloadValue};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::BTreeMap;

const IDENT_HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
const IDENT_TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";

/// Bare TOML key / section-safe identifier.
fn ident() -> impl Strategy<Value = String> {
    (any::<u64>(), prop::collection::vec(any::<u64>(), 0..8)).prop_map(|(head, tail)| {
        let mut s = String::new();
        s.push(IDENT_HEAD[(head % IDENT_HEAD.len() as u64) as usize] as char);
        for t in tail {
            s.push(IDENT_TAIL[(t % IDENT_TAIL.len() as u64) as usize] as char);
        }
        s
    })
}

/// Arbitrary text including quotes, backslashes, newlines and control
/// characters — the escaping stress case.
fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..12).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| char::from_u32(c % 0xD7FF).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

/// Any finite f64 (NaN never compares equal; infinities are replaced too
/// since the subset renderer only writes finite values).
fn finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            (bits % 1_000_000) as f64 / 997.0
        }
    })
}

fn scalar() -> impl Strategy<Value = TomlValue> {
    prop_oneof![
        text().prop_map(TomlValue::Str),
        any::<i64>().prop_map(TomlValue::Int),
        finite_f64().prop_map(TomlValue::Float),
        any::<bool>().prop_map(TomlValue::Bool),
    ]
}

fn toml_value() -> impl Strategy<Value = TomlValue> {
    prop_oneof![
        scalar(),
        scalar(),
        scalar(),
        prop::collection::vec(scalar(), 0..5).prop_map(TomlValue::Array),
    ]
}

/// `(key, value)` lists deduplicated into an insertion map — the subset
/// parser rejects duplicate keys, so uniqueness is part of validity.
fn table_entries() -> impl Strategy<Value = BTreeMap<String, TomlValue>> {
    prop::collection::vec((ident(), toml_value()), 0..5).prop_map(|kvs| kvs.into_iter().collect())
}

fn arbitrary_model() -> impl Strategy<Value = ErrorModel> {
    prop_oneof![
        (0u8..16).prop_map(|bit| ErrorModel::BitFlip { bit }),
        (0u8..16).prop_map(|bit| ErrorModel::StuckAtOne { bit }),
        (0u8..16).prop_map(|bit| ErrorModel::StuckAtZero { bit }),
        any::<i16>().prop_map(|delta| ErrorModel::Offset { delta }),
        Just(ErrorModel::RandomValue),
        Just(ErrorModel::Zero),
        Just(ErrorModel::Saturate),
        (0u8..16, any::<u8>()).prop_map(|(start, w)| ErrorModel::Burst {
            start,
            width: 1 + w % (16 - start),
        }),
        (1u16..=0xFFFF).prop_map(|mask| ErrorModel::MultiBit { mask }),
        (0u8..16, 1u16..5_000, 1u8..10).prop_map(|(bit, period_ms, count)| {
            ErrorModel::Intermittent {
                bit,
                period_ms,
                count,
            }
        }),
    ]
}

fn workload_value() -> impl Strategy<Value = WorkloadValue> {
    prop_oneof![
        any::<i64>().prop_map(WorkloadValue::Int),
        finite_f64().prop_map(WorkloadValue::Float),
        any::<bool>().prop_map(WorkloadValue::Bool),
        text().prop_map(WorkloadValue::Str),
    ]
}

fn arbitrary_workload() -> impl Strategy<Value = Workload> {
    prop::collection::vec((ident(), workload_value()), 0..4).prop_map(|kvs| {
        let mut w = Workload::new();
        for (k, v) in kvs {
            w.set(k, v);
        }
        w
    })
}

/// A thousandth-resolution FEP bound: exact in f64, so it must round-trip
/// bit-identically through the serializer.
fn fep() -> impl Strategy<Value = f64> {
    (0u32..=1_000).prop_map(|n| f64::from(n) / 1_000.0)
}

fn arbitrary_expect() -> impl Strategy<Value = Option<ScenarioExpect>> {
    let bounds = prop_oneof![
        Just((None, None)),
        fep().prop_map(|v| (Some(v), None)),
        fep().prop_map(|v| (None, Some(v))),
        (fep(), fep()).prop_map(|(a, b)| (Some(a.min(b)), Some(a.max(b)))),
    ];
    (
        prop_oneof![Just(None), (1u64..10_000).prop_map(Some)],
        bounds,
        prop_oneof![Just(None), (0u64..100).prop_map(Some)],
    )
        .prop_map(|(runs, (min_fep, max_fep), max_quarantined)| {
            let e = ScenarioExpect {
                runs,
                min_fep,
                max_fep,
                max_quarantined,
            };
            // An all-default [expect] section is omitted on write and
            // parses back as absent; represent it as None up front.
            if e == ScenarioExpect::default() {
                None
            } else {
                Some(e)
            }
        })
}

fn arbitrary_campaign() -> impl Strategy<Value = ScenarioCampaign> {
    (
        (any::<u64>(), 0usize..64),
        prop::collection::vec(0u64..100_000, 1..6),
        prop_oneof![Just(None), (1u64..100_000).prop_map(Some)],
        (any::<bool>(), any::<bool>(), any::<bool>()),
        prop::collection::vec((ident(), ident()), 0..4),
    )
        .prop_map(
            |(
                (seed, threads),
                times,
                horizon_ms,
                (signal_scope, fast_forward, keep_records),
                tgts,
            )| {
                // Deduplicate and sort: the parser accepts any order but
                // duplicate instants are a spec-level validation error.
                let mut times: Vec<u64> = times;
                times.sort_unstable();
                times.dedup();
                // Duplicate (module, signal) pairs likewise.
                let mut seen = std::collections::BTreeSet::new();
                let targets = tgts
                    .into_iter()
                    .filter(|t| seen.insert(t.clone()))
                    .map(|(m, s)| PortTarget::new(m, s))
                    .collect();
                ScenarioCampaign {
                    seed,
                    threads,
                    times_ms: times,
                    horizon_ms,
                    scope: if signal_scope {
                        InjectionScope::Signal
                    } else {
                        InjectionScope::Port
                    },
                    fast_forward,
                    keep_records,
                    targets,
                }
            },
        )
}

fn arbitrary_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (ident(), text(), ident()),
        arbitrary_workload(),
        arbitrary_campaign(),
        prop::collection::vec(arbitrary_model(), 1..8),
        arbitrary_expect(),
    )
        .prop_map(
            |((name, description, target), workload, campaign, models, expect)| ScenarioSpec {
                name,
                description,
                target,
                workload,
                campaign,
                models,
                expect,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn toml_write_parse_roundtrip(
        sections in prop::collection::vec((ident(), table_entries()), 1..4)
    ) {
        let sections: BTreeMap<String, BTreeMap<String, TomlValue>> =
            sections.into_iter().collect();
        let mut doctext = String::new();
        for (name, entries) in &sections {
            write_table(
                &mut doctext,
                name,
                entries.iter().map(|(k, v)| (k.as_str(), v.clone())),
            );
        }
        let doc = TomlDoc::parse(&doctext)
            .map_err(|e| TestCaseError::fail(format!("{e} in:\n{doctext}")))?;
        for (name, entries) in &sections {
            let table = doc.table(name).expect("section survived");
            prop_assert_eq!(table.keys().count(), entries.len());
            for (key, value) in entries {
                prop_assert_eq!(table.get(key), Some(value));
            }
        }
    }

    #[test]
    fn scenario_to_toml_parse_roundtrip(spec in arbitrary_spec()) {
        let scenario_text = spec.to_toml();
        let reparsed = ScenarioSpec::parse(&scenario_text, "fallback")
            .map_err(|e| TestCaseError::fail(format!("{e} in:\n{scenario_text}")))?;
        prop_assert_eq!(reparsed, spec);
    }

    #[test]
    fn scenario_to_toml_is_canonical(spec in arbitrary_spec()) {
        let scenario_text = spec.to_toml();
        let reparsed = ScenarioSpec::parse(&scenario_text, "fallback").unwrap();
        prop_assert_eq!(reparsed.to_toml(), scenario_text);
    }
}
