//! Shared SIGINT/SIGTERM latch for daemon and CLI binaries.
//!
//! The build environment is offline — no `libc`/`ctrlc`/`signal-hook`
//! crates — so this is a minimal `signal(2)` FFI shim. The handler does
//! exactly one async-signal-safe thing: an atomic store. Hosts poll
//! [`requested`] (or pass [`latch`] as a cancellation flag) and run their
//! graceful-drain path: finish the in-flight batch, flush journals and
//! telemetry, exit cleanly.
//!
//! This module is the one `unsafe` exception in an otherwise
//! `deny(unsafe_code)` crate; the scope is two `signal` calls.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn handler(_sig: i32) {
        // Only an atomic store: async-signal-safe.
        super::REQUESTED.store(true, std::sync::atomic::Ordering::Release);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent).
pub fn install() {
    imp::install();
}

/// `true` once a termination signal has been received.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Acquire)
}

/// The latch itself, for APIs that accept a cancellation flag.
pub fn latch() -> &'static AtomicBool {
    &REQUESTED
}
