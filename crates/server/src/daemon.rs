//! The campaign daemon: socket listener, executor slots, supervision.
//!
//! Structure:
//!
//! * One **listener thread** accepts Unix-socket connections (nonblocking
//!   accept + a 50 ms poll so shutdown is always observed promptly) and
//!   spawns a short-lived handler thread per connection.
//! * `slots` **executor threads** pull campaign slices from the fair-share
//!   [`crate::scheduler::Scheduler`] and run them through the configured
//!   [`crate::runner::CampaignRunner`]. A slice panic is caught, not
//!   fatal: the campaign retries (up to a fault budget), and a slot that
//!   keeps panicking *retires* instead of taking the daemon down — the
//!   survivors keep scheduling and the `status` verb reports
//!   `degraded: true`.
//! * The **write-ahead ledger** records every admission before the client
//!   is acknowledged and every terminal transition when it happens, so a
//!   SIGKILLed daemon restarts into exactly the committed state and
//!   resumes open campaigns from their per-campaign run journals.
//!
//! Shutdown comes in two proven-equivalent flavours:
//!
//! * **Graceful drain** (SIGTERM via the host binary, or the `Shutdown`
//!   verb): stop admitting, stop dispatching, let in-flight slices finish,
//!   flush ledger + metrics + telemetry, remove the socket, exit 0.
//!   Unfinished campaigns stay open in the ledger and resume on restart.
//! * **Hard kill** (SIGKILL): nothing runs, but the ledger's write-ahead
//!   invariant plus the run journals' torn-tail handling mean a restart
//!   reaches the same final state byte-for-byte — the chaos smoke proves
//!   it by hashing result artifacts.
//!
//! Lock ordering: the daemon state mutex is taken before the ledger
//! mutex, never the other way around.

use crate::error::ServerError;
use crate::ledger::{Ledger, LedgerRecord};
use crate::protocol::{
    read_message, write_message, CampaignState, CampaignStatus, RejectReason, Request, Response,
    ServerStatus, PROTOCOL_VERSION,
};
use crate::quota::QuotaConfig;
use crate::runner::{CampaignRunner, SliceOutcome, SliceRequest};
use crate::scheduler::Scheduler;
use permea_fi::chaos::ChaosInjector;
use permea_obs::{Event, Obs};
use std::collections::BTreeMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked loops (listener accept, slot idle, watch polling,
/// drain waits) re-check their exit conditions.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Consecutive slice panics before a campaign is declared failed.
const CAMPAIGN_FAULT_BUDGET: u32 = 3;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on. A stale file from a killed daemon
    /// is removed at startup.
    pub socket: PathBuf,
    /// State directory: holds `ledger.jsonl`, `metrics.json` and one
    /// `campaigns/<id>/` directory per campaign.
    pub state_dir: PathBuf,
    /// Executor slots (concurrent slices).
    pub slots: usize,
    /// Slice budget: new runs per dispatch. `None` disables slicing.
    pub slice_runs: Option<u64>,
    /// Admission-control and fair-share limits.
    pub quota: QuotaConfig,
    /// Slice panics one slot tolerates before retiring.
    pub slot_failure_budget: u32,
    /// Optional chaos injector (ledger-write and client-disconnect
    /// faults).
    pub chaos: Option<Arc<ChaosInjector>>,
}

impl ServerConfig {
    /// A config with production defaults rooted at `state_dir`, listening
    /// on `state_dir/permea.sock`.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServerConfig {
        let state_dir = state_dir.into();
        ServerConfig {
            socket: state_dir.join("permea.sock"),
            state_dir,
            slots: 2,
            slice_runs: Some(64),
            quota: QuotaConfig::default(),
            slot_failure_budget: 2,
            chaos: None,
        }
    }
}

struct CampaignMeta {
    tenant: String,
    payload: String,
    state: CampaignState,
    detail: String,
    cancel: Arc<AtomicBool>,
    faults: u32,
}

struct DaemonState {
    scheduler: Scheduler,
    campaigns: BTreeMap<u64, CampaignMeta>,
    next_id: u64,
    /// Slices currently executing on a slot.
    dispatched: usize,
}

struct Shared {
    config: ServerConfig,
    runner: Arc<dyn CampaignRunner>,
    obs: Obs,
    state: Mutex<DaemonState>,
    cv: Condvar,
    ledger: Mutex<Ledger>,
    /// Set by drain: no new admissions, no new dispatches.
    draining: AtomicBool,
    /// Set after the drain completes: every thread exits.
    shutdown: AtomicBool,
    slots_healthy: AtomicUsize,
}

impl Shared {
    fn emit_service(&self, tenant: &str, campaign: u64, kind: &str, detail: &str) {
        self.obs.emit(&Event::Service {
            tenant,
            campaign,
            kind,
            detail,
        });
    }

    fn campaign_dir(&self, id: u64) -> PathBuf {
        self.config.state_dir.join("campaigns").join(id.to_string())
    }

    /// Records a terminal transition: ledger first, then counters and the
    /// service event. Caller holds the state lock and has already updated
    /// the campaign meta.
    fn record_closed(&self, id: u64, tenant: &str, state: CampaignState, detail: &str) {
        let closed = LedgerRecord::Closed {
            id,
            state,
            detail: detail.to_string(),
        };
        if let Err(e) = self.ledger.lock().expect("ledger lock").append(&closed) {
            // The transition stays in memory; a restart will re-run the
            // campaign's tail, which the run journal makes idempotent.
            self.obs
                .error(format!("recording campaign {id} close: {e}"));
        }
        let kind = state.label();
        self.obs
            .counter(match state {
                CampaignState::Completed => "server.campaigns_completed",
                CampaignState::Failed => "server.campaigns_failed",
                _ => "server.campaigns_cancelled",
            })
            .inc();
        self.emit_service(tenant, id, kind, detail);
    }

    fn begin_drain(&self, why: &str) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            self.obs.info(format!("draining: {why}"));
            self.emit_service("", 0, "draining", why);
        }
        self.cv.notify_all();
    }
}

/// A running daemon. Dropping it without [`Daemon::run`] leaks threads;
/// hosts are expected to call `run` (or `finish` from tests).
pub struct Daemon {
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    slots: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Opens (or recovers) the state directory, replays the submission
    /// ledger, binds the socket and spawns the listener and executor
    /// threads. Campaigns the previous daemon left open are re-queued and
    /// resume from their run journals.
    ///
    /// # Errors
    ///
    /// [`ServerError`] when the state directory, ledger or socket cannot
    /// be set up.
    pub fn start(
        config: ServerConfig,
        runner: Arc<dyn CampaignRunner>,
        obs: Obs,
    ) -> Result<Daemon, ServerError> {
        std::fs::create_dir_all(config.state_dir.join("campaigns"))
            .map_err(|e| ServerError::io("creating state directory", e))?;

        let (mut ledger, replayed, next_id) = Ledger::open(&config.state_dir.join("ledger.jsonl"))?;
        if let Some(chaos) = &config.chaos {
            ledger.set_chaos(Arc::clone(chaos));
        }

        let mut state = DaemonState {
            scheduler: Scheduler::new(),
            campaigns: BTreeMap::new(),
            next_id,
            dispatched: 0,
        };
        let recovered = obs.counter("server.campaigns_recovered");
        for c in replayed {
            let terminal = c.closed.is_some();
            let (cstate, detail) = c.closed.unwrap_or((CampaignState::Queued, String::new()));
            if !terminal {
                state.scheduler.enqueue(&c.tenant, c.id);
                recovered.inc();
                obs.emit(&Event::Service {
                    tenant: &c.tenant,
                    campaign: c.id,
                    kind: "recovered",
                    detail: "re-queued from ledger replay",
                });
            }
            state.campaigns.insert(
                c.id,
                CampaignMeta {
                    tenant: c.tenant,
                    payload: c.payload,
                    state: cstate,
                    detail,
                    cancel: Arc::new(AtomicBool::new(false)),
                    faults: 0,
                },
            );
        }

        // A stale socket file from a SIGKILLed daemon blocks bind.
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)
                .map_err(|e| ServerError::io("removing stale socket", e))?;
        }
        let listener =
            UnixListener::bind(&config.socket).map_err(|e| ServerError::io("binding socket", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServerError::io("setting socket nonblocking", e))?;

        let slots = config.slots.max(1);
        let shared = Arc::new(Shared {
            config,
            runner,
            obs,
            state: Mutex::new(state),
            cv: Condvar::new(),
            ledger: Mutex::new(ledger),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            slots_healthy: AtomicUsize::new(slots),
        });

        let mut slot_handles = Vec::with_capacity(slots);
        for slot_index in 0..slots {
            let shared = Arc::clone(&shared);
            slot_handles.push(
                std::thread::Builder::new()
                    .name(format!("permea-slot-{slot_index}"))
                    .spawn(move || slot_loop(&shared))
                    .map_err(|e| ServerError::io("spawning slot thread", e))?,
            );
        }
        let listener_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("permea-listener".into())
                .spawn(move || listener_loop(&listener, &shared))
                .map_err(|e| ServerError::io("spawning listener thread", e))?
        };

        shared.obs.info(format!(
            "daemon listening on {} with {slots} slots",
            shared.config.socket.display()
        ));
        Ok(Daemon {
            shared,
            listener: Some(listener_handle),
            slots: slot_handles,
        })
    }

    /// The socket this daemon listens on.
    pub fn socket(&self) -> &std::path::Path {
        &self.shared.config.socket
    }

    /// Starts a graceful drain (idempotent): stop admitting, stop
    /// dispatching, let in-flight slices finish.
    pub fn request_drain(&self) {
        self.shared.begin_drain("drain requested");
    }

    /// Serves until `stop` is set (the host's signal latch) or a client
    /// sends the `Shutdown` verb, then drains gracefully: in-flight
    /// slices finish, the ledger and telemetry flush, metrics snapshot to
    /// `state_dir/metrics.json`, the socket file is removed.
    ///
    /// # Errors
    ///
    /// [`ServerError`] when the final flushes fail.
    pub fn run(self, stop: &AtomicBool) -> Result<(), ServerError> {
        while !self.shared.draining.load(Ordering::Acquire) {
            if stop.load(Ordering::Acquire) {
                self.shared.begin_drain("signal");
                break;
            }
            std::thread::sleep(POLL_INTERVAL);
        }
        self.finish()
    }

    /// Completes a drain already requested: waits for in-flight slices,
    /// stops every thread, flushes ledger + metrics + telemetry and
    /// removes the socket.
    ///
    /// # Errors
    ///
    /// [`ServerError`] when the final flushes fail.
    pub fn finish(mut self) -> Result<(), ServerError> {
        self.shared.begin_drain("finish");
        {
            let mut st = self.shared.state.lock().expect("state lock");
            while st.dispatched > 0 {
                let (next, _) = self
                    .shared
                    .cv
                    .wait_timeout(st, POLL_INTERVAL)
                    .expect("state lock");
                st = next;
            }
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for handle in self.slots.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.shared.config.socket);

        self.shared.ledger.lock().expect("ledger lock").sync()?;
        if let Some(snapshot) = self.shared.obs.snapshot() {
            let path = self.shared.config.state_dir.join("metrics.json");
            std::fs::write(&path, snapshot.to_json_pretty())
                .map_err(|e| ServerError::io("writing metrics snapshot", e))?;
        }
        self.shared.obs.info("drain complete");
        self.shared.obs.flush();
        Ok(())
    }
}

/// One dispatch pulled from the scheduler.
struct Job {
    id: u64,
    tenant: String,
    payload: String,
    cancel: Arc<AtomicBool>,
}

/// Claims the next eligible slice under the state lock, transitioning the
/// campaign to `Running`. Cancelled-but-still-queued campaigns are closed
/// here rather than dispatched. Returns `None` when the daemon is
/// shutting down.
fn claim_job(shared: &Shared) -> Option<Job> {
    let mut guard = shared.state.lock().expect("state lock");
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        if !shared.draining.load(Ordering::Acquire) {
            // Reborrow the guard once so disjoint-field borrows
            // (scheduler vs campaigns) are visible to the checker.
            let st = &mut *guard;
            while let Some((tenant, id)) = st.scheduler.next(&shared.config.quota) {
                let Some(meta) = st.campaigns.get_mut(&id) else {
                    st.scheduler.release(&tenant);
                    continue;
                };
                if meta.cancel.load(Ordering::Acquire) {
                    meta.state = CampaignState::Cancelled;
                    meta.detail = "cancelled while queued".into();
                    st.scheduler.release(&tenant);
                    shared.record_closed(id, &tenant, CampaignState::Cancelled, "while queued");
                    continue;
                }
                meta.state = CampaignState::Running;
                let job = Job {
                    id,
                    tenant,
                    payload: meta.payload.clone(),
                    cancel: Arc::clone(&meta.cancel),
                };
                st.dispatched += 1;
                return Some(job);
            }
        }
        let (next, _) = shared
            .cv
            .wait_timeout(guard, POLL_INTERVAL)
            .expect("state lock");
        guard = next;
    }
}

/// Executor slot: claim, run, settle — until shutdown or this slot's
/// panic budget retires it.
fn slot_loop(shared: &Shared) {
    let slices = shared.obs.counter("server.slices_dispatched");
    let panics = shared.obs.counter("server.slice_panics");
    let mut failure_budget = shared.config.slot_failure_budget;
    while let Some(job) = claim_job(shared) {
        let dir = shared.campaign_dir(job.id);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            settle(
                shared,
                &job,
                SliceOutcome::Failed {
                    message: format!("creating campaign directory: {e}"),
                },
            );
            continue;
        }
        slices.inc();
        let request = SliceRequest {
            id: job.id,
            tenant: &job.tenant,
            payload: &job.payload,
            dir: &dir,
            slice_runs: shared.config.slice_runs,
            cancel: &job.cancel,
            obs: &shared.obs,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.runner.run_slice(&request)
        }));
        match outcome {
            Ok(outcome) => settle(shared, &job, outcome),
            Err(_) => {
                panics.inc();
                settle_panic(shared, &job);
                failure_budget = failure_budget.saturating_sub(1);
                if failure_budget == 0 {
                    let left = shared.slots_healthy.fetch_sub(1, Ordering::AcqRel) - 1;
                    shared.obs.warn(format!(
                        "executor slot retired after repeated slice panics ({left} healthy)"
                    ));
                    shared.emit_service("", 0, "degraded", "executor slot retired");
                    shared.obs.counter("server.slots_retired").inc();
                    return;
                }
            }
        }
    }
}

/// Applies a slice outcome under the state lock.
fn settle(shared: &Shared, job: &Job, outcome: SliceOutcome) {
    let mut guard = shared.state.lock().expect("state lock");
    let st = &mut *guard;
    st.dispatched -= 1;
    let draining = shared.draining.load(Ordering::Acquire);
    if let Some(meta) = st.campaigns.get_mut(&job.id) {
        match outcome {
            SliceOutcome::Finished => {
                meta.state = CampaignState::Completed;
                meta.faults = 0;
                st.scheduler.release(&job.tenant);
                shared.record_closed(job.id, &job.tenant, CampaignState::Completed, "");
            }
            SliceOutcome::Yielded => {
                // More work left. While draining the campaign stays open
                // in the ledger (no Closed record) and resumes on the
                // next daemon start; otherwise it re-queues behind its
                // tenant's waiting siblings.
                meta.faults = 0;
                if draining {
                    st.scheduler.release(&job.tenant);
                    meta.state = CampaignState::Queued;
                    meta.detail = "parked by drain".into();
                } else {
                    st.scheduler.yield_back(&job.tenant, job.id);
                    shared.emit_service(&job.tenant, job.id, "sliced", "budget exhausted");
                }
            }
            SliceOutcome::Cancelled => {
                meta.state = CampaignState::Cancelled;
                meta.detail = "cancelled mid-run".into();
                st.scheduler.release(&job.tenant);
                shared.record_closed(job.id, &job.tenant, CampaignState::Cancelled, "mid-run");
            }
            SliceOutcome::Failed { message } => {
                meta.state = CampaignState::Failed;
                meta.detail = message.clone();
                st.scheduler.release(&job.tenant);
                shared.record_closed(job.id, &job.tenant, CampaignState::Failed, &message);
            }
        }
    } else {
        st.scheduler.release(&job.tenant);
    }
    shared.cv.notify_all();
}

/// Applies a slice *panic*: the campaign retries until its fault budget
/// is spent, then fails.
fn settle_panic(shared: &Shared, job: &Job) {
    let mut guard = shared.state.lock().expect("state lock");
    let st = &mut *guard;
    st.dispatched -= 1;
    if let Some(meta) = st.campaigns.get_mut(&job.id) {
        meta.faults += 1;
        if meta.faults >= CAMPAIGN_FAULT_BUDGET {
            meta.state = CampaignState::Failed;
            meta.detail = format!("slice panicked {} times", meta.faults);
            st.scheduler.release(&job.tenant);
            shared.record_closed(
                job.id,
                &job.tenant,
                CampaignState::Failed,
                "slice panic budget exhausted",
            );
        } else {
            st.scheduler.yield_back(&job.tenant, job.id);
            shared.emit_service(&job.tenant, job.id, "failed", "slice panicked; will retry");
        }
    } else {
        st.scheduler.release(&job.tenant);
    }
    shared.cv.notify_all();
}

/// Accept loop: nonblocking accept polled every [`POLL_INTERVAL`] so a
/// drain is observed promptly; one short-lived thread per connection.
fn listener_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    let accepted = shared.obs.counter("server.connections_accepted");
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                if shared
                    .config
                    .chaos
                    .as_ref()
                    .is_some_and(|c| c.on_client_accept())
                {
                    // Chaos plan: drop the connection before reading the
                    // request — clients must survive this.
                    drop(stream);
                    continue;
                }
                accepted.inc();
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("permea-conn".into())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) => {
                shared.obs.error(format!("accept failed: {e}"));
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// Serves exactly one request on one connection. Errors talking to a
/// vanished client are swallowed — the daemon must outlive its clients.
fn handle_connection(mut stream: UnixStream, shared: &Shared) {
    let request = match read_message::<_, Request>(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(_) => {
            let _ = write_message(
                &mut stream,
                &Response::Error {
                    message: "malformed request".into(),
                },
            );
            return;
        }
    };
    let version = match &request {
        Request::Submit { version, .. }
        | Request::Status { version }
        | Request::Watch { version, .. }
        | Request::Cancel { version, .. }
        | Request::Shutdown { version } => *version,
    };
    if version != PROTOCOL_VERSION {
        let _ = write_message(
            &mut stream,
            &Response::Rejected {
                reason: RejectReason::VersionMismatch {
                    server: PROTOCOL_VERSION,
                    client: version,
                },
            },
        );
        return;
    }
    let response = match request {
        Request::Submit {
            tenant, payload, ..
        } => handle_submit(shared, &tenant, payload),
        Request::Status { .. } => Response::Status(build_status(shared)),
        Request::Watch { id, .. } => {
            handle_watch(&mut stream, shared, id);
            return;
        }
        Request::Cancel { id, .. } => handle_cancel(shared, id),
        Request::Shutdown { .. } => {
            shared.begin_drain("shutdown verb");
            Response::ShuttingDown
        }
    };
    let _ = write_message(&mut stream, &response);
}

fn handle_submit(shared: &Shared, tenant: &str, payload: String) -> Response {
    let rejected = shared.obs.counter("server.submissions_rejected");
    if shared.draining.load(Ordering::Acquire) {
        rejected.inc();
        return Response::Rejected {
            reason: RejectReason::Draining,
        };
    }
    if let Err(message) = shared.runner.validate(&payload) {
        rejected.inc();
        return Response::Rejected {
            reason: RejectReason::InvalidPayload { message },
        };
    }
    let mut st = shared.state.lock().expect("state lock");
    if let Err(reason) = shared.config.quota.admit(
        st.scheduler.total_queued(),
        st.scheduler.tenant_queued(tenant),
    ) {
        rejected.inc();
        shared.emit_service(tenant, 0, "rejected", &reason.to_string());
        return Response::Rejected { reason };
    }
    let id = st.next_id;
    // Write-ahead: the admission is durable before the client hears
    // `Submitted` and before the campaign becomes schedulable.
    let record = LedgerRecord::Submitted {
        id,
        tenant: tenant.to_string(),
        payload: payload.clone(),
    };
    if let Err(e) = shared.ledger.lock().expect("ledger lock").append(&record) {
        shared.obs.error(format!("ledger append failed: {e}"));
        return Response::Error {
            message: format!("submission not recorded: {e}"),
        };
    }
    st.next_id += 1;
    st.scheduler.enqueue(tenant, id);
    st.campaigns.insert(
        id,
        CampaignMeta {
            tenant: tenant.to_string(),
            payload,
            state: CampaignState::Queued,
            detail: String::new(),
            cancel: Arc::new(AtomicBool::new(false)),
            faults: 0,
        },
    );
    drop(st);
    shared.obs.counter("server.submissions_accepted").inc();
    shared.emit_service(tenant, id, "submitted", "");
    shared.cv.notify_all();
    Response::Submitted { id }
}

fn handle_cancel(shared: &Shared, id: u64) -> Response {
    let mut guard = shared.state.lock().expect("state lock");
    let st = &mut *guard;
    let (tenant, was_queued) = match st.campaigns.get_mut(&id) {
        None => return Response::NotFound { id },
        Some(meta) => {
            if meta.state.is_terminal() {
                // Idempotent: cancelling a finished campaign acknowledges
                // without rewriting history.
                return Response::Cancelled { id };
            }
            meta.cancel.store(true, Ordering::Release);
            (meta.tenant.clone(), meta.state == CampaignState::Queued)
        }
    };
    if was_queued && st.scheduler.remove(&tenant, id) {
        let meta = st.campaigns.get_mut(&id).expect("campaign exists");
        meta.state = CampaignState::Cancelled;
        meta.detail = "cancelled while queued".into();
        shared.record_closed(id, &tenant, CampaignState::Cancelled, "while queued");
    }
    // A running campaign settles through its slice outcome; the flag is
    // observed by the runner.
    shared.cv.notify_all();
    Response::Cancelled { id }
}

fn build_status(shared: &Shared) -> ServerStatus {
    let st = shared.state.lock().expect("state lock");
    let mut status = ServerStatus {
        accepting: !shared.draining.load(Ordering::Acquire),
        draining: shared.draining.load(Ordering::Acquire),
        slots_total: shared.config.slots.max(1),
        slots_healthy: shared.slots_healthy.load(Ordering::Acquire),
        degraded: false,
        queued: 0,
        running: 0,
        completed: 0,
        failed: 0,
        cancelled: 0,
        campaigns: Vec::with_capacity(st.campaigns.len()),
    };
    status.degraded = status.slots_healthy < status.slots_total;
    for (&id, meta) in &st.campaigns {
        match meta.state {
            CampaignState::Queued => status.queued += 1,
            CampaignState::Running => status.running += 1,
            CampaignState::Completed => status.completed += 1,
            CampaignState::Failed => status.failed += 1,
            CampaignState::Cancelled => status.cancelled += 1,
        }
        status.campaigns.push(CampaignStatus {
            id,
            tenant: meta.tenant.clone(),
            state: meta.state,
            detail: meta.detail.clone(),
        });
    }
    status
}

/// Watch stream: polls the campaign's state and pushes an update on every
/// change, ending after the first terminal update (or when the client or
/// daemon goes away).
fn handle_watch(stream: &mut UnixStream, shared: &Shared, id: u64) {
    let mut last: Option<(CampaignState, String)> = None;
    loop {
        let current = {
            let st = shared.state.lock().expect("state lock");
            st.campaigns
                .get(&id)
                .map(|meta| (meta.state, meta.detail.clone()))
        };
        let Some((state, detail)) = current else {
            let _ = write_message(stream, &Response::NotFound { id });
            return;
        };
        if last.as_ref() != Some(&(state, detail.clone())) {
            let update = Response::Update {
                id,
                state,
                detail: detail.clone(),
            };
            if write_message(stream, &update).is_err() {
                return; // client vanished
            }
            if state.is_terminal() {
                return;
            }
            last = Some((state, detail));
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}
