//! Typed daemon errors.

use std::fmt;

/// Everything that can go wrong inside the daemon or its client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Socket / stream I/O failure, with context.
    Io {
        /// What was being attempted.
        message: String,
    },
    /// The submission ledger could not be read or written.
    Ledger {
        /// What was being attempted.
        message: String,
    },
    /// The ledger append hit `ENOSPC` and exhausted its bounded retries.
    LedgerDiskFull {
        /// Retries spent before giving up.
        retries: u32,
    },
    /// A peer spoke something that is not the protocol (bad frame payload,
    /// unexpected response type).
    Protocol {
        /// What was malformed.
        message: String,
    },
    /// The daemon closed the connection before answering — it is draining,
    /// crashed, or a chaos plan dropped the connection.
    Disconnected,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io { message } => write!(f, "i/o error: {message}"),
            ServerError::Ledger { message } => write!(f, "submission ledger: {message}"),
            ServerError::LedgerDiskFull { retries } => write!(
                f,
                "submission ledger append failed with ENOSPC after {retries} retries"
            ),
            ServerError::Protocol { message } => write!(f, "protocol error: {message}"),
            ServerError::Disconnected => {
                write!(f, "connection closed before the daemon answered")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl ServerError {
    /// Wraps an [`std::io::Error`] with context into [`ServerError::Io`].
    pub fn io(context: &str, e: std::io::Error) -> ServerError {
        ServerError::Io {
            message: format!("{context}: {e}"),
        }
    }
}
