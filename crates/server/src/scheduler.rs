//! Fair-share slice scheduling across tenants.
//!
//! Campaigns do not hold an executor slot until they finish: they execute
//! in *budgeted slices* (a bounded number of new runs per dispatch, see
//! [`permea_fi::campaign::Campaign::run_resumable_budgeted`]) and come
//! back to the scheduler between slices. The scheduler hands out the next
//! slice by round-robining over tenants — each tenant keeps a FIFO of its
//! queued campaigns, and a rotation cursor walks tenants so a tenant with
//! fifty queued campaigns gets the same slice cadence as a tenant with
//! one. Tenants at their `tenant_max_running` ceiling are skipped, not
//! starved: they rejoin the rotation as soon as a slot frees.
//!
//! The scheduler is deliberately pure state + methods (no threads, no
//! locks) so fairness properties are unit-testable; the daemon owns the
//! mutex around it.

use crate::quota::QuotaConfig;
use std::collections::{HashMap, VecDeque};

/// Pure fair-share scheduler state.
#[derive(Debug, Default)]
pub struct Scheduler {
    /// Per-tenant FIFO of queued campaign ids.
    queues: HashMap<String, VecDeque<u64>>,
    /// Round-robin rotation over tenant names with non-empty queues.
    rotation: VecDeque<String>,
    /// Executor slots currently held, per tenant.
    running: HashMap<String, usize>,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Queues a campaign for its tenant (at the back of the tenant FIFO).
    pub fn enqueue(&mut self, tenant: &str, id: u64) {
        let queue = self.queues.entry(tenant.to_string()).or_default();
        queue.push_back(id);
        if queue.len() == 1 {
            self.rotation.push_back(tenant.to_string());
        }
    }

    /// Campaigns queued for one tenant.
    pub fn tenant_queued(&self, tenant: &str) -> usize {
        self.queues.get(tenant).map_or(0, VecDeque::len)
    }

    /// Campaigns queued across all tenants.
    pub fn total_queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Slots currently held by one tenant.
    pub fn tenant_running(&self, tenant: &str) -> usize {
        self.running.get(tenant).copied().unwrap_or(0)
    }

    /// Picks the next campaign to dispatch a slice for, honouring the
    /// per-tenant running ceiling, and marks its tenant as holding one
    /// more slot. Returns `None` when nothing is eligible (all queues
    /// empty or every queued tenant at its ceiling).
    pub fn next(&mut self, quota: &QuotaConfig) -> Option<(String, u64)> {
        // One full lap over the rotation; skipped tenants go to the back
        // so the lap terminates and fairness is preserved across calls.
        for _ in 0..self.rotation.len() {
            let tenant = self.rotation.pop_front()?;
            if self.tenant_running(&tenant) >= quota.tenant_max_running {
                self.rotation.push_back(tenant);
                continue;
            }
            let queue = self.queues.get_mut(&tenant)?;
            let id = queue.pop_front()?;
            if queue.is_empty() {
                self.queues.remove(&tenant);
            } else {
                self.rotation.push_back(tenant.clone());
            }
            *self.running.entry(tenant.clone()).or_insert(0) += 1;
            return Some((tenant, id));
        }
        None
    }

    /// Returns a dispatched campaign that yielded (budget exhausted, more
    /// work left): the slot frees and the campaign re-queues at the BACK
    /// of its tenant's FIFO, behind siblings that have waited.
    pub fn yield_back(&mut self, tenant: &str, id: u64) {
        self.release(tenant);
        self.enqueue(tenant, id);
    }

    /// Frees the slot a dispatched campaign held (it finished, failed or
    /// was cancelled).
    pub fn release(&mut self, tenant: &str) {
        if let Some(n) = self.running.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.running.remove(tenant);
            }
        }
    }

    /// Removes a queued campaign (cancellation). Returns `true` if it was
    /// found in a queue.
    pub fn remove(&mut self, tenant: &str, id: u64) -> bool {
        let Some(queue) = self.queues.get_mut(tenant) else {
            return false;
        };
        let before = queue.len();
        queue.retain(|&q| q != id);
        let removed = queue.len() < before;
        if queue.is_empty() {
            self.queues.remove(tenant);
            self.rotation.retain(|t| t != tenant);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(running: usize) -> QuotaConfig {
        QuotaConfig {
            max_queue_depth: 64,
            tenant_max_queued: 64,
            tenant_max_running: running,
        }
    }

    #[test]
    fn round_robin_alternates_tenants_regardless_of_queue_depth() {
        let mut s = Scheduler::new();
        // alice floods the queue; bob submits one campaign.
        for id in 1..=5 {
            s.enqueue("alice", id);
        }
        s.enqueue("bob", 100);
        let q = quota(8);
        let first = s.next(&q).unwrap();
        let second = s.next(&q).unwrap();
        assert_eq!(first.0, "alice");
        assert_eq!(second, ("bob".to_string(), 100));
        // bob's queue is now empty; the rest drain from alice in FIFO order.
        let rest: Vec<u64> = std::iter::from_fn(|| s.next(&q))
            .map(|(_, id)| id)
            .collect();
        assert_eq!(rest, vec![2, 3, 4, 5]);
    }

    #[test]
    fn tenant_at_running_ceiling_is_skipped_not_starved() {
        let mut s = Scheduler::new();
        s.enqueue("alice", 1);
        s.enqueue("alice", 2);
        s.enqueue("bob", 3);
        let q = quota(1);
        assert_eq!(s.next(&q), Some(("alice".into(), 1)));
        // alice holds her one slot; only bob is eligible.
        assert_eq!(s.next(&q), Some(("bob".into(), 3)));
        assert_eq!(s.next(&q), None, "both tenants at ceiling");
        // alice's slot frees: her next campaign dispatches.
        s.release("alice");
        assert_eq!(s.next(&q), Some(("alice".into(), 2)));
    }

    #[test]
    fn yielded_campaign_requeues_behind_waiting_siblings() {
        let mut s = Scheduler::new();
        s.enqueue("alice", 1);
        s.enqueue("alice", 2);
        let q = quota(1);
        let (t, id) = s.next(&q).unwrap();
        assert_eq!(id, 1);
        s.yield_back(&t, id);
        // Campaign 2 has been waiting; it goes first.
        assert_eq!(s.next(&q), Some(("alice".into(), 2)));
    }

    #[test]
    fn remove_cancels_only_the_named_campaign() {
        let mut s = Scheduler::new();
        s.enqueue("alice", 1);
        s.enqueue("alice", 2);
        assert!(s.remove("alice", 1));
        assert!(!s.remove("alice", 99));
        assert!(!s.remove("ghost", 1));
        assert_eq!(s.total_queued(), 1);
        assert_eq!(s.next(&quota(1)), Some(("alice".into(), 2)));
        // Removing the last queued campaign drops the tenant from rotation.
        s.enqueue("bob", 3);
        assert!(s.remove("bob", 3));
        assert_eq!(s.next(&quota(8)), None);
    }

    #[test]
    fn interleaving_stays_fair_over_many_slices() {
        // Two tenants, one big and one small campaign each modelled as
        // repeated yields: counts of consecutive dispatches for the same
        // tenant must never exceed 1 while both have work.
        let mut s = Scheduler::new();
        s.enqueue("alice", 1);
        s.enqueue("bob", 2);
        let q = quota(1);
        let mut last: Option<String> = None;
        for _ in 0..20 {
            let (t, id) = s.next(&q).unwrap();
            if let Some(prev) = &last {
                assert_ne!(prev, &t, "same tenant dispatched twice in a row");
            }
            last = Some(t.clone());
            s.yield_back(&t, id);
        }
    }
}
