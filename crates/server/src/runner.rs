//! The campaign-execution plug-in point.
//!
//! The daemon knows how to persist, schedule, and supervise campaigns; it
//! does not know what a campaign *is*. A [`CampaignRunner`] supplies that:
//! the analysis crate plugs in its study presets, tests plug in toy
//! runners with scripted failures. The contract is slice-oriented — a
//! runner executes a *bounded* amount of new work per call and reports
//! whether the campaign finished, yielded with work remaining, honoured a
//! cancellation, or failed — which is what lets the scheduler fair-share
//! one executor fleet across tenants.

use permea_obs::Obs;
use std::path::Path;
use std::sync::atomic::AtomicBool;

/// One slice-dispatch handed to a runner.
pub struct SliceRequest<'a> {
    /// Daemon-assigned campaign id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: &'a str,
    /// The opaque descriptor the tenant submitted.
    pub payload: &'a str,
    /// Per-campaign state directory: the runner keeps its journal and
    /// result artifacts here, and resumes from them across slices and
    /// daemon restarts.
    pub dir: &'a Path,
    /// Budget: at most this many *new* runs this slice (journal replays
    /// are free). `None` lifts the cap (single-tenant fast path).
    pub slice_runs: Option<u64>,
    /// Cooperative cancellation flag; the runner must observe it promptly.
    pub cancel: &'a AtomicBool,
    /// Daemon telemetry for the runner to record into.
    pub obs: &'a Obs,
}

/// What a slice did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The campaign is complete; result artifacts are in the directory.
    Finished,
    /// The slice budget ran out with work remaining — re-queue for
    /// another slice.
    Yielded,
    /// The cancellation flag was honoured mid-campaign.
    Cancelled,
    /// Unrecoverable failure; the campaign will not be retried.
    Failed {
        /// What went wrong.
        message: String,
    },
}

/// Executes campaign slices. Implementations must be shareable across the
/// daemon's executor slots.
pub trait CampaignRunner: Send + Sync {
    /// Validates a submission payload *before* it is admitted; `Err` is
    /// surfaced to the client as
    /// [`crate::protocol::RejectReason::InvalidPayload`].
    ///
    /// # Errors
    ///
    /// A human-readable description of what is wrong with the payload.
    fn validate(&self, payload: &str) -> Result<(), String>;

    /// Runs one bounded slice of the campaign described by `req`.
    fn run_slice(&self, req: &SliceRequest<'_>) -> SliceOutcome;
}
