//! Write-ahead submission ledger: append-only JSONL persistence for the
//! daemon's campaign registry.
//!
//! Every accepted submission is durably recorded *before* the client sees
//! `Submitted`; every terminal transition (completed / failed / cancelled)
//! is recorded when it happens. A SIGKILLed daemon restarts by replaying
//! the ledger: campaigns with no `Closed` record are re-registered and
//! re-queued, and their per-campaign run journals make the resumed
//! execution byte-identical to the uninterrupted one.
//!
//! The file format deliberately mirrors [`permea_fi::journal`]: line 1 is
//! a header (format version), every following line is the CRC32 (IEEE) of
//! its JSON payload as eight lowercase hex digits, a space, and the
//! payload:
//!
//! ```text
//! {"version":1}
//! 89abcdef {"Submitted":{"id":1,"tenant":"alice","payload":"..."}}
//! 01234567 {"Closed":{"id":1,"state":"Completed","detail":""}}
//! ```
//!
//! A line that fails its CRC (or does not parse) at the **end** of the
//! file is the torn tail of an interrupted write and is truncated away on
//! open; the same failure **mid-file** can only be silent corruption and
//! poisons the ledger with a typed error rather than quietly dropping a
//! tenant's campaign.
//!
//! Durability is stricter than the run journal's: the ledger sees a few
//! records per campaign (not tens of thousands), so every append is
//! `fsync`ed before it returns. An `ENOSPC` append is retried a bounded
//! number of times (transient pressure clears; a full disk becomes the
//! typed [`ServerError::LedgerDiskFull`]).

use crate::error::ServerError;
use crate::protocol::CampaignState;
use permea_fi::chaos::{ChaosInjector, IoFaultKind};
use permea_fi::journal::crc32;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Ledger format version; bumped on any incompatible layout change.
pub const LEDGER_VERSION: u32 = 1;

/// Bounded retries for an `ENOSPC` append before giving up.
const ENOSPC_APPEND_RETRIES: u32 = 3;

/// First line of the ledger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct LedgerHeader {
    version: u32,
}

/// One ledger line: a submission or a terminal transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LedgerRecord {
    /// A campaign was admitted. Written (and fsynced) *before* the client
    /// receives its acknowledgement — the write-ahead invariant.
    Submitted {
        /// Daemon-assigned id.
        id: u64,
        /// Owning tenant.
        tenant: String,
        /// Opaque campaign descriptor for the runner.
        payload: String,
    },
    /// A campaign reached a terminal state.
    Closed {
        /// Daemon-assigned id.
        id: u64,
        /// The terminal state.
        state: CampaignState,
        /// Free-form detail (failure message, cancellation note).
        detail: String,
    },
}

/// One campaign reconstructed by [`Ledger::open`]'s replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedCampaign {
    /// Daemon-assigned id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Opaque campaign descriptor.
    pub payload: String,
    /// Terminal state and detail if the campaign closed before the
    /// previous daemon died; `None` means it must be re-queued.
    pub closed: Option<(CampaignState, String)>,
}

/// The append-only submission ledger.
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    writer: BufWriter<File>,
    chaos: Option<Arc<ChaosInjector>>,
}

fn io_err(context: &str, e: std::io::Error) -> ServerError {
    ServerError::Ledger {
        message: format!("{context}: {e}"),
    }
}

fn is_enospc(e: &std::io::Error) -> bool {
    e.raw_os_error() == Some(28) // ENOSPC
}

fn enospc_error() -> std::io::Error {
    std::io::Error::from_raw_os_error(28)
}

fn record_line(record: &LedgerRecord) -> Result<String, ServerError> {
    let json = serde_json::to_string(record).map_err(|e| ServerError::Ledger {
        message: format!("serialising ledger record: {e}"),
    })?;
    Ok(format!("{:08x} {json}", crc32(json.as_bytes())))
}

fn parse_record_line(line: &[u8]) -> Option<LedgerRecord> {
    let line = std::str::from_utf8(line).ok()?;
    let (crc_hex, json) = line.split_once(' ')?;
    if crc_hex.len() != 8 {
        return None;
    }
    let expected = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(json.as_bytes()) != expected {
        return None;
    }
    serde_json::from_str(json).ok()
}

impl Ledger {
    /// Opens the ledger at `path`, creating it (with its header) if absent,
    /// and replays every recorded campaign.
    ///
    /// A torn final line — the signature of `kill -9` mid-append — is
    /// truncated away; the replay sees everything that was durably
    /// acknowledged. Returns the reopened ledger, the replayed campaigns in
    /// id order, and the next free campaign id.
    ///
    /// # Errors
    ///
    /// [`ServerError::Ledger`] on I/O failure, header mismatch, or a
    /// corrupt record followed by valid ones (silent mid-file corruption).
    pub fn open(path: &Path) -> Result<(Ledger, Vec<ReplayedCampaign>, u64), ServerError> {
        if !path.exists() {
            let mut file = File::create(path).map_err(|e| io_err("creating ledger", e))?;
            let header = serde_json::to_string(&LedgerHeader {
                version: LEDGER_VERSION,
            })
            .map_err(|e| ServerError::Ledger {
                message: format!("serialising ledger header: {e}"),
            })?;
            file.write_all(header.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err("writing ledger header", e))?;
            return Ok((
                Ledger {
                    path: path.to_path_buf(),
                    writer: BufWriter::new(file),
                    chaos: None,
                },
                Vec::new(),
                1,
            ));
        }

        let data = std::fs::read(path).map_err(|e| io_err("reading ledger", e))?;
        let mut line_ranges = Vec::new();
        let mut start = 0usize;
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' {
                line_ranges.push((start, i));
                start = i + 1;
            }
        }

        let mut ranges = line_ranges.into_iter();
        let (hs, he) = ranges.next().ok_or(ServerError::Ledger {
            message: "ledger exists but holds no complete header line".into(),
        })?;
        let header_line = std::str::from_utf8(&data[hs..he]).map_err(|_| ServerError::Ledger {
            message: "ledger header is not valid UTF-8".into(),
        })?;
        let header: LedgerHeader =
            serde_json::from_str(header_line).map_err(|e| ServerError::Ledger {
                message: format!("parsing ledger header: {e}"),
            })?;
        if header.version != LEDGER_VERSION {
            return Err(ServerError::Ledger {
                message: format!(
                    "ledger format version {} but this daemon speaks {LEDGER_VERSION}",
                    header.version
                ),
            });
        }

        let mut campaigns: BTreeMap<u64, ReplayedCampaign> = BTreeMap::new();
        let mut valid_end = he + 1;
        // 1-based physical line of the first invalid record, if any; an
        // invalid line followed by a valid one is silent corruption, not a
        // torn tail.
        let mut corrupt_line: Option<usize> = None;
        for (idx, (s, e)) in ranges.enumerate() {
            match parse_record_line(&data[s..e]) {
                Some(record) => {
                    if let Some(line) = corrupt_line {
                        return Err(ServerError::Ledger {
                            message: format!(
                                "ledger line {line} is corrupt but later records are intact"
                            ),
                        });
                    }
                    match record {
                        LedgerRecord::Submitted {
                            id,
                            tenant,
                            payload,
                        } => {
                            campaigns.insert(
                                id,
                                ReplayedCampaign {
                                    id,
                                    tenant,
                                    payload,
                                    closed: None,
                                },
                            );
                        }
                        LedgerRecord::Closed { id, state, detail } => {
                            if let Some(c) = campaigns.get_mut(&id) {
                                c.closed = Some((state, detail));
                            }
                        }
                    }
                    valid_end = e + 1;
                }
                None => {
                    // Line 1 is the header; record `idx` sits on line idx+2.
                    corrupt_line.get_or_insert(idx + 2);
                }
            }
        }

        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("reopening ledger", e))?;
        if valid_end < data.len() {
            file.set_len(valid_end as u64)
                .map_err(|e| io_err("truncating torn ledger tail", e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seeking ledger end", e))?;

        let next_id = campaigns.keys().next_back().map_or(1, |max| max + 1);
        let replayed = campaigns.into_values().collect();
        Ok((
            Ledger {
                path: path.to_path_buf(),
                writer: BufWriter::new(file),
                chaos: None,
            },
            replayed,
            next_id,
        ))
    }

    /// Attaches a chaos injector: scheduled `ledger-write` faults from its
    /// plan are injected into [`Ledger::append`]. Production daemons never
    /// call this.
    pub fn set_chaos(&mut self, chaos: Arc<ChaosInjector>) {
        self.chaos = Some(chaos);
    }

    /// The file this ledger persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, CRC32-prefixed, flushed and `fsync`ed before
    /// returning — the record is durable when this succeeds.
    ///
    /// # Errors
    ///
    /// [`ServerError::LedgerDiskFull`] when `ENOSPC` persists past the
    /// bounded retries; [`ServerError::Ledger`] on any other I/O failure.
    pub fn append(&mut self, record: &LedgerRecord) -> Result<(), ServerError> {
        let line = record_line(record)?;
        let fault = self.chaos.as_ref().and_then(|c| c.on_ledger_append());
        let mut retries: u32 = 0;
        match fault {
            Some(IoFaultKind::Eio) => {
                return Err(io_err(
                    "appending ledger record",
                    std::io::Error::from_raw_os_error(5), // EIO
                ));
            }
            Some(IoFaultKind::Short) => {
                // A torn partial write: a prefix of the line reaches the
                // file with no newline, then the device fails — exactly
                // the tail shape `open` truncates away on restart.
                let cut = line.len() / 2;
                let _ = self
                    .writer
                    .write_all(&line.as_bytes()[..cut])
                    .and_then(|()| self.writer.flush());
                return Err(io_err("appending ledger record", enospc_error()));
            }
            Some(IoFaultKind::Enospc | IoFaultKind::EnospcOnce) => loop {
                let still_failing = fault == Some(IoFaultKind::Enospc) || retries == 0;
                if !still_failing {
                    break;
                }
                if retries >= ENOSPC_APPEND_RETRIES {
                    return Err(ServerError::LedgerDiskFull { retries });
                }
                retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(5 * u64::from(retries)));
            },
            None => {}
        }
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| {
                if is_enospc(&e) {
                    ServerError::LedgerDiskFull { retries }
                } else {
                    io_err("appending ledger record", e)
                }
            })?;
        self.writer
            .get_ref()
            .sync_data()
            .map_err(|e| io_err("fsyncing ledger", e))
    }

    /// Flushes and `fsync`s any buffered state. Appends already sync, so
    /// this is a cheap belt-and-braces call on the drain path.
    ///
    /// # Errors
    ///
    /// [`ServerError::Ledger`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), ServerError> {
        self.writer
            .flush()
            .and_then(|()| self.writer.get_ref().sync_data())
            .map_err(|e| io_err("syncing ledger", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("permea-ledger-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("ledger.jsonl")
    }

    fn submitted(id: u64, tenant: &str) -> LedgerRecord {
        LedgerRecord::Submitted {
            id,
            tenant: tenant.into(),
            payload: format!("{{\"preset\":\"smoke\",\"n\":{id}}}"),
        }
    }

    #[test]
    fn replay_reconstructs_open_and_closed_campaigns() {
        let path = tmp("replay");
        {
            let (mut ledger, replayed, next_id) = Ledger::open(&path).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(next_id, 1);
            ledger.append(&submitted(1, "alice")).unwrap();
            ledger.append(&submitted(2, "bob")).unwrap();
            ledger
                .append(&LedgerRecord::Closed {
                    id: 1,
                    state: CampaignState::Completed,
                    detail: String::new(),
                })
                .unwrap();
        }
        let (_ledger, replayed, next_id) = Ledger::open(&path).unwrap();
        assert_eq!(next_id, 3);
        assert_eq!(replayed.len(), 2);
        assert_eq!(
            replayed[0].closed,
            Some((CampaignState::Completed, String::new()))
        );
        assert_eq!(replayed[1].id, 2);
        assert_eq!(replayed[1].tenant, "bob");
        assert_eq!(replayed[1].closed, None);
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_survives() {
        let path = tmp("torn");
        {
            let (mut ledger, _, _) = Ledger::open(&path).unwrap();
            ledger.append(&submitted(1, "alice")).unwrap();
        }
        // Simulate kill -9 mid-append: half a record, no newline.
        let full = record_line(&submitted(2, "bob")).unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&full.as_bytes()[..full.len() / 2]).unwrap();
        drop(f);

        let (mut ledger, replayed, next_id) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), 1, "torn record must not replay");
        assert_eq!(next_id, 2);
        // Appending after truncation keeps the file parseable.
        ledger.append(&submitted(2, "bob")).unwrap();
        drop(ledger);
        let (_l, replayed, next_id) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(next_id, 3);
    }

    #[test]
    fn mid_file_corruption_is_rejected_not_dropped() {
        let path = tmp("midfile");
        {
            let (mut ledger, _, _) = Ledger::open(&path).unwrap();
            ledger.append(&submitted(1, "alice")).unwrap();
            ledger.append(&submitted(2, "bob")).unwrap();
        }
        // Flip a byte inside the FIRST record's payload, leaving the
        // second intact: silent corruption, not a torn tail.
        let mut data = std::fs::read(&path).unwrap();
        let header_end = data.iter().position(|&b| b == b'\n').unwrap();
        let target = header_end + 20;
        data[target] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let err = Ledger::open(&path).unwrap_err();
        assert!(
            matches!(&err, ServerError::Ledger { message } if message.contains("line 2")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn chaos_faults_map_to_typed_errors_and_recoverable_files() {
        use permea_fi::chaos::ChaosPlan;

        // enospc-once: the retry loop absorbs it.
        let path = tmp("chaos-once");
        let (mut ledger, _, _) = Ledger::open(&path).unwrap();
        let plan = ChaosPlan::parse("ledger-write=enospc-once@0").unwrap();
        let chaos = Arc::new(ChaosInjector::new(plan));
        ledger.set_chaos(Arc::clone(&chaos));
        ledger.append(&submitted(1, "alice")).unwrap();
        assert_eq!(chaos.injected(), 1);

        // enospc: bounded retries, then the typed disk-full error.
        let path = tmp("chaos-full");
        let (mut ledger, _, _) = Ledger::open(&path).unwrap();
        let plan = ChaosPlan::parse("ledger-write=enospc@0").unwrap();
        ledger.set_chaos(Arc::new(ChaosInjector::new(plan)));
        let err = ledger.append(&submitted(1, "alice")).unwrap_err();
        assert_eq!(
            err,
            ServerError::LedgerDiskFull {
                retries: ENOSPC_APPEND_RETRIES
            }
        );

        // short: a torn prefix lands in the file, then the fault surfaces;
        // reopening truncates the tear and the record is simply absent.
        let path = tmp("chaos-short");
        let (mut ledger, _, _) = Ledger::open(&path).unwrap();
        let plan = ChaosPlan::parse("ledger-write=short@0").unwrap();
        ledger.set_chaos(Arc::new(ChaosInjector::new(plan)));
        assert!(ledger.append(&submitted(1, "alice")).is_err());
        drop(ledger);
        let mut raw = String::new();
        File::open(&path).unwrap().read_to_string(&mut raw).unwrap();
        assert!(!raw.ends_with('\n'), "short fault must leave a torn tail");
        let (_l, replayed, next_id) = Ledger::open(&path).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(next_id, 1);

        // eio: fails before any byte reaches the file.
        let path = tmp("chaos-eio");
        let (mut ledger, _, _) = Ledger::open(&path).unwrap();
        let plan = ChaosPlan::parse("ledger-write=eio@0").unwrap();
        ledger.set_chaos(Arc::new(ChaosInjector::new(plan)));
        assert!(matches!(
            ledger.append(&submitted(1, "alice")),
            Err(ServerError::Ledger { .. })
        ));
    }

    #[test]
    fn closed_record_for_unknown_id_is_ignored_on_replay() {
        let path = tmp("orphan-close");
        {
            let (mut ledger, _, _) = Ledger::open(&path).unwrap();
            ledger
                .append(&LedgerRecord::Closed {
                    id: 42,
                    state: CampaignState::Failed,
                    detail: "orphan".into(),
                })
                .unwrap();
        }
        let (_l, replayed, next_id) = Ledger::open(&path).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(next_id, 1);
    }
}
