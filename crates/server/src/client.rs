//! Thin synchronous client for the daemon's Unix-socket protocol.
//!
//! One [`Client`] wraps one connection and speaks exactly one verb — the
//! protocol is connection-per-request — so the `permea-cli` subcommands
//! map one-to-one onto constructors here.

use crate::error::ServerError;
use crate::protocol::{
    read_message, write_message, CampaignState, Request, Response, ServerStatus, PROTOCOL_VERSION,
};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A single-verb connection to the daemon.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon socket.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the socket is absent or refuses — the
    /// daemon is not running (or not yet listening).
    pub fn connect(socket: &Path) -> Result<Client, ServerError> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| ServerError::io(&format!("connecting to {}", socket.display()), e))?;
        Ok(Client { stream })
    }

    fn call(&mut self, request: &Request) -> Result<Response, ServerError> {
        write_message(&mut self.stream, request)?;
        read_message(&mut self.stream)?.ok_or(ServerError::Disconnected)
    }

    /// Submits a campaign, returning the daemon's full answer (accepted
    /// with an id, or a typed rejection).
    ///
    /// # Errors
    ///
    /// [`ServerError`] on transport or protocol failure.
    pub fn submit(&mut self, tenant: &str, payload: &str) -> Result<Response, ServerError> {
        self.call(&Request::Submit {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
            payload: payload.to_string(),
        })
    }

    /// Fetches the daemon health snapshot.
    ///
    /// # Errors
    ///
    /// [`ServerError`] on transport failure or a non-status answer.
    pub fn status(&mut self) -> Result<ServerStatus, ServerError> {
        match self.call(&Request::Status {
            version: PROTOCOL_VERSION,
        })? {
            Response::Status(status) => Ok(status),
            other => Err(ServerError::Protocol {
                message: format!("expected a status response, got {other:?}"),
            }),
        }
    }

    /// Streams state updates for campaign `id`, invoking `on_update` per
    /// update, until the campaign reaches a terminal state (returned) or
    /// the daemon reports it unknown.
    ///
    /// # Errors
    ///
    /// [`ServerError`] on transport failure, an unknown id, or the stream
    /// ending before a terminal state.
    pub fn watch(
        &mut self,
        id: u64,
        mut on_update: impl FnMut(CampaignState, &str),
    ) -> Result<(CampaignState, String), ServerError> {
        write_message(
            &mut self.stream,
            &Request::Watch {
                version: PROTOCOL_VERSION,
                id,
            },
        )?;
        loop {
            match read_message::<_, Response>(&mut self.stream)? {
                None => return Err(ServerError::Disconnected),
                Some(Response::Update {
                    id: _,
                    state,
                    detail,
                }) => {
                    on_update(state, &detail);
                    if state.is_terminal() {
                        return Ok((state, detail));
                    }
                }
                Some(Response::NotFound { id }) => {
                    return Err(ServerError::Protocol {
                        message: format!("campaign {id} is unknown to the daemon"),
                    })
                }
                Some(other) => {
                    return Err(ServerError::Protocol {
                        message: format!("unexpected watch-stream message: {other:?}"),
                    })
                }
            }
        }
    }

    /// Cancels campaign `id`.
    ///
    /// # Errors
    ///
    /// [`ServerError`] on transport failure.
    pub fn cancel(&mut self, id: u64) -> Result<Response, ServerError> {
        self.call(&Request::Cancel {
            version: PROTOCOL_VERSION,
            id,
        })
    }

    /// Asks the daemon to drain gracefully and exit.
    ///
    /// # Errors
    ///
    /// [`ServerError`] on transport failure.
    pub fn shutdown(&mut self) -> Result<Response, ServerError> {
        self.call(&Request::Shutdown {
            version: PROTOCOL_VERSION,
        })
    }
}
