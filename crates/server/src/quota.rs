//! Admission control: bounded queues and per-tenant quotas.
//!
//! The daemon refuses work it cannot hold instead of growing without
//! bound: a full global queue or a tenant over its per-tenant ceiling is
//! answered with a typed [`RejectReason`] the client can act on (retry
//! later vs fix the request). Quotas also feed the fair-share scheduler:
//! `tenant_max_running` caps how many executor slots one tenant can hold
//! at once, so a tenant with a 52k-run study cannot starve everyone else.

use crate::protocol::RejectReason;

/// Admission-control and fair-share limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Maximum campaigns queued across all tenants; submissions past this
    /// are rejected with [`RejectReason::QueueFull`].
    pub max_queue_depth: usize,
    /// Maximum campaigns one tenant may have queued; past this the tenant
    /// is rejected with [`RejectReason::TenantQueueFull`].
    pub tenant_max_queued: usize,
    /// Maximum executor slots one tenant's campaigns may hold at once.
    /// The scheduler skips a tenant at this ceiling; it is never a
    /// rejection.
    pub tenant_max_running: usize,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            max_queue_depth: 64,
            tenant_max_queued: 8,
            tenant_max_running: 2,
        }
    }
}

impl QuotaConfig {
    /// Checks whether a submission from a tenant with `tenant_queued`
    /// campaigns already waiting can be admitted when `total_queued`
    /// campaigns are queued overall. `Err` carries the typed rejection.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] or [`RejectReason::TenantQueueFull`].
    pub fn admit(&self, total_queued: usize, tenant_queued: usize) -> Result<(), RejectReason> {
        if total_queued >= self.max_queue_depth {
            return Err(RejectReason::QueueFull {
                depth: total_queued,
                max: self.max_queue_depth,
            });
        }
        if tenant_queued >= self.tenant_max_queued {
            return Err(RejectReason::TenantQueueFull {
                queued: tenant_queued,
                max: self.tenant_max_queued,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_quota_admits_until_either_bound() {
        let q = QuotaConfig::default();
        assert_eq!(q.admit(0, 0), Ok(()));
        assert_eq!(q.admit(63, 7), Ok(()));
        assert_eq!(
            q.admit(64, 0),
            Err(RejectReason::QueueFull { depth: 64, max: 64 })
        );
        assert_eq!(
            q.admit(10, 8),
            Err(RejectReason::TenantQueueFull { queued: 8, max: 8 })
        );
    }

    #[test]
    fn global_bound_wins_when_both_trip() {
        let q = QuotaConfig {
            max_queue_depth: 4,
            tenant_max_queued: 2,
            tenant_max_running: 1,
        };
        assert!(matches!(q.admit(4, 2), Err(RejectReason::QueueFull { .. })));
    }
}
