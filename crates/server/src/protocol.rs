//! The client ↔ daemon wire protocol.
//!
//! Messages are JSON payloads inside the self-synchronising frames of
//! [`permea_fi::process`] (magic + length + payload), written over a Unix
//! stream socket. Reusing the worker-pipe framing means a noisy or torn
//! stream never desynchronises the conversation: the reader scans to the
//! next magic and a clean EOF is a typed `None`, exactly the properties
//! the chaos harness exercises at this boundary.
//!
//! One connection carries one request and its response(s): every verb
//! answers a single [`Response`] frame, except `Watch`, which streams
//! [`Response::Update`] frames until the campaign reaches a terminal
//! state. The daemon tolerates clients that vanish at any point.

use crate::error::ServerError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Protocol version, carried in every request so a daemon can refuse a
/// client from a different era instead of mis-parsing it.
pub const PROTOCOL_VERSION: u32 = 1;

/// A client request. One per connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a campaign for `tenant`; `payload` is an opaque string the
    /// daemon's [`crate::runner::CampaignRunner`] validates and executes
    /// (e.g. a study preset descriptor).
    Submit {
        /// Protocol version of the client.
        version: u32,
        /// Tenant the campaign is accounted against.
        tenant: String,
        /// Opaque campaign descriptor for the runner.
        payload: String,
    },
    /// Report daemon health and every known campaign.
    Status {
        /// Protocol version of the client.
        version: u32,
    },
    /// Stream state updates for one campaign until it is terminal.
    Watch {
        /// Protocol version of the client.
        version: u32,
        /// Daemon-assigned campaign id.
        id: u64,
    },
    /// Cancel a queued or running campaign.
    Cancel {
        /// Protocol version of the client.
        version: u32,
        /// Daemon-assigned campaign id.
        id: u64,
    },
    /// Ask the daemon to drain gracefully and exit 0 (the verb form of
    /// SIGTERM).
    Shutdown {
        /// Protocol version of the client.
        version: u32,
    },
}

/// Why a submission was refused. Typed so clients can distinguish
/// back-pressure (retry later) from rejection (fix the request).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The global submission queue is full — back-pressure, retry later.
    QueueFull {
        /// Campaigns currently queued.
        depth: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// This tenant already has its maximum queued campaigns.
    TenantQueueFull {
        /// Campaigns this tenant has queued.
        queued: usize,
        /// Configured per-tenant ceiling.
        max: usize,
    },
    /// The daemon is draining and accepts no new work.
    Draining,
    /// The runner refused the campaign descriptor.
    InvalidPayload {
        /// The runner's explanation.
        message: String,
    },
    /// The client speaks a different protocol version.
    VersionMismatch {
        /// The daemon's version.
        server: u32,
        /// The client's version.
        client: u32,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, max } => {
                write!(f, "queue full ({depth}/{max} campaigns queued)")
            }
            RejectReason::TenantQueueFull { queued, max } => {
                write!(f, "tenant queue full ({queued}/{max} campaigns queued)")
            }
            RejectReason::Draining => write!(f, "daemon is draining"),
            RejectReason::InvalidPayload { message } => {
                write!(f, "invalid campaign payload: {message}")
            }
            RejectReason::VersionMismatch { server, client } => {
                write!(
                    f,
                    "protocol version mismatch (server {server}, client {client})"
                )
            }
        }
    }
}

/// Lifecycle state of a submitted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignState {
    /// Accepted and waiting for an executor slot.
    Queued,
    /// At least one slice has been dispatched and the campaign is not
    /// done; between slices it still reports `Running`.
    Running,
    /// Finished; result artifacts are on disk in the campaign directory.
    Completed,
    /// The runner reported an unrecoverable failure.
    Failed,
    /// Cancelled by a client before completion.
    Cancelled,
}

impl CampaignState {
    /// `true` for states no further transition can leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            CampaignState::Completed | CampaignState::Failed | CampaignState::Cancelled
        )
    }

    /// Lower-case label used in status output and service events.
    pub fn label(self) -> &'static str {
        match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Completed => "completed",
            CampaignState::Failed => "failed",
            CampaignState::Cancelled => "cancelled",
        }
    }
}

/// One campaign's row in a [`ServerStatus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Daemon-assigned id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Current lifecycle state.
    pub state: CampaignState,
    /// Free-form detail (failure message, cancellation note, ...).
    pub detail: String,
}

/// Daemon health snapshot answered to the `status` verb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatus {
    /// `false` once draining begins.
    pub accepting: bool,
    /// `true` while a graceful shutdown is in progress.
    pub draining: bool,
    /// Executor slots the daemon started with.
    pub slots_total: usize,
    /// Slots still healthy (not retired by the failure budget).
    pub slots_healthy: usize,
    /// `true` when at least one slot has retired — the daemon still
    /// schedules onto the survivors.
    pub degraded: bool,
    /// Campaigns waiting for a slot.
    pub queued: u64,
    /// Campaigns currently holding a slot or between slices.
    pub running: u64,
    /// Campaigns finished successfully since the daemon started
    /// (including recovered ones).
    pub completed: u64,
    /// Campaigns failed.
    pub failed: u64,
    /// Campaigns cancelled.
    pub cancelled: u64,
    /// Every campaign the daemon knows, in id order.
    pub campaigns: Vec<CampaignStatus>,
}

/// A daemon response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The submission was accepted and durably recorded under `id`.
    Submitted {
        /// Daemon-assigned campaign id.
        id: u64,
    },
    /// The submission was refused; nothing was recorded.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Answer to `Status`.
    Status(ServerStatus),
    /// One `Watch` stream element; the stream ends after the first update
    /// whose state is terminal.
    Update {
        /// Campaign id being watched.
        id: u64,
        /// State at this update.
        state: CampaignState,
        /// Free-form detail.
        detail: String,
    },
    /// The cancel verb took effect (or the campaign was already
    /// cancelled).
    Cancelled {
        /// Campaign id.
        id: u64,
    },
    /// The id names no known campaign.
    NotFound {
        /// The offending id.
        id: u64,
    },
    /// The daemon acknowledged a shutdown request and is draining.
    ShuttingDown,
    /// A server-side failure answering the request.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// Writes one protocol message as a frame.
///
/// # Errors
///
/// [`ServerError::Io`] on stream failure, [`ServerError::Protocol`] if the
/// message cannot be serialised (unreachable for these types in practice).
pub fn write_message<W: Write, T: Serialize>(w: &mut W, message: &T) -> Result<(), ServerError> {
    let json = serde_json::to_string(message).map_err(|e| ServerError::Protocol {
        message: format!("serialising message: {e}"),
    })?;
    let frame = permea_fi::process::encode_frame(&json);
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| ServerError::io("writing frame", e))
}

/// Reads the next protocol message, scanning past stream noise. Returns
/// `Ok(None)` on a clean EOF before another frame started.
///
/// # Errors
///
/// [`ServerError::Io`] on stream failure and [`ServerError::Protocol`] when
/// a complete frame's payload is not the expected message type.
pub fn read_message<R: Read, T: serde::Deserialize>(r: &mut R) -> Result<Option<T>, ServerError> {
    let payload =
        permea_fi::process::read_frame(r).map_err(|e| ServerError::io("reading frame", e))?;
    match payload {
        None => Ok(None),
        Some(json) => serde_json::from_str(&json)
            .map(Some)
            .map_err(|e| ServerError::Protocol {
                message: format!("parsing message: {e}"),
            }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_through_frames() {
        let requests = vec![
            Request::Submit {
                version: PROTOCOL_VERSION,
                tenant: "alice".into(),
                payload: "{\"preset\":\"smoke\"}".into(),
            },
            Request::Status {
                version: PROTOCOL_VERSION,
            },
            Request::Watch {
                version: PROTOCOL_VERSION,
                id: 7,
            },
            Request::Cancel {
                version: PROTOCOL_VERSION,
                id: 7,
            },
            Request::Shutdown {
                version: PROTOCOL_VERSION,
            },
        ];
        let mut buf = Vec::new();
        for r in &requests {
            write_message(&mut buf, r).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expected in &requests {
            let got: Request = read_message(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, expected);
        }
        assert_eq!(read_message::<_, Request>(&mut cursor).unwrap(), None);
    }

    #[test]
    fn responses_round_trip_and_tolerate_noise() {
        let response = Response::Rejected {
            reason: RejectReason::QueueFull { depth: 64, max: 64 },
        };
        let mut buf = b"log noise before the frame\n".to_vec();
        write_message(&mut buf, &response).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let got: Response = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(got, response);
    }

    #[test]
    fn wrong_message_type_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_message(
            &mut buf,
            &Request::Status {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let got = read_message::<_, Response>(&mut cursor);
        assert!(matches!(got, Err(ServerError::Protocol { .. })));
    }

    #[test]
    fn terminal_states() {
        assert!(!CampaignState::Queued.is_terminal());
        assert!(!CampaignState::Running.is_terminal());
        assert!(CampaignState::Completed.is_terminal());
        assert!(CampaignState::Failed.is_terminal());
        assert!(CampaignState::Cancelled.is_terminal());
    }
}
