//! # permea-server — a crash-recoverable campaign daemon
//!
//! The paper's propagation analysis is campaign-heavy, and incremental
//! re-analysis multiplies one monolithic study into *many concurrent small
//! campaigns*. This crate provides the service layer that schedules them:
//! a long-running daemon accepting campaign submissions over framed IPC on
//! a Unix socket (the same self-synchronising wire format as
//! [`permea_fi::process`] worker pipes), multiplexing runs from multiple
//! tenants onto one shared executor fleet.
//!
//! The daemon is engineered to survive everything the chaos harness can
//! throw at it:
//!
//! * **Write-ahead submission ledger** ([`ledger`]) — every accepted
//!   campaign is durably recorded *before* it is acknowledged; a SIGKILLed
//!   daemon restarts, replays the ledger, and resumes every in-flight
//!   campaign byte-identically from its per-campaign run journal.
//! * **Admission control** ([`quota`]) — bounded queue depth and typed
//!   back-pressure rejections instead of unbounded memory growth.
//! * **Tenant quotas with fair-share scheduling** ([`scheduler`]) — one
//!   tenant's 52k-run study cannot starve another's smoke test: campaigns
//!   execute in budgeted slices (see
//!   [`permea_fi::campaign::Campaign::run_resumable_budgeted`]) and the
//!   scheduler round-robins slices across tenants.
//! * **Graceful drain vs hard kill, proven equivalent** ([`daemon`]) — on
//!   SIGTERM the daemon stops dispatching, finishes in-flight slices,
//!   flushes ledger/journals/metrics and exits 0; on SIGKILL the ledger
//!   replay produces the same final state.
//! * **Degraded-mode operation** — executor slots that keep failing retire
//!   instead of taking the daemon down; health surfaces over the `status`
//!   verb.
//!
//! Campaign *content* is decoupled from the service: the daemon runs any
//! [`runner::CampaignRunner`], so this crate depends only on the fault
//! injection executor and telemetry layers, and the analysis crate plugs
//! its study presets in from above.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod error;
pub mod ledger;
pub mod protocol;
pub mod quota;
pub mod runner;
pub mod scheduler;
pub mod signal;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::client::Client;
    pub use crate::daemon::{Daemon, ServerConfig};
    pub use crate::error::ServerError;
    pub use crate::ledger::{Ledger, LedgerRecord, ReplayedCampaign};
    pub use crate::protocol::{
        CampaignState, CampaignStatus, RejectReason, Request, Response, ServerStatus,
    };
    pub use crate::quota::QuotaConfig;
    pub use crate::runner::{CampaignRunner, SliceOutcome, SliceRequest};
    pub use crate::scheduler::Scheduler;
}

pub use prelude::*;
