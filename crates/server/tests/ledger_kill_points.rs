//! Property test: `kill -9` the daemon at *any byte* of the submission
//! ledger and a restart replays exactly the durably acknowledged records.
//!
//! Each case builds a random submission/close history, then cuts the file
//! at a random offset — the on-disk shape an arbitrary kill point leaves
//! behind, since appends are sequential. Reopening must succeed, replay
//! must equal an independent line-boundary model of the surviving prefix,
//! and the truncated ledger must accept further appends that themselves
//! survive a reopen.

use permea_server::{CampaignState, Ledger, LedgerRecord, ReplayedCampaign};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

const TENANTS: [&str; 3] = ["alice", "bob", "carol"];

fn tmp_ledger(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("permea-killpoints-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{case}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

/// Folds records through the same replay semantics `Ledger::open` uses.
fn model_replay(records: &[LedgerRecord]) -> (Vec<ReplayedCampaign>, u64) {
    let mut campaigns: BTreeMap<u64, ReplayedCampaign> = BTreeMap::new();
    for record in records {
        match record {
            LedgerRecord::Submitted {
                id,
                tenant,
                payload,
            } => {
                campaigns.insert(
                    *id,
                    ReplayedCampaign {
                        id: *id,
                        tenant: tenant.clone(),
                        payload: payload.clone(),
                        closed: None,
                    },
                );
            }
            LedgerRecord::Closed { id, state, detail } => {
                if let Some(c) = campaigns.get_mut(id) {
                    c.closed = Some((*state, detail.clone()));
                }
            }
        }
    }
    let next_id = campaigns.keys().next_back().map_or(1, |max| max + 1);
    (campaigns.into_values().collect(), next_id)
}

/// Decodes one op byte into the next history record.
fn next_record(op: u8, next_id: &mut u64, open: &mut Vec<u64>) -> LedgerRecord {
    if op % 4 == 3 && !open.is_empty() {
        let id = open.remove(usize::from(op / 4) % open.len());
        let state = match op % 3 {
            0 => CampaignState::Completed,
            1 => CampaignState::Failed,
            _ => CampaignState::Cancelled,
        };
        LedgerRecord::Closed {
            id,
            state,
            detail: format!("closed by op {op}"),
        }
    } else {
        let id = *next_id;
        *next_id += 1;
        open.push(id);
        LedgerRecord::Submitted {
            id,
            tenant: TENANTS[usize::from(op) % TENANTS.len()].to_string(),
            payload: format!("{{\"preset\":\"smoke\",\"seed\":{id}}}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn any_kill_point_replays_the_acknowledged_prefix(
        ops in prop::collection::vec(any::<u8>(), 1..12),
        cut_pick in any::<u64>(),
    ) {
        let path = tmp_ledger("any-kill-point");
        let (mut ledger, _, _) = Ledger::open(&path).unwrap();

        // Build the history, recording where each record's line ends.
        let mut next_id = 1u64;
        let mut open_ids = Vec::new();
        let mut history: Vec<(LedgerRecord, u64)> = Vec::new();
        for &op in &ops {
            let record = next_record(op, &mut next_id, &mut open_ids);
            ledger.append(&record).unwrap();
            let end = std::fs::metadata(&path).unwrap().len();
            history.push((record, end));
        }
        drop(ledger);

        // Kill point: anywhere from just after the header to end-of-file.
        let data = std::fs::read(&path).unwrap();
        let header_end = data.iter().position(|&b| b == b'\n').unwrap() as u64 + 1;
        let len = data.len() as u64;
        let cut = header_end + cut_pick % (len - header_end + 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // The surviving records are exactly the complete lines before the
        // cut; everything else was never acknowledged durable.
        let survivors: Vec<LedgerRecord> = history
            .iter()
            .filter(|(_, end)| *end <= cut)
            .map(|(r, _)| r.clone())
            .collect();
        let (expected, expected_next) = model_replay(&survivors);

        let (mut ledger, replayed, next) = Ledger::open(&path).unwrap();
        prop_assert_eq!(&replayed, &expected);
        prop_assert_eq!(next, expected_next);

        // The truncated ledger stays appendable and the new record is as
        // durable as any other.
        let extra = LedgerRecord::Submitted {
            id: next,
            tenant: "dave".to_string(),
            payload: "{\"preset\":\"smoke\"}".to_string(),
        };
        ledger.append(&extra).unwrap();
        drop(ledger);
        let mut with_extra = survivors;
        with_extra.push(extra);
        let (expected, expected_next) = model_replay(&with_extra);
        let (_ledger, replayed, next) = Ledger::open(&path).unwrap();
        prop_assert_eq!(&replayed, &expected);
        prop_assert_eq!(next, expected_next);
    }
}

/// A kill during the very first start can tear the header itself; that is
/// a typed startup error, not a silent empty ledger.
#[test]
fn torn_header_is_a_typed_error() {
    let path = tmp_ledger("torn-header");
    std::fs::write(&path, "{\"version\"").unwrap();
    let err = Ledger::open(&path).unwrap_err();
    assert!(
        err.to_string().contains("header"),
        "unexpected error: {err}"
    );
}
