//! In-process daemon integration tests: a toy [`CampaignRunner`] stands in
//! for the study executor so the scheduling, quota, drain and recovery
//! behaviour can be asserted deterministically.
//!
//! The toy runner's "journal" is an in-memory per-campaign slice counter
//! shared across daemon instances through an `Arc` — restarting the daemon
//! against the same runner models restarting against the same on-disk run
//! journals, and the executed-slice log proves no work is re-run.

use permea_obs::Obs;
use permea_server::runner::{CampaignRunner, SliceOutcome, SliceRequest};
use permea_server::{
    CampaignState, Client, Daemon, QuotaConfig, RejectReason, Response, ServerConfig, ServerStatus,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(30);

/// Toy campaign: the payload is the decimal number of slices it takes.
/// Slices block on a shared gate until the test opens it, so tests control
/// exactly when work is considered in-flight.
#[derive(Default)]
struct ToyRunner {
    /// Slices left per campaign id; survives daemon restarts like a run
    /// journal survives process death.
    remaining: Mutex<HashMap<u64, u64>>,
    /// One `(tenant, campaign)` entry per executed slice, in order.
    executed: Mutex<Vec<(String, u64)>>,
    gate: Mutex<bool>,
    gate_cv: Condvar,
}

impl ToyRunner {
    fn open_gate(&self) {
        *self.gate.lock().unwrap() = true;
        self.gate_cv.notify_all();
    }

    fn executed(&self) -> Vec<(String, u64)> {
        self.executed.lock().unwrap().clone()
    }
}

impl CampaignRunner for ToyRunner {
    fn validate(&self, payload: &str) -> Result<(), String> {
        match payload.parse::<u64>() {
            Ok(n) if n > 0 => Ok(()),
            _ => Err(format!("payload {payload:?} is not a positive slice count")),
        }
    }

    fn run_slice(&self, req: &SliceRequest<'_>) -> SliceOutcome {
        {
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.gate_cv.wait(open).unwrap();
            }
        }
        if req.cancel.load(Ordering::Acquire) {
            return SliceOutcome::Cancelled;
        }
        let left = {
            let mut remaining = self.remaining.lock().unwrap();
            let slot = remaining
                .entry(req.id)
                .or_insert_with(|| req.payload.parse().expect("validated payload"));
            *slot -= 1;
            *slot
        };
        self.executed
            .lock()
            .unwrap()
            .push((req.tenant.to_string(), req.id));
        if left == 0 {
            SliceOutcome::Finished
        } else {
            SliceOutcome::Yielded
        }
    }
}

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("permea-daemon-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, slots: usize) -> ServerConfig {
    let mut config = ServerConfig::new(dir);
    config.slots = slots;
    config.slice_runs = Some(1);
    config
}

/// Connects a fresh client (one verb per connection), retrying while the
/// daemon's listener comes up.
fn connect(socket: &Path) -> Client {
    let start = Instant::now();
    loop {
        match Client::connect(socket) {
            Ok(client) => return client,
            Err(e) => {
                assert!(start.elapsed() < DEADLINE, "daemon never listened: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn submit(socket: &Path, tenant: &str, slices: u64) -> Response {
    connect(socket).submit(tenant, &slices.to_string()).unwrap()
}

fn submit_id(socket: &Path, tenant: &str, slices: u64) -> u64 {
    match submit(socket, tenant, slices) {
        Response::Submitted { id } => id,
        other => panic!("submission refused: {other:?}"),
    }
}

fn wait_status(socket: &Path, what: &str, pred: impl Fn(&ServerStatus) -> bool) -> ServerStatus {
    let start = Instant::now();
    loop {
        let status = connect(socket).status().unwrap();
        if pred(&status) {
            return status;
        }
        assert!(
            start.elapsed() < DEADLINE,
            "timed out waiting for {what}; last status: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn fair_share_alternates_slices_between_tenants() {
    let dir = state_dir("fair-share");
    let runner = Arc::new(ToyRunner::default());
    let daemon = Daemon::start(config(&dir, 1), runner.clone(), Obs::disabled()).unwrap();
    let socket = daemon.socket().to_path_buf();

    // Both tenants are queued before any slice can finish: the single
    // slot blocks on the gate, so the dispatch order from here on is the
    // scheduler's alone.
    let alice = submit_id(&socket, "alice", 6);
    let bob = submit_id(&socket, "bob", 6);
    runner.open_gate();

    wait_status(&socket, "both campaigns to complete", |s| s.completed == 2);
    daemon.finish().unwrap();

    let executed = runner.executed();
    assert_eq!(executed.len(), 12, "six slices per campaign: {executed:?}");
    for pair in executed.windows(2) {
        assert_ne!(
            pair[0].0, pair[1].0,
            "a tenant ran twice in a row — fair share broken: {executed:?}"
        );
    }
    let alice_slices = executed.iter().filter(|(_, id)| *id == alice).count();
    let bob_slices = executed.iter().filter(|(_, id)| *id == bob).count();
    assert_eq!((alice_slices, bob_slices), (6, 6));
}

#[test]
fn quota_rejections_are_typed_and_clear_after_drain() {
    let dir = state_dir("quota");
    let runner = Arc::new(ToyRunner::default());
    let mut config = config(&dir, 1);
    config.quota = QuotaConfig {
        max_queue_depth: 3,
        tenant_max_queued: 2,
        tenant_max_running: 2,
    };
    let daemon = Daemon::start(config, runner.clone(), Obs::disabled()).unwrap();
    let socket = daemon.socket().to_path_buf();

    // First campaign claims the (gated) slot and leaves the queue.
    submit_id(&socket, "alice", 1);
    wait_status(&socket, "first campaign to hold the slot", |s| {
        s.running == 1 && s.queued == 0
    });

    // Two more queue up to alice's per-tenant ceiling; the fourth is
    // refused with the tenant-quota reason, not the global one.
    submit_id(&socket, "alice", 1);
    submit_id(&socket, "alice", 1);
    match submit(&socket, "alice", 1) {
        Response::Rejected {
            reason: RejectReason::TenantQueueFull { queued: 2, max: 2 },
        } => {}
        other => panic!("expected tenant back-pressure, got {other:?}"),
    }

    // Another tenant still fits (global depth 3)...
    submit_id(&socket, "bob", 1);
    // ...but the queue is now full for everyone.
    match submit(&socket, "bob", 1) {
        Response::Rejected {
            reason: RejectReason::QueueFull { depth: 3, max: 3 },
        } => {}
        other => panic!("expected global back-pressure, got {other:?}"),
    }

    // Rejections recorded nothing: exactly the four admitted campaigns run.
    runner.open_gate();
    let status = wait_status(&socket, "admitted campaigns to finish", |s| {
        s.completed == 4
    });
    assert_eq!(status.campaigns.len(), 4);
    daemon.finish().unwrap();
    assert_eq!(runner.executed().len(), 4);
}

#[test]
fn drain_parks_in_flight_campaigns_and_restart_finishes_without_rerun() {
    let dir = state_dir("drain-restart");
    let runner = Arc::new(ToyRunner::default());
    // Metrics-capable (but sinkless) telemetry: drain must flush a
    // metrics.json snapshot.
    let daemon =
        Daemon::start(config(&dir, 1), runner.clone(), Obs::with_sinks(Vec::new())).unwrap();
    let socket = daemon.socket().to_path_buf();

    let id = submit_id(&socket, "alice", 5);
    wait_status(&socket, "campaign to start", |s| s.running == 1);

    // Drain while the first slice is gated in flight: the slice must
    // finish (gate opens below), the campaign parks, and the daemon exits
    // cleanly without dispatching further slices.
    daemon.request_drain();
    runner.open_gate();
    daemon.finish().unwrap();
    assert_eq!(
        runner.executed().len(),
        1,
        "drain must stop dispatching after the in-flight slice"
    );
    assert!(
        dir.join("metrics.json").exists(),
        "drain must flush the metrics snapshot"
    );
    assert!(!socket.exists(), "drain must remove the socket");

    // Restart over the same state dir: the ledger re-queues the parked
    // campaign and the remaining four slices run — none again.
    let daemon = Daemon::start(config(&dir, 1), runner.clone(), Obs::disabled()).unwrap();
    let socket = daemon.socket().to_path_buf();
    let status = wait_status(&socket, "recovered campaign to finish", |s| {
        s.completed == 1
    });
    assert_eq!(status.campaigns[0].id, id);
    assert_eq!(status.campaigns[0].state, CampaignState::Completed);
    daemon.finish().unwrap();
    assert_eq!(
        runner.executed().len(),
        5,
        "restart must resume, not re-run: {:?}",
        runner.executed()
    );

    // A third start replays the terminal state and dispatches nothing.
    let daemon = Daemon::start(config(&dir, 1), runner.clone(), Obs::disabled()).unwrap();
    let socket = daemon.socket().to_path_buf();
    let status = wait_status(&socket, "terminal replay", |s| !s.campaigns.is_empty());
    assert_eq!(status.campaigns[0].state, CampaignState::Completed);
    daemon.finish().unwrap();
    assert_eq!(runner.executed().len(), 5, "closed campaigns never re-run");
}

#[test]
fn cancelling_a_queued_campaign_never_runs_it() {
    let dir = state_dir("cancel-queued");
    let runner = Arc::new(ToyRunner::default());
    let daemon = Daemon::start(config(&dir, 1), runner.clone(), Obs::disabled()).unwrap();
    let socket = daemon.socket().to_path_buf();

    let first = submit_id(&socket, "alice", 1);
    wait_status(&socket, "first campaign to hold the slot", |s| {
        s.running == 1
    });
    let queued = submit_id(&socket, "alice", 1);

    match connect(&socket).cancel(queued).unwrap() {
        Response::Cancelled { id } => assert_eq!(id, queued),
        other => panic!("expected cancellation, got {other:?}"),
    }
    match connect(&socket).cancel(9999).unwrap() {
        Response::NotFound { id: 9999 } => {}
        other => panic!("expected NotFound, got {other:?}"),
    }

    runner.open_gate();
    let status = wait_status(&socket, "survivor to finish", |s| {
        s.completed == 1 && s.cancelled == 1
    });
    let row = status.campaigns.iter().find(|c| c.id == queued).unwrap();
    assert_eq!(row.state, CampaignState::Cancelled);
    daemon.finish().unwrap();

    let executed = runner.executed();
    assert_eq!(executed.len(), 1);
    assert_eq!(executed[0].1, first, "the cancelled campaign never ran");
}
