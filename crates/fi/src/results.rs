//! Campaign results: per-pair counts and optional per-run records.

use crate::model::ErrorModel;
use crate::outcome::{OutcomeTally, RunOutcome};
use serde::{Deserialize, Serialize};

/// Injection/error counts for one (module, input, output) pair — the raw
/// material of the paper's `P̂_{i,k} = n_err / n_inj` estimate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairStat {
    /// Module name.
    pub module: String,
    /// Input-port signal name.
    pub input_signal: String,
    /// Output-port signal name.
    pub output_signal: String,
    /// Zero-based input port index.
    pub input: usize,
    /// Zero-based output port index.
    pub output: usize,
    /// Number of injections into the input (`n_inj`).
    pub injections: u64,
    /// Number of runs in which the output trace deviated from the Golden
    /// Run (`n_err`).
    pub errors: u64,
}

impl PairStat {
    /// The permeability estimate `n_err / n_inj` (0 when no injections ran).
    pub fn estimate(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.errors as f64 / self.injections as f64
        }
    }
}

/// Deterministic execution statistics of one injection run — what the run
/// cost and which fast-forward shortcuts it took.
///
/// Kept *outside* [`RunRecord`] deliberately: records are the scientific
/// result (byte-identical across the fast-forward and replay-from-zero
/// paths, and across resume boundaries), while these statistics describe
/// *how* the configured executor got there. They are journaled next to
/// each record so a resumed campaign can merge telemetry totals exactly;
/// for a fixed configuration they are fully deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Ticks actually simulated inside the injection window (0 for
    /// quarantined runs — their window is lost to the unwind).
    pub sim_ticks: u64,
    /// `true` when the run forked from a golden snapshot at the injection
    /// instant instead of replaying the prefix from tick zero.
    pub forked: bool,
    /// The tick at which the run reconverged with a golden checkpoint and
    /// exited early, when it did.
    pub converged_ms: Option<u64>,
}

/// Detailed record of one injection run (kept when
/// [`crate::campaign::CampaignConfig::keep_records`] is set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Target module name.
    pub module: String,
    /// Targeted input-port signal.
    pub input_signal: String,
    /// Error model applied.
    pub model: ErrorModel,
    /// Injection instant (ms).
    pub time_ms: u64,
    /// Workload case index.
    pub case: usize,
    /// Value observed at the port just before corruption.
    pub original_value: u16,
    /// Value installed by the error model.
    pub corrupted_value: u16,
    /// For each output port of the module (port order): the first tick at
    /// which its trace deviated from the Golden Run, if any. Empty for
    /// quarantined runs — no comparison exists for them.
    pub first_divergence: Vec<Option<u32>>,
    /// How the run ended. Quarantined runs (panicked or hung) carry zeroed
    /// value fields and an empty `first_divergence`.
    pub outcome: RunOutcome,
}

impl RunRecord {
    /// `true` if any output deviated.
    pub fn any_error(&self) -> bool {
        self.first_divergence.iter().any(Option::is_some)
    }

    /// Propagation latency to output `k`, in ticks after the injection
    /// instant (`None` when no error or the divergence preceded injection —
    /// which cannot happen in a correct campaign).
    pub fn latency_ticks(&self, output: usize) -> Option<u64> {
        self.first_divergence
            .get(output)
            .copied()
            .flatten()
            .map(|tick| (tick as u64).saturating_sub(self.time_ms))
    }
}

/// Aggregated outcome of an injection campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Counts per (module, input, output) pair, in deterministic order
    /// (targets in spec order, outputs in port order).
    pub pairs: Vec<PairStat>,
    /// Per-run details (empty unless requested).
    pub records: Vec<RunRecord>,
    /// Golden-run tick counts per case (the comparison horizons).
    pub golden_ticks: Vec<u64>,
    /// Total injection runs executed. Equals the spec's dense
    /// [`crate::spec::CampaignSpec::run_count`] for a grid campaign; under
    /// an adaptive plan it is the number of coordinates the planner
    /// actually sampled.
    pub total_runs: u64,
    /// Runs executed per target (spec order), including quarantined ones.
    /// Uniformly [`crate::spec::CampaignSpec::injections_per_target`] for a
    /// dense campaign; under an adaptive plan each entry is what the
    /// stratum cost before it closed — the raw material of the runs-saved
    /// accounting in [`crate::estimate::target_summaries`].
    pub runs_per_target: Vec<u64>,
    /// Per-class run counts: completed vs quarantined (panicked / hung).
    pub outcomes: OutcomeTally,
}

impl CampaignResult {
    /// Looks up the stat for a pair by names.
    pub fn pair(&self, module: &str, input_signal: &str, output_signal: &str) -> Option<&PairStat> {
        self.pairs.iter().find(|p| {
            p.module == module && p.input_signal == input_signal && p.output_signal == output_signal
        })
    }

    /// All stats of one module.
    pub fn module_pairs(&self, module: &str) -> Vec<&PairStat> {
        self.pairs.iter().filter(|p| p.module == module).collect()
    }

    /// The fraction of errors propagating per (time, case) cell for a pair —
    /// used to probe the *uniform propagation* hypothesis of reference \[12\], which the
    /// paper (and this reproduction) does not corroborate. Returns
    /// `(time_ms, case, errors, injections)` rows computed from records.
    pub fn propagation_cells(
        &self,
        module: &str,
        input_signal: &str,
        output: usize,
    ) -> Vec<(u64, usize, u64, u64)> {
        use std::collections::BTreeMap;
        let mut cells: BTreeMap<(u64, usize), (u64, u64)> = BTreeMap::new();
        for r in self
            .records
            .iter()
            .filter(|r| r.module == module && r.input_signal == input_signal)
            .filter(|r| r.outcome.is_completed())
        {
            let cell = cells.entry((r.time_ms, r.case)).or_insert((0, 0));
            cell.1 += 1;
            if r.first_divergence.get(output).copied().flatten().is_some() {
                cell.0 += 1;
            }
        }
        cells
            .into_iter()
            .map(|((t, c), (e, n))| (t, c, e, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(inj: u64, err: u64) -> PairStat {
        PairStat {
            module: "M".into(),
            input_signal: "in".into(),
            output_signal: "out".into(),
            input: 0,
            output: 0,
            injections: inj,
            errors: err,
        }
    }

    #[test]
    fn estimate_is_ratio() {
        assert_eq!(stat(4000, 1000).estimate(), 0.25);
        assert_eq!(stat(0, 0).estimate(), 0.0);
    }

    #[test]
    fn record_error_and_latency() {
        let r = RunRecord {
            module: "M".into(),
            input_signal: "in".into(),
            model: ErrorModel::BitFlip { bit: 3 },
            time_ms: 500,
            case: 0,
            original_value: 10,
            corrupted_value: 2,
            first_divergence: vec![None, Some(520)],
            outcome: RunOutcome::Completed,
        };
        assert!(r.any_error());
        assert_eq!(r.latency_ticks(0), None);
        assert_eq!(r.latency_ticks(1), Some(20));
        assert_eq!(r.latency_ticks(9), None);
    }

    #[test]
    fn result_lookup() {
        let res = CampaignResult {
            pairs: vec![stat(10, 5)],
            records: vec![],
            golden_ticks: vec![100],
            total_runs: 10,
            runs_per_target: vec![10],
            outcomes: OutcomeTally::default(),
        };
        assert!(res.pair("M", "in", "out").is_some());
        assert!(res.pair("M", "in", "nope").is_none());
        assert_eq!(res.module_pairs("M").len(), 1);
    }

    #[test]
    fn propagation_cells_aggregate_records() {
        let mk = |time, case, div: Option<u32>| RunRecord {
            module: "M".into(),
            input_signal: "in".into(),
            model: ErrorModel::BitFlip { bit: 0 },
            time_ms: time,
            case,
            original_value: 0,
            corrupted_value: 1,
            first_divergence: vec![div],
            outcome: RunOutcome::Completed,
        };
        let res = CampaignResult {
            pairs: vec![],
            records: vec![mk(500, 0, Some(501)), mk(500, 0, None), mk(1000, 1, None)],
            golden_ticks: vec![],
            total_runs: 3,
            runs_per_target: vec![3],
            outcomes: OutcomeTally::default(),
        };
        let cells = res.propagation_cells("M", "in", 0);
        assert_eq!(cells, vec![(500, 0, 1, 2), (1000, 1, 0, 1)]);
    }

    #[test]
    fn propagation_cells_skip_quarantined_records() {
        let mk = |outcome: RunOutcome| RunRecord {
            module: "M".into(),
            input_signal: "in".into(),
            model: ErrorModel::BitFlip { bit: 0 },
            time_ms: 500,
            case: 0,
            original_value: 0,
            corrupted_value: 1,
            first_divergence: if outcome.is_completed() {
                vec![Some(501)]
            } else {
                vec![]
            },
            outcome,
        };
        let res = CampaignResult {
            pairs: vec![],
            records: vec![
                mk(RunOutcome::Completed),
                mk(RunOutcome::Panicked {
                    message: "boom".into(),
                }),
                mk(RunOutcome::Hung { last_tick_ms: 499 }),
            ],
            golden_ticks: vec![],
            total_runs: 3,
            runs_per_target: vec![3],
            outcomes: OutcomeTally {
                completed: 1,
                panicked: 1,
                hung: 1,
                crashed: 0,
            },
        };
        // Only the completed run contributes to the cell's injection count.
        assert_eq!(res.propagation_cells("M", "in", 0), vec![(500, 0, 1, 1)]);
    }
}
