//! Turning campaign counts into a permeability matrix with confidence
//! bounds.
//!
//! The point estimate is the paper's `P̂_{i,k} = n_err / n_inj`. On top of
//! it this module provides Wilson score intervals — with 4 000 injections
//! per input the intervals are tight (±1.5 % at worst), which justifies the
//! paper's use of the point estimates as relative orderings.

use crate::error::FiError;
use crate::results::CampaignResult;
use crate::spec::CampaignSpec;
use permea_core::matrix::PermeabilityMatrix;
use permea_core::topology::SystemTopology;
use serde::{Deserialize, Serialize};

/// A permeability estimate with its confidence interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairEstimate {
    /// Module name.
    pub module: String,
    /// Input-port signal name.
    pub input_signal: String,
    /// Output-port signal name.
    pub output_signal: String,
    /// Point estimate `n_err / n_inj`.
    pub estimate: f64,
    /// Wilson lower bound.
    pub lower: f64,
    /// Wilson upper bound.
    pub upper: f64,
    /// Number of injections.
    pub injections: u64,
}

impl PairEstimate {
    /// Half the interval width — the achieved precision an adaptive
    /// campaign compares against its
    /// [`crate::adaptive::AdaptivePlan::target_ci`].
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(lower, upper)`; both are probabilities. `z` is the standard
/// normal quantile (1.96 for 95 %). With `trials == 0` there is no data to
/// narrow anything, so the **vacuous interval `(0.0, 1.0)`** is returned —
/// every proportion is still possible; callers that need to distinguish
/// "no data" from "wide interval" must check the trial count themselves.
///
/// # Panics
///
/// Panics if `errors > trials` — such counts cannot come from a binomial
/// experiment and always indicate an accounting bug upstream (the executor
/// can never record more diverged runs than completed runs), so the
/// impossibility is surfaced loudly instead of being clamped into a
/// plausible-looking interval. Also panics if `z` is not finite/positive.
///
/// # Examples
///
/// ```
/// use permea_fi::estimate::wilson_interval;
/// let (lo, hi) = wilson_interval(500, 4000, 1.96);
/// assert!(lo < 0.125 && 0.125 < hi);
/// assert!(hi - lo < 0.025, "4000 trials give a tight interval");
/// assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0), "no data: vacuous");
/// ```
pub fn wilson_interval(errors: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(errors <= trials, "errors cannot exceed trials");
    assert!(z.is_finite() && z > 0.0, "z must be positive and finite");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    // At p = 0 the lower bound and at p = 1 the upper bound are exactly
    // 0 and 1 (the half-width cancels the centre offset); pin them so
    // rounding cannot leave them at 0.999… and break exact comparisons.
    let lower = if errors == 0 {
        0.0
    } else {
        (centre - half).max(0.0)
    };
    let upper = if errors == trials {
        1.0
    } else {
        (centre + half).min(1.0)
    };
    (lower, upper)
}

/// Builds a [`PermeabilityMatrix`] for `topology` from campaign results.
///
/// Pairs never targeted by the campaign stay at zero. Pair resolution is by
/// (module name, input-signal name, output-signal name), so the campaign's
/// simulation and the topology must use the same naming — guaranteed when
/// both derive from one spec.
///
/// # Errors
///
/// Returns [`FiError::UnknownModule`] / [`FiError::UnknownSignal`] if a
/// result row names entities missing from the topology.
pub fn estimate_matrix(
    topology: &SystemTopology,
    result: &CampaignResult,
) -> Result<PermeabilityMatrix, FiError> {
    let mut pm = PermeabilityMatrix::zeroed(topology);
    for pair in &result.pairs {
        pm.set_named(
            topology,
            &pair.module,
            &pair.input_signal,
            &pair.output_signal,
            pair.estimate(),
        )
        .map_err(|_| {
            FiError::UnknownModule(format!(
                "{}:{}→{}",
                pair.module, pair.input_signal, pair.output_signal
            ))
        })?;
    }
    Ok(pm)
}

/// Per-pair estimates with Wilson intervals (z = 1.96).
pub fn estimates_with_ci(result: &CampaignResult) -> Vec<PairEstimate> {
    result
        .pairs
        .iter()
        .map(|p| {
            let (lower, upper) = wilson_interval(p.errors, p.injections, 1.96);
            PairEstimate {
                module: p.module.clone(),
                input_signal: p.input_signal.clone(),
                output_signal: p.output_signal.clone(),
                estimate: p.estimate(),
                lower,
                upper,
                injections: p.injections,
            }
        })
        .collect()
}

/// Per-target precision and budget accounting: what the campaign achieved
/// and what the adaptive planner saved against the dense grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetSummary {
    /// Module name.
    pub module: String,
    /// Input-port signal name.
    pub input_signal: String,
    /// Runs executed for this target, including quarantined ones.
    pub runs: u64,
    /// Runs the dense grid would have spent
    /// ([`CampaignSpec::injections_per_target`]).
    pub dense_runs: u64,
    /// `dense_runs − runs` — what sequential early stopping saved.
    pub runs_saved: u64,
    /// Widest achieved Wilson half-width across the target's output pairs
    /// (`0.5` when every run was quarantined and no interval tightened).
    pub max_half_width: f64,
}

/// Per-target achieved-precision and runs-saved report, in spec target
/// order. Uses the adaptive plan's `z` when the spec carries one, 1.96
/// otherwise; for a dense campaign every `runs_saved` is zero, so the same
/// report doubles as the CI-width audit of a grid campaign.
pub fn target_summaries(spec: &CampaignSpec, result: &CampaignResult) -> Vec<TargetSummary> {
    let z = spec.adaptive.as_ref().map_or(1.96, |p| p.z);
    let dense_runs = spec.injections_per_target() as u64;
    spec.targets
        .iter()
        .enumerate()
        .map(|(ti, target)| {
            let runs = result.runs_per_target.get(ti).copied().unwrap_or(0);
            let max_half_width = result
                .pairs
                .iter()
                .filter(|p| p.module == target.module && p.input_signal == target.input_signal)
                .map(|p| {
                    let (lo, hi) = wilson_interval(p.errors, p.injections, z);
                    (hi - lo) / 2.0
                })
                .fold(0.0, f64::max);
            TargetSummary {
                module: target.module.clone(),
                input_signal: target.input_signal.clone(),
                runs,
                dense_runs,
                runs_saved: dense_runs.saturating_sub(runs),
                max_half_width,
            }
        })
        .collect()
}

/// Renders [`target_summaries`] as an aligned text table (one row per
/// target, totals row last) for the study's artifact directory.
pub fn render_target_summaries(summaries: &[TargetSummary]) -> String {
    let mut out =
        String::from("target                      runs    dense    saved   max CI half-width\n");
    let mut runs = 0u64;
    let mut dense = 0u64;
    for s in summaries {
        runs += s.runs;
        dense += s.dense_runs;
        out.push_str(&format!(
            "{:<24} {:>8} {:>8} {:>8}   {:.4}\n",
            format!("{}.{}", s.module, s.input_signal),
            s.runs,
            s.dense_runs,
            s.runs_saved,
            s.max_half_width,
        ));
    }
    let saved = dense.saturating_sub(runs);
    let pct = if dense > 0 {
        100.0 * saved as f64 / dense as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "{:<24} {runs:>8} {dense:>8} {saved:>8}   ({pct:.1}% of the dense grid saved)\n",
        "total"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::PairStat;
    use permea_core::topology::TopologyBuilder;

    fn topo() -> SystemTopology {
        let mut b = TopologyBuilder::new("t");
        let x = b.external("x");
        let m = b.add_module("M");
        b.bind_input(m, x);
        let y = b.add_output(m, "y");
        b.mark_system_output(y);
        b.build().unwrap()
    }

    fn result(errors: u64) -> CampaignResult {
        result_with(errors, 4000)
    }

    fn result_with(errors: u64, injections: u64) -> CampaignResult {
        CampaignResult {
            pairs: vec![PairStat {
                module: "M".into(),
                input_signal: "x".into(),
                output_signal: "y".into(),
                input: 0,
                output: 0,
                injections,
                errors,
            }],
            records: vec![],
            golden_ticks: vec![],
            total_runs: injections,
            runs_per_target: vec![injections],
            outcomes: crate::outcome::OutcomeTally::default(),
        }
    }

    #[test]
    fn matrix_from_results() {
        let t = topo();
        let pm = estimate_matrix(&t, &result(1000)).unwrap();
        let m = t.module_by_name("M").unwrap();
        assert_eq!(pm.get(m, 0, 0), 0.25);
    }

    #[test]
    fn unknown_names_rejected() {
        let t = topo();
        let mut r = result(0);
        r.pairs[0].module = "NOPE".into();
        assert!(estimate_matrix(&t, &r).is_err());
    }

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.95);
        assert!(hi > 0.999 && hi <= 1.0);
        let (lo, hi) = wilson_interval(0, 0, 1.96);
        assert_eq!((lo, hi), (0.0, 1.0));
    }

    #[test]
    fn wilson_shrinks_with_trials() {
        let (lo1, hi1) = wilson_interval(10, 40, 1.96);
        let (lo2, hi2) = wilson_interval(1000, 4000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn wilson_rejects_impossible_counts() {
        wilson_interval(5, 4, 1.96);
    }

    #[test]
    fn ci_rows_match_pairs() {
        let est = estimates_with_ci(&result(2000));
        assert_eq!(est.len(), 1);
        assert_eq!(est[0].estimate, 0.5);
        assert!(est[0].lower < 0.5 && 0.5 < est[0].upper);
        assert!((est[0].half_width() - (est[0].upper - est[0].lower) / 2.0).abs() < 1e-15);
    }

    #[test]
    fn zero_error_stratum_pins_lower_bound_to_zero() {
        let est = estimates_with_ci(&result(0));
        assert_eq!(est[0].estimate, 0.0);
        assert_eq!(est[0].lower, 0.0);
        assert!(est[0].upper > 0.0 && est[0].upper < 0.01);
    }

    #[test]
    fn all_error_stratum_pins_upper_bound_to_one() {
        let est = estimates_with_ci(&result(4000));
        assert_eq!(est[0].estimate, 1.0);
        assert_eq!(est[0].upper, 1.0);
        assert!(est[0].lower > 0.99 && est[0].lower < 1.0);
    }

    #[test]
    fn single_trial_stratum_keeps_a_wide_but_bracketing_interval() {
        for errors in [0u64, 1] {
            let est = estimates_with_ci(&result_with(errors, 1));
            let p = errors as f64;
            assert_eq!(est[0].estimate, p);
            assert!(est[0].lower <= p && p <= est[0].upper);
            // One trial proves next to nothing: the interval must stay wide.
            assert!(est[0].half_width() > 0.3, "n = 1 cannot be tight");
        }
        let (lo, hi) = wilson_interval(1, 1, 1.96);
        assert!(lo > 0.0 && hi == 1.0);
    }

    #[test]
    fn target_summaries_report_precision_and_savings() {
        let spec = CampaignSpec::paper_style(vec![crate::spec::PortTarget::new("M", "x")], 25);
        // Dense campaign: full budget spent, nothing saved.
        let dense = target_summaries(&spec, &result(1000));
        assert_eq!(dense.len(), 1);
        assert_eq!(dense[0].dense_runs, 4000);
        assert_eq!(dense[0].runs, 4000);
        assert_eq!(dense[0].runs_saved, 0);
        assert!(dense[0].max_half_width < 0.02);
        // Adaptive campaign that stopped the stratum after 400 runs.
        let mut adaptive_spec = spec.clone();
        adaptive_spec.adaptive = Some(crate::adaptive::AdaptivePlan::default());
        let early = target_summaries(&adaptive_spec, &result_with(100, 400));
        assert_eq!(early[0].runs, 400);
        assert_eq!(early[0].runs_saved, 3600);
        assert!(early[0].max_half_width > dense[0].max_half_width);
    }

    #[test]
    fn rendered_summaries_total_the_savings() {
        let mut spec = CampaignSpec::paper_style(vec![crate::spec::PortTarget::new("M", "x")], 25);
        spec.adaptive = Some(crate::adaptive::AdaptivePlan::default());
        let text = render_target_summaries(&target_summaries(&spec, &result_with(100, 400)));
        assert!(text.contains("M.x"), "{text}");
        assert!(text.contains("3600"), "{text}");
        assert!(text.contains("(90.0% of the dense grid saved)"), "{text}");
    }
}
