//! Turning campaign counts into a permeability matrix with confidence
//! bounds.
//!
//! The point estimate is the paper's `P̂_{i,k} = n_err / n_inj`. On top of
//! it this module provides Wilson score intervals — with 4 000 injections
//! per input the intervals are tight (±1.5 % at worst), which justifies the
//! paper's use of the point estimates as relative orderings.

use crate::error::FiError;
use crate::results::CampaignResult;
use permea_core::matrix::PermeabilityMatrix;
use permea_core::topology::SystemTopology;
use serde::{Deserialize, Serialize};

/// A permeability estimate with its confidence interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairEstimate {
    /// Module name.
    pub module: String,
    /// Input-port signal name.
    pub input_signal: String,
    /// Output-port signal name.
    pub output_signal: String,
    /// Point estimate `n_err / n_inj`.
    pub estimate: f64,
    /// Wilson lower bound.
    pub lower: f64,
    /// Wilson upper bound.
    pub upper: f64,
    /// Number of injections.
    pub injections: u64,
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(lower, upper)`; both are probabilities. `z` is the standard
/// normal quantile (1.96 for 95 %).
///
/// # Panics
///
/// Panics if `errors > trials` or `z` is not finite/positive.
///
/// # Examples
///
/// ```
/// use permea_fi::estimate::wilson_interval;
/// let (lo, hi) = wilson_interval(500, 4000, 1.96);
/// assert!(lo < 0.125 && 0.125 < hi);
/// assert!(hi - lo < 0.025, "4000 trials give a tight interval");
/// ```
pub fn wilson_interval(errors: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(errors <= trials, "errors cannot exceed trials");
    assert!(z.is_finite() && z > 0.0, "z must be positive and finite");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Builds a [`PermeabilityMatrix`] for `topology` from campaign results.
///
/// Pairs never targeted by the campaign stay at zero. Pair resolution is by
/// (module name, input-signal name, output-signal name), so the campaign's
/// simulation and the topology must use the same naming — guaranteed when
/// both derive from one spec.
///
/// # Errors
///
/// Returns [`FiError::UnknownModule`] / [`FiError::UnknownSignal`] if a
/// result row names entities missing from the topology.
pub fn estimate_matrix(
    topology: &SystemTopology,
    result: &CampaignResult,
) -> Result<PermeabilityMatrix, FiError> {
    let mut pm = PermeabilityMatrix::zeroed(topology);
    for pair in &result.pairs {
        pm.set_named(
            topology,
            &pair.module,
            &pair.input_signal,
            &pair.output_signal,
            pair.estimate(),
        )
        .map_err(|_| {
            FiError::UnknownModule(format!(
                "{}:{}→{}",
                pair.module, pair.input_signal, pair.output_signal
            ))
        })?;
    }
    Ok(pm)
}

/// Per-pair estimates with Wilson intervals (z = 1.96).
pub fn estimates_with_ci(result: &CampaignResult) -> Vec<PairEstimate> {
    result
        .pairs
        .iter()
        .map(|p| {
            let (lower, upper) = wilson_interval(p.errors, p.injections, 1.96);
            PairEstimate {
                module: p.module.clone(),
                input_signal: p.input_signal.clone(),
                output_signal: p.output_signal.clone(),
                estimate: p.estimate(),
                lower,
                upper,
                injections: p.injections,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::PairStat;
    use permea_core::topology::TopologyBuilder;

    fn topo() -> SystemTopology {
        let mut b = TopologyBuilder::new("t");
        let x = b.external("x");
        let m = b.add_module("M");
        b.bind_input(m, x);
        let y = b.add_output(m, "y");
        b.mark_system_output(y);
        b.build().unwrap()
    }

    fn result(errors: u64) -> CampaignResult {
        CampaignResult {
            pairs: vec![PairStat {
                module: "M".into(),
                input_signal: "x".into(),
                output_signal: "y".into(),
                input: 0,
                output: 0,
                injections: 4000,
                errors,
            }],
            records: vec![],
            golden_ticks: vec![],
            total_runs: 4000,
            outcomes: crate::outcome::OutcomeTally::default(),
        }
    }

    #[test]
    fn matrix_from_results() {
        let t = topo();
        let pm = estimate_matrix(&t, &result(1000)).unwrap();
        let m = t.module_by_name("M").unwrap();
        assert_eq!(pm.get(m, 0, 0), 0.25);
    }

    #[test]
    fn unknown_names_rejected() {
        let t = topo();
        let mut r = result(0);
        r.pairs[0].module = "NOPE".into();
        assert!(estimate_matrix(&t, &r).is_err());
    }

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.95);
        assert!(hi > 0.999 && hi <= 1.0);
        let (lo, hi) = wilson_interval(0, 0, 1.96);
        assert_eq!((lo, hi), (0.0, 1.0));
    }

    #[test]
    fn wilson_shrinks_with_trials() {
        let (lo1, hi1) = wilson_interval(10, 40, 1.96);
        let (lo2, hi2) = wilson_interval(1000, 4000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn wilson_rejects_impossible_counts() {
        wilson_interval(5, 4, 1.96);
    }

    #[test]
    fn ci_rows_match_pairs() {
        let est = estimates_with_ci(&result(2000));
        assert_eq!(est.len(), 1);
        assert_eq!(est[0].estimate, 0.5);
        assert!(est[0].lower < 0.5 && 0.5 < est[0].upper);
    }
}
