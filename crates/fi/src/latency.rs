//! Propagation-latency analysis: how long an injected error takes to reach
//! a module output.
//!
//! Latency matters for EDM design — a detector must fire before the error
//! leaves the module if recovery is to contain it. This module aggregates
//! per-run first-divergence records into per-pair latency distributions.

use crate::results::{CampaignResult, RunRecord};
use serde::{Deserialize, Serialize};

/// Latency distribution summary for one (module, input, output) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Module name.
    pub module: String,
    /// Input-port signal name.
    pub input_signal: String,
    /// Output port index.
    pub output: usize,
    /// Number of runs with an observed propagation.
    pub samples: u64,
    /// Minimum latency in ticks.
    pub min: u64,
    /// Median latency in ticks.
    pub median: u64,
    /// 95th-percentile latency in ticks.
    pub p95: u64,
    /// Maximum latency in ticks.
    pub max: u64,
    /// Mean latency in ticks.
    pub mean: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Computes latency summaries for every (targeted input, output) pair that
/// produced at least one propagation. Requires the campaign to have kept
/// records.
pub fn latency_summaries(result: &CampaignResult) -> Vec<LatencySummary> {
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<(String, String, usize), Vec<u64>> = BTreeMap::new();
    for r in &result.records {
        collect(r, &mut buckets);
    }
    buckets
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|((module, input_signal, output), mut lat)| {
            lat.sort_unstable();
            let samples = lat.len() as u64;
            let mean = lat.iter().sum::<u64>() as f64 / samples as f64;
            LatencySummary {
                module,
                input_signal,
                output,
                samples,
                min: lat[0],
                median: percentile(&lat, 0.5),
                p95: percentile(&lat, 0.95),
                max: *lat.last().expect("non-empty"),
                mean,
            }
        })
        .collect()
}

fn collect(
    r: &RunRecord,
    buckets: &mut std::collections::BTreeMap<(String, String, usize), Vec<u64>>,
) {
    for (output, div) in r.first_divergence.iter().enumerate() {
        let key = (r.module.clone(), r.input_signal.clone(), output);
        let bucket = buckets.entry(key).or_default();
        if let Some(tick) = div {
            bucket.push((*tick as u64).saturating_sub(r.time_ms));
        }
    }
}

/// Renders the latency table, slowest (by median) first.
pub fn render_latencies(summaries: &[LatencySummary]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Propagation latency from injection to first output divergence (ticks)"
    );
    let _ = writeln!(
        s,
        "{:<8} {:<12} {:>4} {:>7} {:>6} {:>7} {:>6} {:>7} {:>8}",
        "Module", "Input", "out", "samples", "min", "median", "p95", "max", "mean"
    );
    let mut rows = summaries.to_vec();
    rows.sort_by_key(|r| std::cmp::Reverse(r.median));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:<12} {:>4} {:>7} {:>6} {:>7} {:>6} {:>7} {:>8.1}",
            r.module,
            r.input_signal,
            r.output + 1,
            r.samples,
            r.min,
            r.median,
            r.p95,
            r.max,
            r.mean
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ErrorModel;

    fn record(time: u64, divs: Vec<Option<u32>>) -> RunRecord {
        RunRecord {
            module: "M".into(),
            input_signal: "in".into(),
            model: ErrorModel::BitFlip { bit: 0 },
            time_ms: time,
            case: 0,
            original_value: 0,
            corrupted_value: 1,
            first_divergence: divs,
            outcome: crate::outcome::RunOutcome::Completed,
        }
    }

    fn result(records: Vec<RunRecord>) -> CampaignResult {
        CampaignResult {
            pairs: vec![],
            records,
            golden_ticks: vec![],
            total_runs: 0,
            runs_per_target: vec![],
            outcomes: crate::outcome::OutcomeTally::default(),
        }
    }

    #[test]
    fn summaries_aggregate_latencies() {
        let res = result(vec![
            record(100, vec![Some(100), None]),
            record(100, vec![Some(110), None]),
            record(100, vec![Some(150), Some(130)]),
        ]);
        let s = latency_summaries(&res);
        assert_eq!(s.len(), 2);
        let out0 = s.iter().find(|x| x.output == 0).unwrap();
        assert_eq!(out0.samples, 3);
        assert_eq!(out0.min, 0);
        assert_eq!(out0.median, 10);
        assert_eq!(out0.max, 50);
        assert!((out0.mean - 20.0).abs() < 1e-12);
        let out1 = s.iter().find(|x| x.output == 1).unwrap();
        assert_eq!(out1.samples, 1);
        assert_eq!(out1.median, 30);
    }

    #[test]
    fn pairs_without_propagation_are_omitted() {
        let res = result(vec![record(100, vec![None, None])]);
        assert!(latency_summaries(&res).is_empty());
    }

    #[test]
    fn percentile_bounds() {
        let v = vec![1, 2, 3, 4, 100];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&v, 0.5), 3);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn render_orders_by_median() {
        let res = result(vec![
            record(0, vec![Some(5), Some(500)]),
            record(0, vec![Some(6), Some(600)]),
        ]);
        let s = latency_summaries(&res);
        let table = render_latencies(&s);
        let first_data = table.lines().nth(2).unwrap();
        assert!(
            first_data.contains(" 2 "),
            "slowest output (index 2, 1-based) first: {first_data}"
        );
    }
}
