//! Deterministic coordinate sharding for scale-out campaigns.
//!
//! A campaign expands to a flat coordinate space `0..total` (see
//! [`crate::spec::CampaignSpec`]); a [`Shard`] claims the deterministic
//! subset of that space whose *position* in the execution order is
//! congruent to the shard index modulo the shard count:
//!
//! * **dense grids** execute coordinates in ascending order, so shard
//!   `i/n` owns exactly `{k | k ≡ i (mod n)}`;
//! * **adaptive campaigns** execute each stratum's Fisher–Yates
//!   permutation, so shard `i/n` owns every permutation *position*
//!   `≡ i (mod n)` within each stratum — the permutation itself is a pure
//!   function of the master seed, so the partition is identical on every
//!   machine regardless of thread count.
//!
//! Shards are disjoint and cover the space, so the union of `n` shard
//! journals — combined with [`crate::journal::merge_journals`] — is
//! byte-identical to the journal of an unsharded single-threaded run.

use crate::error::FiError;

/// One slice of a campaign's coordinate space: shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Build a shard, validating `index < count` and `count >= 1`.
    pub fn new(index: usize, count: usize) -> Result<Self, FiError> {
        if count == 0 {
            return Err(FiError::InvalidShard {
                reason: "shard count must be at least 1".into(),
            });
        }
        if index >= count {
            return Err(FiError::InvalidShard {
                reason: format!("shard index {index} is out of range for {count} shards"),
            });
        }
        Ok(Shard { index, count })
    }

    /// Parse an `i/n` shard specification, e.g. `0/4`.
    ///
    /// Indices are zero-based: valid shards of a four-way split are
    /// `0/4`, `1/4`, `2/4` and `3/4`.
    pub fn parse(s: &str) -> Result<Self, FiError> {
        let bad = |detail: &str| FiError::InvalidShard {
            reason: format!("`{s}` is not a valid `i/n` shard spec ({detail})"),
        };
        let (i, n) = s.split_once('/').ok_or_else(|| bad("missing `/`"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| bad("index is not an unsigned integer"))?;
        let count: usize = n
            .trim()
            .parse()
            .map_err(|_| bad("count is not an unsigned integer"))?;
        Shard::new(index, count)
    }

    /// Zero-based index of this shard.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards in the partition.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Does this shard own execution-order position `pos`?
    pub fn owns(&self, pos: u64) -> bool {
        pos % self.count as u64 == self.index as u64
    }

    /// The positions this shard owns inside `0..total`, ascending.
    pub fn positions(&self, total: u64) -> impl Iterator<Item = u64> + '_ {
        (self.index as u64..total).step_by(self.count)
    }

    /// How many of the positions in `0..total` this shard owns.
    pub fn len(&self, total: u64) -> u64 {
        let count = self.count as u64;
        let index = self.index as u64;
        if index >= total {
            0
        } else {
            (total - index).div_ceil(count)
        }
    }

    /// True when this shard owns none of `0..total`.
    pub fn is_empty(&self, total: u64) -> bool {
        self.len(total) == 0
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_specs() {
        let s = Shard::parse("0/1").unwrap();
        assert_eq!((s.index(), s.count()), (0, 1));
        let s = Shard::parse("3/8").unwrap();
        assert_eq!((s.index(), s.count()), (3, 8));
        assert_eq!(s.to_string(), "3/8");
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["", "3", "a/b", "1/", "/2", "-1/2", "2/2", "5/3", "0/0"] {
            let err = Shard::parse(bad).unwrap_err();
            assert!(
                matches!(err, FiError::InvalidShard { .. }),
                "{bad}: {err:?}"
            );
        }
    }

    #[test]
    fn partition_is_disjoint_and_covering() {
        for count in 1..=5usize {
            let shards: Vec<Shard> = (0..count).map(|i| Shard::new(i, count).unwrap()).collect();
            for total in [0u64, 1, 7, 100] {
                let mut seen = vec![0u32; total as usize];
                for s in &shards {
                    let mut produced = 0;
                    for pos in s.positions(total) {
                        assert!(s.owns(pos));
                        seen[pos as usize] += 1;
                        produced += 1;
                    }
                    assert_eq!(produced, s.len(total), "len() disagrees with positions()");
                    assert_eq!(s.is_empty(total), produced == 0);
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "count={count} total={total}: positions not a partition"
                );
            }
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let s = Shard::new(0, 1).unwrap();
        assert_eq!(s.positions(5).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.len(5), 5);
    }
}
