//! The campaign executor: Golden Runs, injection runs, Golden Run
//! Comparison, parallel orchestration.
//!
//! For every workload case the executor records one [`GoldenRun`]. Every
//! injection run then replays the case for exactly the Golden Run's tick
//! count, installs one error at the configured instant — *after* the
//! environment refreshed the sensors for that tick, *before* any module
//! reads them — and afterwards compares each output trace of the targeted
//! module against the Golden Run. One error per run, as in the paper.
//!
//! # Fast-forward
//!
//! With [`CampaignConfig::fast_forward`] enabled (the default), the golden
//! run additionally captures a [`SimSnapshot`] at every injection instant
//! plus a periodic checkpoint cadence, collected in a [`GoldenBundle`].
//! Injection runs then
//!
//! * **fork**: restore the snapshot taken at the injection instant instead
//!   of replaying the prefix — the prefix is identical by determinism — and
//! * **early-exit**: once the injected state reconverges with a golden
//!   checkpoint (same tick, same signal values, caches and serialised
//!   module/environment state, no live corruption), the remainder of the
//!   run is provably identical to the golden run and is not simulated.
//!
//! Both shortcuts are exact: estimates, divergences and records are
//! bit-identical to the replay-from-zero path, which is kept (set
//! `fast_forward: false`) for differential testing.

use crate::adaptive::{AdaptivePlanner, StopReason};
use crate::chaos::ChaosInjector;
use crate::error::FiError;
use crate::golden::GoldenRun;
use crate::journal::{JournalHeader, RunJournal, DEFAULT_FSYNC_INTERVAL};
use crate::outcome::{classify_unwind, OutcomeTally, RunOutcome};
use crate::process::{backoff, Attempt, IsolationMode, ProcessIsolation, ToWorker, WorkerClient};
use crate::results::{CampaignResult, PairStat, RunRecord, RunStats};
use crate::shard::Shard;
use crate::spec::{CampaignSpec, InjectionScope};
use permea_obs::{Counter, Event, Histogram, Obs, Progress, StratumCi};
use permea_runtime::sim::{SimInstruments, SimSnapshot, Simulation};
use permea_runtime::time::SimTime;
use permea_runtime::tracing::TraceSet;
use permea_runtime::watchdog::WatchdogConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Spacing of the periodic golden checkpoints used for convergence
/// early-exit. Denser checkpoints detect reconvergence sooner at the cost
/// of snapshot memory and comparison work.
const CHECKPOINT_CADENCE_MS: u64 = 100;

/// Preflight floor: a journaled campaign refuses to start (with the typed
/// [`FiError::DiskSpaceLow`]) when the journal's filesystem has fewer free
/// bytes than this — it would almost certainly abort mid-run on ENOSPC.
pub const MIN_FREE_DISK_BYTES: u64 = 8 * 1024 * 1024;

/// Preflight warning threshold: below this much free space the campaign
/// still runs but emits a warning event.
pub const WARN_FREE_DISK_BYTES: u64 = 64 * 1024 * 1024;

/// Builds fresh simulations of the system under test, one per run.
///
/// Contract: `build(case)` must return a deterministic simulation with
/// tracing already enabled for every signal the comparison should monitor,
/// and identical module/signal naming across cases.
pub trait SystemFactory: Sync {
    /// Builds the simulation for workload case `case`.
    fn build(&self, case: usize) -> Simulation;

    /// Number of workload cases available.
    fn case_count(&self) -> usize;

    /// Upper bound on any scenario's natural length, in milliseconds.
    fn max_run_ms(&self) -> u64 {
        60_000
    }
}

/// Adapts a closure into a [`SystemFactory`].
///
/// # Examples
///
/// ```no_run
/// use permea_fi::campaign::{FnSystemFactory, SystemFactory};
/// # fn make_sim(_case: usize) -> permea_runtime::sim::Simulation { unimplemented!() }
/// let factory = FnSystemFactory::new(25, 60_000, make_sim);
/// assert_eq!(factory.case_count(), 25);
/// ```
pub struct FnSystemFactory<F> {
    cases: usize,
    max_run_ms: u64,
    build: F,
}

impl<F> FnSystemFactory<F>
where
    F: Fn(usize) -> Simulation + Sync,
{
    /// Wraps `build` with the given case count and run-length cap.
    pub fn new(cases: usize, max_run_ms: u64, build: F) -> Self {
        FnSystemFactory {
            cases,
            max_run_ms,
            build,
        }
    }
}

impl<F> SystemFactory for FnSystemFactory<F>
where
    F: Fn(usize) -> Simulation + Sync,
{
    fn build(&self, case: usize) -> Simulation {
        (self.build)(case)
    }
    fn case_count(&self) -> usize {
        self.cases
    }
    fn max_run_ms(&self) -> u64 {
        self.max_run_ms
    }
}

/// Execution options for a campaign.
///
/// Not `Eq` because `max_quarantined_fraction` is an `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Worker threads (0 ⇒ use available parallelism).
    pub threads: usize,
    /// Master seed from which every per-run RNG is derived.
    pub master_seed: u64,
    /// Keep a detailed [`RunRecord`] per injection run.
    pub keep_records: bool,
    /// Optional horizon: truncate every run (golden and injected) to this
    /// many milliseconds. The paper compares full traces; a horizon
    /// comfortably past the last injection (e.g. 15 000 ms for injections
    /// ending at 5 000 ms) gives the same divergence verdicts at a fraction
    /// of the cost and is used by the fast configurations.
    pub horizon_ms: Option<u64>,
    /// Fork injection runs from golden snapshots and early-exit once they
    /// reconverge with the golden run (see the module docs). Results are
    /// bit-identical either way; disable only for differential testing.
    pub fast_forward: bool,
    /// Watchdog budgets armed on every *injection* run (golden runs are
    /// never armed — an un-injected scenario that hangs is a
    /// [`FiError::GoldenRunDidNotTerminate`] bug, not data). `None`
    /// disables hang detection entirely.
    pub watchdog: Option<WatchdogConfig>,
    /// Largest tolerable fraction of quarantined (panicked or hung) runs.
    /// Individual quarantined runs are data — a brittle module meeting a
    /// corrupted value — but when more than this fraction of the whole
    /// campaign dies, the breakage is systematic and the permeability
    /// estimates would rest on a biased sample, so the campaign returns
    /// [`FiError::QuarantineThresholdExceeded`] instead of a result.
    pub max_quarantined_fraction: f64,
    /// Journal fsync batching: the run journal `fsync`s after every this
    /// many appended records (each append is still flushed to the OS
    /// immediately, so a process kill loses nothing either way). Must be
    /// greater than zero — validated by [`Campaign::run_resumable`], which
    /// returns [`FiError::InvalidFsyncInterval`] otherwise. Smaller values
    /// bound power-failure loss tighter at the cost of fsync latency per
    /// run (measured by the `process.journal_fsync_micros` histogram).
    pub journal_fsync_interval: usize,
    /// Where injection runs execute: in this process (the default) or in a
    /// supervised pool of worker processes that survives hard faults (see
    /// [`IsolationMode`]).
    pub isolation: IsolationMode,
    /// Under [`IsolationMode::Process`], how many times a coordinate whose
    /// worker *died* (crash or hard-deadline kill) is re-dispatched before
    /// the death is quarantined as its classified outcome. Retries separate
    /// transient infrastructure failures (an OOM kill under memory
    /// pressure) from deterministic faults; a death that reproduces with
    /// the identical classification on consecutive attempts is quarantined
    /// early without spending the remaining budget. Ignored in-process,
    /// where every run is deterministic by construction.
    pub max_retries: u32,
    /// Execute only this shard's deterministic slice of the campaign:
    /// positions of the dense enumeration (or of each adaptive stratum's
    /// sampling permutation) congruent to the shard index modulo the shard
    /// count. Shard journals share the unsharded campaign's header, so
    /// [`crate::journal::merge_journals`] combines them into one journal
    /// that is byte-identical to an unsharded single-threaded run's.
    pub shard: Option<Shard>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 0,
            master_seed: 0x5EED,
            keep_records: true,
            horizon_ms: None,
            fast_forward: true,
            watchdog: Some(WatchdogConfig::default()),
            max_quarantined_fraction: 0.25,
            journal_fsync_interval: DEFAULT_FSYNC_INTERVAL,
            isolation: IsolationMode::InProcess,
            max_retries: 2,
            shard: None,
        }
    }
}

/// A [`GoldenRun`] plus the snapshots that let injection runs fast-forward:
/// one at every injection instant (fork points) and one every
/// [`CHECKPOINT_CADENCE_MS`] (convergence checkpoints).
#[derive(Debug, Clone)]
pub struct GoldenBundle {
    /// The reference run.
    pub run: GoldenRun,
    snapshots: BTreeMap<u64, SimSnapshot>,
}

impl GoldenBundle {
    /// Wraps a golden run with no snapshots: every injection run replays
    /// from tick zero (the `fast_forward: false` path).
    pub fn bare(run: GoldenRun) -> Self {
        GoldenBundle {
            run,
            snapshots: BTreeMap::new(),
        }
    }

    /// The snapshot captured at the boundary of tick `time_ms`, if any.
    pub fn snapshot_at(&self, time_ms: u64) -> Option<&SimSnapshot> {
        self.snapshots.get(&time_ms)
    }

    /// Number of captured snapshots.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }
}

/// What [`Campaign::prepare`] yields: the resolved targets, the golden
/// bundles and the per-case golden tick counts.
pub(crate) type Prepared = (Vec<ResolvedTarget>, Vec<GoldenBundle>, Vec<u64>);

/// Resolved, immutable description of one target (probe-validated once).
#[derive(Debug, Clone)]
pub(crate) struct ResolvedTarget {
    module_name: String,
    input_signal: String,
    module_idx: permea_runtime::sim::ModuleIdx,
    input_port: usize,
    output_signals: Vec<String>,
}

/// What `run_one` yields per injection: the original and corrupted signal
/// values, the per-output first divergences, and the run's deterministic
/// execution statistics.
type RunOneOutput = (u16, u16, Vec<Option<u32>>, RunStats);

/// The outcome of one (possibly fast-forwarded) injection run: the trace
/// window actually simulated, covering ticks `[start_ms, start_ms + window
/// ticks)` of the run, and the injected values.
struct InjectedWindow {
    window: TraceSet,
    start_ms: u64,
    forked: bool,
    converged_ms: Option<u64>,
    original: u16,
    corrupted: u16,
}

impl InjectedWindow {
    /// First tick at which `signal` deviates from the golden run, across the
    /// *whole* run. Ticks before the window are identical by determinism
    /// (no injection happened yet) and ticks after it are identical by
    /// convergence, so comparing the window against the golden samples at
    /// `start_ms + i` is exact.
    fn window_divergence(&self, golden: &GoldenRun, signal: &str) -> Option<usize> {
        let g = golden.traces.trace(signal)?;
        let w = self.window.trace(signal)?;
        let start = self.start_ms as usize;
        debug_assert!(start + w.len() <= g.len(), "window overruns golden trace");
        let n = w.len().min(g.len().saturating_sub(start));
        permea_runtime::tracing::first_mismatch(&w[..n], &g[start..start + n]).map(|i| start + i)
    }
}

/// Telemetry instruments a campaign resolves once up front and bumps per
/// run. `campaign.*` names hold deterministic facts (identical between a
/// resumed and an uninterrupted execution); `process.*` names describe this
/// process's work. All handles are no-ops for a disabled [`Obs`].
struct Instruments {
    runs_total: Counter,
    runs_completed: Counter,
    runs_panicked: Counter,
    runs_hung: Counter,
    runs_crashed: Counter,
    ff_forked: Counter,
    ff_reconverged: Counter,
    run_ticks: Counter,
    ticks_saved: Counter,
    golden_runs: Counter,
    golden_ticks: Counter,
    snapshots: Counter,
    runs_executed: Counter,
    runs_recovered: Counter,
    run_micros: Histogram,
    worker_spawns: Counter,
    worker_respawns: Counter,
    worker_kills: Counter,
    run_retries: Counter,
    attempt_micros: Histogram,
    adaptive_batches: Counter,
    adaptive_strata_closed: Counter,
    adaptive_runs_saved: Counter,
}

impl Instruments {
    fn resolve(obs: &Obs) -> Self {
        Instruments {
            runs_total: obs.counter("campaign.runs_total"),
            runs_completed: obs.counter("campaign.runs_completed"),
            runs_panicked: obs.counter("campaign.runs_panicked"),
            runs_hung: obs.counter("campaign.runs_hung"),
            runs_crashed: obs.counter("campaign.runs_crashed"),
            ff_forked: obs.counter("campaign.ff_forked"),
            ff_reconverged: obs.counter("campaign.ff_reconverged"),
            run_ticks: obs.counter("campaign.run_ticks"),
            ticks_saved: obs.counter("campaign.ticks_saved"),
            golden_runs: obs.counter("campaign.golden_runs"),
            golden_ticks: obs.counter("campaign.golden_ticks"),
            snapshots: obs.counter("campaign.snapshots"),
            runs_executed: obs.counter("process.runs_executed"),
            runs_recovered: obs.counter("process.runs_recovered"),
            run_micros: obs.histogram("process.run_micros"),
            worker_spawns: obs.counter("process.worker_spawns"),
            worker_respawns: obs.counter("process.worker_respawns"),
            worker_kills: obs.counter("process.worker_kills"),
            run_retries: obs.counter("process.run_retries"),
            attempt_micros: obs.histogram("process.attempt_micros"),
            adaptive_batches: obs.counter("adaptive.batches"),
            adaptive_strata_closed: obs.counter("adaptive.strata_closed"),
            adaptive_runs_saved: obs.counter("adaptive.runs_saved"),
        }
    }

    /// Accounts one finished run — executed just now or recovered from the
    /// journal — into the deterministic `campaign.*` totals. `golden_ticks`
    /// is the golden-run length of the run's case, needed to credit the
    /// tail skipped by a reconvergence exit.
    fn account(&self, record: &RunRecord, stats: &RunStats, golden_ticks: u64) {
        self.runs_total.inc();
        match &record.outcome {
            RunOutcome::Completed => self.runs_completed.inc(),
            RunOutcome::Panicked { .. } => self.runs_panicked.inc(),
            RunOutcome::Hung { .. } => self.runs_hung.inc(),
            RunOutcome::Crashed { .. } => self.runs_crashed.inc(),
        }
        self.run_ticks.add(stats.sim_ticks);
        if stats.forked {
            self.ff_forked.inc();
            self.ticks_saved.add(record.time_ms);
        }
        if let Some(converged) = stats.converged_ms {
            self.ff_reconverged.inc();
            self.ticks_saved.add(golden_ticks.saturating_sub(converged));
        }
    }
}

/// Shared planner state of an adaptive campaign: the current batch's
/// still-unclaimed coordinates, the number in flight, and every coordinate
/// sampled so far. Guarded by one mutex so batch planning is a barrier —
/// round *r + 1* is only ever computed from the complete records of rounds
/// *1..=r*, which is what keeps adaptive campaigns independent of executor
/// thread count.
struct AdaptiveState {
    planner: AdaptivePlanner,
    /// Unclaimed coordinates of the current batch, served from the back.
    pending: Vec<usize>,
    /// Claimed-but-uncommitted coordinates of the current batch.
    outstanding: usize,
    /// The planner returned an empty batch: the campaign is complete.
    finished: bool,
    /// Every coordinate the planner has issued, in issue order.
    sampled: Vec<u64>,
    /// Per-target flag: a [`permea_obs::Event::StratumClosed`] event was
    /// already emitted for this stratum (closes are detected at batch
    /// barriers, so without the flag every later barrier would repeat
    /// them).
    closed_reported: Vec<bool>,
}

/// Where worker threads claim coordinates from: the dense grid cursor, or
/// the adaptive planner with its batch condvar.
enum WorkSource {
    Dense(AtomicUsize),
    Adaptive(Box<Mutex<AdaptiveState>>, Condvar),
}

/// A ready-to-run campaign binding a factory to a configuration.
pub struct Campaign<'f> {
    factory: &'f dyn SystemFactory,
    config: CampaignConfig,
    obs: Obs,
    chaos: Option<Arc<ChaosInjector>>,
}

impl<'f> Campaign<'f> {
    /// Creates a campaign with telemetry disabled.
    pub fn new(factory: &'f dyn SystemFactory, config: CampaignConfig) -> Self {
        Campaign {
            factory,
            config,
            obs: Obs::disabled(),
            chaos: None,
        }
    }

    /// Attaches a telemetry handle: campaign phases, per-run counters and
    /// progress events flow through it. With the default disabled handle
    /// every instrument is a branch-and-skip no-op.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a [`crate::chaos`] injector: its fault plan is replayed
    /// against this campaign's journal, worker pool and preflight checks.
    /// Production campaigns never call this; without an injector every
    /// chaos hook is a single `Option` branch.
    pub fn with_chaos(mut self, chaos: Arc<ChaosInjector>) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The telemetry handle in use.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The effective run-length cap: the horizon, clipped to the factory's
    /// cap.
    fn cap_ms(&self) -> u64 {
        self.config
            .horizon_ms
            .map_or(self.factory.max_run_ms(), |h| {
                h.min(self.factory.max_run_ms())
            })
    }

    /// Checks that a golden run ending in the given state is acceptable:
    /// a natural finish always is; a truncated run is only acceptable when
    /// the configured horizon itself (not the factory cap) cut it.
    fn check_termination(&self, finished: bool, case: usize) -> Result<(), FiError> {
        if finished {
            return Ok(());
        }
        match self.config.horizon_ms {
            None => Err(FiError::GoldenRunDidNotTerminate { case }),
            Some(h) if h > self.factory.max_run_ms() => Err(FiError::HorizonExceedsCap {
                horizon_ms: h,
                max_run_ms: self.factory.max_run_ms(),
            }),
            Some(_) => Ok(()),
        }
    }

    /// Records the Golden Run for one case.
    ///
    /// # Errors
    ///
    /// [`FiError::GoldenRunDidNotTerminate`] if the scenario neither
    /// finishes nor hits the configured horizon within the factory's cap;
    /// [`FiError::HorizonExceedsCap`] if the horizon lies beyond the cap and
    /// the run would have been silently truncated at the cap;
    /// [`FiError::TracingDisabled`] if the factory built the simulation
    /// without tracing.
    pub fn golden(&self, case: usize) -> Result<GoldenRun, FiError> {
        let mut sim = self.factory.build(case);
        sim.run_until(SimTime::from_millis(self.cap_ms()));
        self.check_termination(sim.finished(), case)?;
        let ticks = sim.now().as_millis();
        let traces = sim.take_traces().ok_or(FiError::TracingDisabled { case })?;
        Ok(GoldenRun {
            case,
            ticks,
            traces,
        })
    }

    /// Records Golden Runs for all cases of a spec.
    ///
    /// # Errors
    ///
    /// Propagates the first golden-run failure.
    pub fn goldens(&self, cases: usize) -> Result<Vec<GoldenRun>, FiError> {
        (0..cases).map(|c| self.golden(c)).collect()
    }

    /// Records the Golden Run for one case together with the fast-forward
    /// snapshots: one at each of `instants` (fork points, normally the
    /// spec's injection instants) and one every [`CHECKPOINT_CADENCE_MS`]
    /// (convergence checkpoints). With `fast_forward` disabled this is just
    /// [`Campaign::golden`] wrapped snapshot-free.
    ///
    /// # Errors
    ///
    /// As for [`Campaign::golden`].
    pub fn golden_bundle(&self, case: usize, instants: &[u64]) -> Result<GoldenBundle, FiError> {
        if !self.config.fast_forward {
            return Ok(GoldenBundle::bare(self.golden(case)?));
        }
        let cap = self.cap_ms();
        let mut wanted: BTreeSet<u64> = instants.iter().copied().filter(|&t| t < cap).collect();
        let mut t = CHECKPOINT_CADENCE_MS;
        while t < cap {
            wanted.insert(t);
            t += CHECKPOINT_CADENCE_MS;
        }

        let mut sim = self.factory.build(case);
        let mut snapshots = BTreeMap::new();
        while sim.now() < SimTime::from_millis(cap) && !sim.finished() {
            let now = sim.now().as_millis();
            if wanted.contains(&now) {
                snapshots.insert(now, sim.snapshot());
            }
            sim.step();
        }
        self.check_termination(sim.finished(), case)?;
        let ticks = sim.now().as_millis();
        // Checkpoints at or beyond the end are useless (runs stop there).
        snapshots.retain(|&t, _| t < ticks);
        let traces = sim.take_traces().ok_or(FiError::TracingDisabled { case })?;
        Ok(GoldenBundle {
            run: GoldenRun {
                case,
                ticks,
                traces,
            },
            snapshots,
        })
    }

    /// Records golden bundles for every case of `spec`, with fork points at
    /// the spec's injection instants.
    ///
    /// # Errors
    ///
    /// Propagates the first golden-run failure.
    pub fn golden_bundles(&self, spec: &CampaignSpec) -> Result<Vec<GoldenBundle>, FiError> {
        (0..spec.cases)
            .map(|c| self.golden_bundle(c, &spec.times_ms))
            .collect()
    }

    /// Validates every target of `spec` against a probe simulation.
    fn resolve_targets(&self, spec: &CampaignSpec) -> Result<Vec<ResolvedTarget>, FiError> {
        let probe = self.factory.build(0);
        spec.targets
            .iter()
            .map(|t| {
                let module_idx = probe
                    .module_by_name(&t.module)
                    .ok_or_else(|| FiError::UnknownModule(t.module.clone()))?;
                let (module_idx, input_port) = probe
                    .find_input_port(&t.module, &t.input_signal)
                    .ok_or_else(|| FiError::UnknownInputPort {
                        module: t.module.clone(),
                        signal: t.input_signal.clone(),
                    })
                    .map(|(m, p)| {
                        debug_assert_eq!(m, module_idx);
                        (m, p)
                    })?;
                let output_signals = probe
                    .module_outputs(module_idx)
                    .iter()
                    .map(|&s| probe.bus().name(s).to_owned())
                    .collect();
                Ok(ResolvedTarget {
                    module_name: t.module.clone(),
                    input_signal: t.input_signal.clone(),
                    module_idx,
                    input_port,
                    output_signals,
                })
            })
            .collect()
    }

    /// The shared core of every injection run. Forks from the golden
    /// snapshot at `time_ms` when the bundle has one (otherwise replays
    /// from tick zero), injects, and stops early once the run reconverges
    /// with a golden checkpoint. Returns the recorded trace window — ticks
    /// `[start_ms, end_ms)` of the run — plus the injected values.
    ///
    /// The configured watchdog is armed on the simulation, so this call may
    /// unwind with a [`permea_runtime::watchdog::StalledClock`] payload when
    /// the injected error stalls the simulated clock; the campaign loop
    /// catches and classifies that.
    #[allow(clippy::too_many_arguments)] // one coordinate axis per parameter
    fn run_injected(
        &self,
        target: &ResolvedTarget,
        scope: InjectionScope,
        model: crate::model::ErrorModel,
        time_ms: u64,
        golden: &GoldenBundle,
        seed: u64,
        arena: &mut Option<TraceSet>,
    ) -> Result<InjectedWindow, FiError> {
        let mut sim = self.factory.build(golden.run.case);
        if let Some(spare) = arena.take() {
            // Recycle the previous run's sample arena instead of letting the
            // freshly built simulation record into new allocations.
            sim.reuse_trace_arena(spare);
        }
        if self.obs.enabled() {
            // Before `arm_watchdog`, which clones the trip counter into the
            // armed watchdog.
            sim.set_instruments(SimInstruments {
                ticks: self.obs.counter("process.sim_ticks"),
                module_steps: self.obs.counter("process.module_steps"),
                watchdog_trips: self.obs.counter("process.watchdog_trips"),
            });
        }
        if let Some(wd) = self.config.watchdog {
            sim.arm_watchdog(wd);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut original = 0u16;
        let mut corrupted = 0u16;
        let (start_ms, forked) = match golden.snapshot_at(time_ms) {
            Some(snap) => {
                sim.restore(snap);
                (time_ms, true)
            }
            None => (0, false),
        };
        // One-shot models fire exactly at `time_ms`; an intermittent model
        // re-fires on its schedule, and convergence early-exit must wait
        // until the last fire — the run cannot have durably reconverged
        // while the error source is still live.
        let last_fire_ms = model.last_instant(time_ms);
        let mut converged_ms = None;
        while sim.now().as_millis() < golden.run.ticks {
            let now = sim.now().as_millis();
            if now > last_fire_ms {
                if let Some(cp) = golden.snapshot_at(now) {
                    if sim.converged_with(cp) {
                        converged_ms = Some(now);
                        break;
                    }
                }
            }
            sim.begin_tick();
            if model.fires_at(time_ms, now) {
                let seen = sim.peek_module_input(target.module_idx, target.input_port);
                let value = model.apply(seen, &mut rng);
                if now == time_ms {
                    // The record carries the first fire's (original,
                    // corrupted) pair; re-fires corrupt whatever the port
                    // holds by then.
                    original = seen;
                    corrupted = value;
                }
                match scope {
                    InjectionScope::Port => {
                        sim.corrupt_module_input(target.module_idx, target.input_port, value);
                    }
                    InjectionScope::Signal => {
                        let sig = sim.module_inputs(target.module_idx)[target.input_port];
                        sim.bus_mut().corrupt_signal(sig, value);
                    }
                }
            }
            sim.run_modules();
        }
        let window = sim.take_traces().ok_or(FiError::TracingDisabled {
            case: golden.run.case,
        })?;
        Ok(InjectedWindow {
            window,
            start_ms,
            forked,
            converged_ms,
            original,
            corrupted,
        })
    }

    /// Executes one injection run and returns the per-output first
    /// divergences plus the run's deterministic execution statistics.
    #[allow(clippy::too_many_arguments)] // one coordinate axis per parameter
    fn run_one(
        &self,
        spec: &CampaignSpec,
        target: &ResolvedTarget,
        model: crate::model::ErrorModel,
        time_ms: u64,
        golden: &GoldenBundle,
        seed: u64,
        arena: &mut Option<TraceSet>,
    ) -> Result<RunOneOutput, FiError> {
        let run = self.run_injected(target, spec.scope, model, time_ms, golden, seed, arena)?;
        let divergences = target
            .output_signals
            .iter()
            .map(|name| run.window_divergence(&golden.run, name).map(|t| t as u32))
            .collect();
        let stats = RunStats {
            sim_ticks: run.window.ticks() as u64,
            forked: run.forked,
            converged_ms: run.converged_ms,
        };
        // Hand the window's storage back for the next run.
        *arena = Some(run.window);
        Ok((run.original, run.corrupted, divergences, stats))
    }

    /// Runs a single injection and returns the **full trace set** of the
    /// injected run alongside the (original, corrupted) values — the hook
    /// used by detector-placement studies that need to replay assertions
    /// over injected traces.
    ///
    /// When the run was fast-forwarded, the full trace is reassembled from
    /// the golden prefix (identical by determinism), the recorded window,
    /// and the golden tail (identical by convergence).
    ///
    /// # Errors
    ///
    /// Returns target-resolution errors and [`FiError::TracingDisabled`].
    pub fn run_traced(
        &self,
        target: &crate::spec::PortTarget,
        scope: InjectionScope,
        model: crate::model::ErrorModel,
        time_ms: u64,
        golden: &GoldenBundle,
        seed: u64,
    ) -> Result<(TraceSet, u16, u16), FiError> {
        let spec = CampaignSpec {
            targets: vec![target.clone()],
            models: vec![model],
            times_ms: vec![time_ms],
            cases: golden.run.case + 1,
            scope,
            adaptive: None,
        };
        let resolved = self.resolve_targets(&spec)?;
        let run =
            self.run_injected(&resolved[0], scope, model, time_ms, golden, seed, &mut None)?;
        let start = run.start_ms as usize;
        let traces = if start == 0 && run.converged_ms.is_none() {
            run.window
        } else {
            let mut full = golden.run.traces.truncated(start);
            full.extend_from_window(&run.window, 0, run.window.ticks());
            if let Some(conv) = run.converged_ms {
                full.extend_from_window(
                    &golden.run.traces,
                    conv as usize,
                    golden.run.ticks as usize,
                );
            }
            full
        };
        Ok((traces, run.original, run.corrupted))
    }

    /// The journal header identifying this campaign: the spec plus the
    /// seed and horizon of this configuration. This is what
    /// [`RunJournal::open_or_create`] verifies before resuming.
    pub fn journal_header(&self, spec: &CampaignSpec) -> JournalHeader {
        JournalHeader::new(spec, self.config.master_seed, self.config.horizon_ms)
    }

    /// Validates the spec, resolves its targets and records the golden
    /// bundles — the deterministic preamble both an in-process campaign and
    /// a worker process perform before any injection run. Returns the
    /// resolved targets, the golden bundles and the per-case golden tick
    /// counts.
    ///
    /// # Errors
    ///
    /// As for [`Campaign::run`]'s validation phase.
    pub(crate) fn prepare(&self, spec: &CampaignSpec) -> Result<Prepared, FiError> {
        spec.validate()?;
        let targets = self.resolve_targets(spec)?;
        let goldens = self.golden_bundles(spec)?;
        let golden_ticks: Vec<u64> = goldens.iter().map(|g| g.run.ticks).collect();
        spec.validate_instants(self.config.horizon_ms, &golden_ticks)?;
        Ok((targets, goldens, golden_ticks))
    }

    /// Executes coordinate `k` under the in-process sandbox
    /// (`catch_unwind` + cooperative watchdog) and returns its record: a
    /// completed comparison, or a quarantined `Panicked`/`Hung` outcome.
    /// The per-run seed derives from `k` and the master seed alone, which
    /// is what makes the record identical no matter which process (or
    /// attempt) executes it.
    ///
    /// # Errors
    ///
    /// Returns infrastructure failures (e.g. [`FiError::TracingDisabled`])
    /// — never run deaths, which unwind into the quarantined record.
    pub(crate) fn execute_sandboxed(
        &self,
        spec: &CampaignSpec,
        targets: &[ResolvedTarget],
        goldens: &[GoldenBundle],
        k: usize,
        arena: &mut Option<TraceSet>,
    ) -> Result<(RunRecord, RunStats), FiError> {
        let (ti, mi, wi, ci) = spec.coordinate(k);
        let target = &targets[ti];
        let model = spec.models[mi];
        let time_ms = spec.times_ms[wi];
        let seed = self.config.master_seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Sandbox the run: a panicking or hanging simulation is quarantined
        // as a classified outcome, not a dead campaign.
        let sandboxed = catch_unwind(AssertUnwindSafe(|| {
            self.run_one(spec, target, model, time_ms, &goldens[ci], seed, arena)
        }));
        match sandboxed {
            Ok(Ok((original, corrupted, divergences, stats))) => Ok((
                RunRecord {
                    module: target.module_name.clone(),
                    input_signal: target.input_signal.clone(),
                    model,
                    time_ms,
                    case: ci,
                    original_value: original,
                    corrupted_value: corrupted,
                    first_divergence: divergences,
                    outcome: RunOutcome::Completed,
                },
                stats,
            )),
            Ok(Err(e)) => Err(e),
            Err(payload) => Ok((
                RunRecord {
                    module: target.module_name.clone(),
                    input_signal: target.input_signal.clone(),
                    model,
                    time_ms,
                    case: ci,
                    original_value: 0,
                    corrupted_value: 0,
                    first_divergence: Vec::new(),
                    outcome: classify_unwind(payload),
                },
                // The window is lost to the unwind; whether the run forked
                // is still deterministic from the bundle.
                RunStats {
                    sim_ticks: 0,
                    forked: goldens[ci].snapshot_at(time_ms).is_some(),
                    converged_ms: None,
                },
            )),
        }
    }

    /// The quarantined record for a coordinate whose worker *process* died:
    /// the supervisor never saw a window, so values and divergences are
    /// zeroed and the stats are empty — deterministically, so journals and
    /// resumed campaigns agree.
    fn death_record(
        &self,
        spec: &CampaignSpec,
        targets: &[ResolvedTarget],
        k: usize,
        outcome: RunOutcome,
    ) -> (RunRecord, RunStats) {
        let (ti, mi, wi, ci) = spec.coordinate(k);
        (
            RunRecord {
                module: targets[ti].module_name.clone(),
                input_signal: targets[ti].input_signal.clone(),
                model: spec.models[mi],
                time_ms: spec.times_ms[wi],
                case: ci,
                original_value: 0,
                corrupted_value: 0,
                first_divergence: Vec::new(),
                outcome,
            },
            RunStats {
                sim_ticks: 0,
                forked: false,
                converged_ms: None,
            },
        )
    }

    /// Runs the full campaign.
    ///
    /// Equivalent to [`Campaign::run_resumable`] with no journal and no
    /// cancellation flag.
    ///
    /// # Errors
    ///
    /// Fails fast on spec validation (including injection instants no run
    /// can reach), target resolution or golden-run problems;
    /// [`FiError::TracingDisabled`] when the factory builds untraced
    /// simulations; [`FiError::QuarantineThresholdExceeded`] when more than
    /// [`CampaignConfig::max_quarantined_fraction`] of the runs panicked or
    /// hung; [`FiError::WorkerPanicked`] only if campaign *infrastructure*
    /// (not a simulated run) dies.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignResult, FiError> {
        self.run_resumable(spec, None, None)
    }

    /// Runs the campaign with optional durability and cancellation.
    ///
    /// Every injection run executes under `catch_unwind`: a panicking or
    /// hanging run is *quarantined* — recorded with its classified
    /// [`RunOutcome`] and excluded from the estimates — and the campaign
    /// carries on.
    ///
    /// With a `journal`, every finished run is appended as write-ahead
    /// state, runs already present in the journal are **not** re-executed,
    /// and the final result is assembled from the union. Because per-run
    /// seeds derive from the coordinate index alone, a resumed campaign is
    /// byte-identical to an uninterrupted one. The caller must have opened
    /// the journal against [`Campaign::journal_header`] so stale journals
    /// are rejected up front.
    ///
    /// With a `cancel` flag, workers stop claiming new runs once the flag
    /// is raised; finished runs are synced to the journal and the campaign
    /// returns [`FiError::Interrupted`].
    ///
    /// # Errors
    ///
    /// As for [`Campaign::run`], plus [`FiError::Interrupted`] on
    /// cancellation and [`FiError::Journal`] on journal I/O failures.
    pub fn run_resumable(
        &self,
        spec: &CampaignSpec,
        journal: Option<&mut RunJournal>,
        cancel: Option<&AtomicBool>,
    ) -> Result<CampaignResult, FiError> {
        self.run_resumable_budgeted(spec, journal, cancel, None)
    }

    /// [`Campaign::run_resumable`] with a cooperative work budget: at most
    /// `max_new_runs` coordinates are *issued* this invocation (journal
    /// replays and golden runs are free), after which the campaign stops
    /// exactly as if cancelled — in-flight runs commit, the journal syncs,
    /// and [`FiError::Interrupted`] is returned. Because resume replays
    /// the journal, slicing a campaign into any sequence of budgeted
    /// invocations yields a final result byte-identical to one
    /// uninterrupted run; this is what lets a multiplexing scheduler
    /// time-share one executor across concurrent campaigns.
    ///
    /// `max_new_runs == None` is unlimited (identical to
    /// [`Campaign::run_resumable`]).
    ///
    /// # Errors
    ///
    /// As for [`Campaign::run_resumable`]; budget exhaustion before
    /// completion surfaces as [`FiError::Interrupted`].
    pub fn run_resumable_budgeted(
        &self,
        spec: &CampaignSpec,
        journal: Option<&mut RunJournal>,
        cancel: Option<&AtomicBool>,
        max_new_runs: Option<u64>,
    ) -> Result<CampaignResult, FiError> {
        if self.config.journal_fsync_interval == 0 {
            return Err(FiError::InvalidFsyncInterval);
        }
        let obs = &self.obs;
        let ins = Instruments::resolve(obs);
        let _campaign_span = obs.span("campaign");
        let campaign_started = Instant::now();
        // Campaign-relative monotonic clock stamped into every timeline
        // event (`Progress::elapsed_micros`, adaptive snapshots, run
        // incidents). Deliberately *not* `obs.now_micros()`: the telemetry
        // epoch starts at handle creation and would fold per-process setup
        // time into the timeline, and each session of a resumed campaign
        // must restart this clock at zero so consumers can stitch sessions
        // contiguously.
        let campaign_elapsed = move || campaign_started.elapsed().as_micros() as u64;
        // Quarantined outcomes and worker-death retries land on the event
        // timeline as run incidents; completed runs stay off it so the
        // event rate tracks trouble, not campaign size.
        let emit_incident = |k: u64, kind: &str, detail: &str| {
            if obs.enabled() {
                obs.emit(&Event::RunIncident {
                    k,
                    kind,
                    detail,
                    elapsed_micros: campaign_elapsed(),
                });
            }
        };

        let process_cfg = match &self.config.isolation {
            IsolationMode::Process(p) => Some(p),
            IsolationMode::InProcess => None,
        };

        spec.validate()?;
        let targets = self.resolve_targets(spec)?;
        let goldens = {
            let _golden_span = obs.span("golden");
            if process_cfg.is_some() {
                // Workers record their own snapshot-bearing bundles; the
                // supervisor needs golden lengths only for validation,
                // accounting and the circuit-breaker fallback, so it skips
                // the snapshot capture.
                self.goldens(spec.cases)?
                    .into_iter()
                    .map(GoldenBundle::bare)
                    .collect::<Vec<_>>()
            } else {
                self.golden_bundles(spec)?
            }
        };
        let golden_ticks: Vec<u64> = goldens.iter().map(|g| g.run.ticks).collect();
        spec.validate_instants(self.config.horizon_ms, &golden_ticks)?;
        ins.golden_runs.add(goldens.len() as u64);
        ins.golden_ticks.add(golden_ticks.iter().sum());
        ins.snapshots
            .add(goldens.iter().map(|g| g.snapshot_count() as u64).sum());

        let run_count = spec.run_count();
        let shard = self.config.shard;
        // Maps the dense cursor's position `j` to the coordinate this shard
        // executes: the j-th owned position of the ascending enumeration.
        // With no shard this is the identity.
        let dense_coord = move |j: usize| {
            let (index, count) = shard.map_or((0, 1), |s| (s.index(), s.count()));
            let k = index + j * count;
            (k < run_count).then_some(k)
        };
        let configured_threads = process_cfg.map_or(self.config.threads, |p| p.workers);
        let threads = if configured_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            configured_threads
        };

        // Runs already journaled by an earlier (interrupted) execution; the
        // journal header was verified against this campaign on open, so the
        // coordinate indices are directly comparable.
        let done: HashMap<u64, (RunRecord, RunStats)> = journal
            .as_ref()
            .map(|j| j.entries().clone())
            .unwrap_or_default();
        debug_assert!(done.keys().all(|&k| (k as usize) < run_count));
        let adaptive_mode = spec.adaptive.is_some();
        // What "all done" means for the progress display: a dense shard owns
        // only its slice of the grid; adaptive campaigns report against the
        // dense total (an upper bound the planner usually undercuts).
        let progress_total = if adaptive_mode {
            run_count as u64
        } else {
            shard.map_or(run_count as u64, |s| s.len(run_count as u64))
        };
        // Recovered runs merge into the deterministic totals exactly as if
        // they had been executed here — that is what makes a resumed
        // campaign's `campaign.*` metrics equal an uninterrupted one's.
        // Under an adaptive plan a journaled run only counts once the
        // planner re-issues its coordinate, so accounting happens at replay
        // time in `claim` instead.
        if !adaptive_mode {
            ins.runs_recovered.add(done.len() as u64);
            for (record, stats) in done.values() {
                ins.account(record, stats, golden_ticks[record.case]);
            }
        }
        // Preflight: refuse to start a journaled campaign on a filesystem
        // that is about to run out of space — aborting up front with a
        // typed error beats dying mid-run on ENOSPC. An unknown reading
        // (exotic platform, statvfs failure) proceeds as before.
        if let Some(j) = &journal {
            let free = self
                .chaos
                .as_ref()
                .and_then(|c| c.free_disk_override())
                .or_else(|| crate::env::free_disk_bytes(j.path()));
            if let Some(free) = free {
                if free < MIN_FREE_DISK_BYTES {
                    return Err(FiError::DiskSpaceLow {
                        free_bytes: free,
                        needed_bytes: MIN_FREE_DISK_BYTES,
                    });
                }
                if free < WARN_FREE_DISK_BYTES {
                    obs.warn(format!(
                        "journal filesystem has only {free} bytes free (warning \
                         threshold {WARN_FREE_DISK_BYTES}); the campaign may abort on ENOSPC"
                    ));
                }
            }
        }
        let journal = journal.map(|j| {
            j.set_fsync_interval(self.config.journal_fsync_interval);
            j.attach_obs(obs);
            if let Some(chaos) = &self.chaos {
                j.set_chaos(chaos.clone());
            }
            Mutex::new(j)
        });

        // Progress bookkeeping, only ever touched when telemetry is enabled.
        // Adaptive replays count journaled runs as they are re-issued.
        let recovered = done.len() as u64;
        let progress_done = AtomicU64::new(if adaptive_mode { 0 } else { recovered });
        let progress_quarantined = AtomicU64::new(if adaptive_mode {
            0
        } else {
            done.values()
                .filter(|(r, _)| !r.outcome.is_completed())
                .count() as u64
        });
        let progress_forked = AtomicU64::new(0);
        let progress_executed = AtomicU64::new(0);

        // Shared work source over coordinate indices: the dense cursor, or
        // the adaptive planner seeded so its decisions replay on resume.
        let source = match &spec.adaptive {
            Some(_) => {
                let outputs: Vec<usize> = targets.iter().map(|t| t.output_signals.len()).collect();
                WorkSource::Adaptive(
                    Box::new(Mutex::new(AdaptiveState {
                        planner: AdaptivePlanner::new(
                            spec,
                            &outputs,
                            self.config.master_seed,
                            shard,
                        )?,
                        pending: Vec::new(),
                        outstanding: 0,
                        finished: false,
                        sampled: Vec::new(),
                        closed_reported: vec![false; targets.len()],
                    })),
                    Condvar::new(),
                )
            }
            None => WorkSource::Dense(AtomicUsize::new(0)),
        };
        let executed: Mutex<Vec<(u64, RunRecord)>> = Mutex::new(Vec::new());
        // First infrastructure failure (journal I/O, poisoned lock, ...);
        // quarantined runs never land here.
        let fail: Mutex<Option<FiError>> = Mutex::new(None);
        let set_fail = |e: FiError| {
            if let Ok(mut slot) = fail.lock() {
                slot.get_or_insert(e);
            }
        };

        // Work budget: decremented only when a coordinate is actually
        // issued (journal replays are free). Exhaustion raises a flag that
        // every stop check treats exactly like cancellation, so in-flight
        // runs still commit and the journal still syncs.
        let budget: Option<AtomicI64> =
            max_new_runs.map(|n| AtomicI64::new(n.min(i64::MAX as u64) as i64));
        let budget_exhausted = AtomicBool::new(false);
        let take_budget = || match &budget {
            None => true,
            Some(b) => {
                if b.fetch_sub(1, Ordering::AcqRel) > 0 {
                    true
                } else {
                    budget_exhausted.store(true, Ordering::Release);
                    false
                }
            }
        };
        let stop_requested = || {
            cancel.is_some_and(|c| c.load(Ordering::Acquire))
                || budget_exhausted.load(Ordering::Acquire)
        };

        // Claiming a coordinate and committing its finished record are
        // shared between the in-process executor and the process-pool
        // supervisors.
        let claim = || loop {
            if stop_requested() {
                return None;
            }
            if fail.lock().map(|slot| slot.is_some()).unwrap_or(true) {
                return None;
            }
            match &source {
                WorkSource::Dense(next) => {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    let k = dense_coord(j)?;
                    if done.contains_key(&(k as u64)) {
                        continue;
                    }
                    if !take_budget() {
                        return None;
                    }
                    return Some(k);
                }
                WorkSource::Adaptive(state, batch_done) => {
                    let Ok(mut s) = state.lock() else {
                        set_fail(FiError::WorkerPanicked);
                        return None;
                    };
                    loop {
                        if s.finished || stop_requested() {
                            return None;
                        }
                        if let Some(k) = s.pending.pop() {
                            if let Some((record, stats)) = done.get(&(k as u64)) {
                                // Journal replay: the planner re-issued a
                                // coordinate an earlier execution already
                                // ran, so feed it the journaled record
                                // instead of executing. Accounting matches
                                // the dense path's upfront merge.
                                ins.runs_recovered.inc();
                                ins.account(record, stats, golden_ticks[record.case]);
                                s.planner.record(k, record);
                                if obs.enabled() {
                                    progress_done.fetch_add(1, Ordering::Relaxed);
                                    if !record.outcome.is_completed() {
                                        progress_quarantined.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                continue;
                            }
                            if !take_budget() {
                                // Restore the coordinate so the pending
                                // queue stays coherent; resume's replay
                                // re-issues it next invocation.
                                s.pending.push(k);
                                return None;
                            }
                            s.outstanding += 1;
                            return Some(k);
                        }
                        if s.outstanding > 0 {
                            // The batch tail is still in flight on other
                            // threads; wake on commit (or time out to
                            // re-check the cancel and fail flags).
                            match batch_done.wait_timeout(s, Duration::from_millis(20)) {
                                Ok((guard, _)) => s = guard,
                                Err(_) => {
                                    set_fail(FiError::WorkerPanicked);
                                    return None;
                                }
                            }
                            if fail.lock().map(|slot| slot.is_some()).unwrap_or(true) {
                                return None;
                            }
                            continue;
                        }
                        // Batch barrier reached: every issued coordinate is
                        // recorded, so the planner may allocate the next
                        // round.
                        let batch = s.planner.next_batch();
                        if obs.enabled() {
                            // Snapshot the planner's confidence state at
                            // the barrier — the data points of the
                            // explorer's convergence curves. The final
                            // (empty) batch still snapshots, closing the
                            // curves, and newly-closed strata get one
                            // `stratum_closed` event each.
                            let elapsed = campaign_elapsed();
                            let status = s.planner.status();
                            let strata: Vec<StratumCi> = status
                                .iter()
                                .map(|st| StratumCi {
                                    target: st.target as u32,
                                    executed: st.executed,
                                    trials: st.trials,
                                    half_width: st.max_half_width,
                                    closed: st.closed.is_some(),
                                })
                                .collect();
                            obs.emit(&Event::AdaptiveBatch {
                                round: s.planner.rounds(),
                                batch_runs: batch.len() as u64,
                                elapsed_micros: elapsed,
                                strata: &strata,
                            });
                            for st in &status {
                                let Some(stop) = st.closed else { continue };
                                if std::mem::replace(&mut s.closed_reported[st.target], true) {
                                    continue;
                                }
                                let reason = match stop {
                                    StopReason::CiReached => "ci_reached",
                                    StopReason::BudgetExhausted => "budget_exhausted",
                                    StopReason::RankingStable => "ranking_stable",
                                };
                                obs.emit(&Event::StratumClosed {
                                    target: st.target as u32,
                                    module: &targets[st.target].module_name,
                                    input_signal: &targets[st.target].input_signal,
                                    executed: st.executed,
                                    trials: st.trials,
                                    half_width: st.max_half_width,
                                    reason,
                                    elapsed_micros: elapsed,
                                });
                            }
                        }
                        if batch.is_empty() {
                            s.finished = true;
                            batch_done.notify_all();
                            return None;
                        }
                        s.sampled.extend(batch.iter().map(|&k| k as u64));
                        // `pop` from the back serves ascending coordinates.
                        s.pending = batch;
                        s.pending.reverse();
                    }
                }
            }
        };
        // Non-blocking claim used to fill an IPC dispatch batch behind a
        // blocking first claim. It never waits at the adaptive batch
        // barrier and never replays journaled records (a replayed
        // coordinate is pushed back for `claim` to handle), so a dispatch
        // batch cannot span planner rounds and the barrier stays intact.
        let try_claim = || {
            if stop_requested() {
                return None;
            }
            if fail.lock().map(|slot| slot.is_some()).unwrap_or(true) {
                return None;
            }
            match &source {
                WorkSource::Dense(next) => loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    let k = dense_coord(j)?;
                    if done.contains_key(&(k as u64)) {
                        continue;
                    }
                    if !take_budget() {
                        return None;
                    }
                    return Some(k);
                },
                WorkSource::Adaptive(state, _) => {
                    let Ok(mut s) = state.lock() else {
                        set_fail(FiError::WorkerPanicked);
                        return None;
                    };
                    if s.finished {
                        return None;
                    }
                    match s.pending.pop() {
                        Some(k) if done.contains_key(&(k as u64)) => {
                            // Journal replay belongs to `claim`; restore the
                            // coordinate and stop filling this batch.
                            s.pending.push(k);
                            None
                        }
                        Some(k) if !take_budget() => {
                            s.pending.push(k);
                            None
                        }
                        Some(k) => {
                            s.outstanding += 1;
                            Some(k)
                        }
                        None => None,
                    }
                }
            }
        };
        let commit = |k: usize, record: RunRecord, stats: RunStats, attempts: u32| -> bool {
            ins.account(&record, &stats, golden_ticks[record.case]);
            ins.runs_executed.inc();
            if let WorkSource::Adaptive(state, batch_done) = &source {
                match state.lock() {
                    Ok(mut s) => {
                        s.planner.record(k, &record);
                        s.outstanding -= 1;
                        batch_done.notify_all();
                    }
                    Err(_) => {
                        set_fail(FiError::WorkerPanicked);
                        return false;
                    }
                }
            }
            if let Some(j) = &journal {
                let appended = j
                    .lock()
                    .map_err(|_| FiError::WorkerPanicked)
                    .and_then(|mut g| g.append(k as u64, &record, &stats, attempts));
                if let Err(e) = appended {
                    set_fail(e);
                    return false;
                }
            }
            let quarantined_run = !record.outcome.is_completed();
            let forked = stats.forked;
            let incident: Option<(&'static str, String)> = if obs.enabled() {
                match &record.outcome {
                    RunOutcome::Completed => None,
                    RunOutcome::Panicked { message } => Some(("panicked", message.clone())),
                    RunOutcome::Hung { last_tick_ms } => Some((
                        "hung",
                        format!("clock stalled; last observed tick {last_tick_ms} ms"),
                    )),
                    RunOutcome::Crashed { signal, exit_code } => Some((
                        "crashed",
                        match (signal, exit_code) {
                            (Some(sig), _) => format!("worker killed by signal {sig}"),
                            (None, Some(code)) => format!("worker exited with code {code}"),
                            (None, None) => "worker died".to_owned(),
                        },
                    )),
                }
            } else {
                None
            };
            match executed.lock() {
                Ok(mut recs) => recs.push((k as u64, record)),
                Err(_) => {
                    set_fail(FiError::WorkerPanicked);
                    return false;
                }
            }
            if obs.enabled() {
                let done_now = progress_done.fetch_add(1, Ordering::Relaxed) + 1;
                let executed_now = progress_executed.fetch_add(1, Ordering::Relaxed) + 1;
                let forked_now = if forked {
                    progress_forked.fetch_add(1, Ordering::Relaxed) + 1
                } else {
                    progress_forked.load(Ordering::Relaxed)
                };
                let quarantined_now = if quarantined_run {
                    progress_quarantined.fetch_add(1, Ordering::Relaxed) + 1
                } else {
                    progress_quarantined.load(Ordering::Relaxed)
                };
                if let Some((kind, detail)) = &incident {
                    emit_incident(k as u64, kind, detail);
                }
                obs.progress(&Progress {
                    done: done_now,
                    total: progress_total,
                    recovered,
                    quarantined: quarantined_now,
                    forked: forked_now,
                    executed: executed_now,
                    elapsed_micros: campaign_elapsed(),
                    finished: false,
                });
            }
            true
        };

        let worker = |_: usize| {
            // Worker-owned sample arena, recycled across every run this
            // thread executes.
            let mut arena: Option<TraceSet> = None;
            while let Some(k) = claim() {
                let run_started = obs.enabled().then(Instant::now);
                let sandboxed = self.execute_sandboxed(spec, &targets, &goldens, k, &mut arena);
                if let Some(t0) = run_started {
                    ins.run_micros.observe(t0.elapsed().as_micros() as u64);
                }
                match sandboxed {
                    Ok((record, stats)) => {
                        if !commit(k, record, stats, 1) {
                            break;
                        }
                    }
                    Err(e) => {
                        set_fail(e);
                        break;
                    }
                }
            }
        };

        // Process-pool shared state: the respawn budget every thread draws
        // on after its first (free) spawn, and the crash-storm circuit
        // breaker that degrades the rest of the campaign to the in-process
        // executor once the budget is exhausted.
        let respawn_budget = AtomicI64::new(
            process_cfg.map_or(0, |p| p.max_worker_respawns.min(i64::MAX as u64) as i64),
        );
        // Pool-collapse refill waves still available: when the budget runs
        // dry, one wave re-arms a full budget before the breaker may trip.
        let respawn_waves = AtomicI64::new(
            process_cfg.map_or(0, |p| p.pool_respawn_waves.min(i64::MAX as u64) as i64),
        );
        let breaker = AtomicBool::new(false);
        let setup_frame: Vec<u8> = match process_cfg {
            Some(p) => {
                let wd = self.config.watchdog;
                let setup = ToWorker::Setup {
                    spec: spec.clone(),
                    master_seed: self.config.master_seed,
                    horizon_ms: self.config.horizon_ms,
                    fast_forward: self.config.fast_forward,
                    wd_enabled: wd.is_some(),
                    wd_work_per_tick: wd.and_then(|w| w.max_work_per_tick),
                    wd_wall_ms: wd.and_then(|w| w.max_wall_ms),
                    payload: p.factory_payload.clone(),
                };
                let json = serde_json::to_string(&setup).map_err(|e| FiError::WorkerProcess {
                    message: format!("serialising worker setup: {e}"),
                })?;
                crate::process::encode_frame(&json)
            }
            None => Vec::new(),
        };

        let supervisor = |p: &ProcessIsolation| {
            let run_timeout = Duration::from_millis(p.run_timeout_ms.max(1));
            let setup_timeout = Duration::from_millis(p.setup_timeout_ms.max(1));
            let batch_limit = p.dispatch_batch.max(1);
            // The launch command with RLIMIT_AS/RLIMIT_CPU environment
            // variables applied (identical to `p.command` when uncapped).
            let worker_command = p.effective_command();
            let chaos = self.chaos.as_deref();
            let mut client: Option<WorkerClient> = None;
            let mut ever_spawned = false;
            // Arena for the degraded in-process fallback path.
            let mut arena: Option<TraceSet> = None;
            'coords: while let Some(first) = claim() {
                // Fill the dispatch batch behind the blocking first claim
                // without waiting, then try to ship the whole batch in one
                // frame. Any worker death degrades the batch to the
                // single-coordinate path below, whose retry loop owns death
                // classification; coordinates re-run deterministically, so
                // the records are identical either way.
                let mut batch = vec![first];
                if client.is_some() && !breaker.load(Ordering::Acquire) {
                    while batch.len() < batch_limit {
                        match try_claim() {
                            Some(k) => batch.push(k),
                            None => break,
                        }
                    }
                }
                if batch.len() > 1 {
                    let live = client.as_mut().expect("batched only with a live worker");
                    let ks: Vec<u64> = batch.iter().map(|&k| k as u64).collect();
                    if let Some(c) = chaos {
                        if c.should_kill_worker(&ks) {
                            live.chaos_kill();
                        }
                    }
                    let attempt_started = obs.enabled().then(Instant::now);
                    let attempt = live.run_batch(&ks, run_timeout, chaos);
                    if let Some(t0) = attempt_started {
                        ins.attempt_micros.observe(t0.elapsed().as_micros() as u64);
                    }
                    match attempt {
                        Ok(Attempt::Done { results }) => {
                            for done_run in results {
                                if !commit(done_run.k as usize, done_run.record, done_run.stats, 1)
                                {
                                    break 'coords;
                                }
                            }
                            continue 'coords;
                        }
                        Ok(Attempt::Died { deadline, .. }) => {
                            // The guilty coordinate is unknown from a batch
                            // death; fall through and re-dispatch each
                            // coordinate singly so classification is exact.
                            client = None;
                            if deadline {
                                ins.worker_kills.inc();
                            }
                            ins.run_retries.inc();
                            emit_incident(
                                ks[0],
                                "retried",
                                &format!(
                                    "worker died running a dispatch batch of {}; \
                                     re-dispatching singly",
                                    ks.len()
                                ),
                            );
                        }
                        Ok(Attempt::Protocol(message)) => {
                            set_fail(FiError::WorkerProcess { message });
                            break 'coords;
                        }
                        Err(e) => {
                            set_fail(e);
                            break 'coords;
                        }
                    }
                }
                for k in batch {
                    // Attempts actually dispatched for this coordinate; the
                    // journal records it so resumed campaigns keep the count.
                    let mut attempts: u32 = 0;
                    let mut last_death: Option<RunOutcome> = None;
                    let (record, stats) = loop {
                        if breaker.load(Ordering::Acquire) {
                            // Degraded mode: execute on the supervisor's bare
                            // bundles — records are bit-identical (fast-forward
                            // never changes a result bit), just slower.
                            client = None;
                            match self.execute_sandboxed(spec, &targets, &goldens, k, &mut arena) {
                                Ok(pair) => break pair,
                                Err(e) => {
                                    set_fail(e);
                                    break 'coords;
                                }
                            }
                        }
                        if client.is_none() {
                            if ever_spawned {
                                if respawn_budget.fetch_sub(1, Ordering::AcqRel) <= 0 {
                                    // Pool collapse: spend one refill wave
                                    // (re-arming a full respawn budget)
                                    // before the breaker may trip and
                                    // degrade the campaign in-process.
                                    if p.max_worker_respawns > 0
                                        && respawn_waves.fetch_sub(1, Ordering::AcqRel) > 0
                                    {
                                        respawn_budget.store(
                                            p.max_worker_respawns.min(i64::MAX as u64) as i64,
                                            Ordering::Release,
                                        );
                                        obs.warn(format!(
                                            "worker pool collapsed; spending a respawn wave \
                                             ({} fresh respawns)",
                                            p.max_worker_respawns
                                        ));
                                        continue;
                                    }
                                    breaker.store(true, Ordering::Release);
                                    continue;
                                }
                                ins.worker_respawns.inc();
                            }
                            match WorkerClient::spawn(&worker_command) {
                                Ok(mut fresh) => {
                                    ever_spawned = true;
                                    ins.worker_spawns.inc();
                                    match fresh.setup(&setup_frame, setup_timeout) {
                                        Ok(()) => client = Some(fresh),
                                        Err(_) => {
                                            // Setup failures draw on the budget
                                            // like crashes do; back off and let
                                            // the loop respawn or trip the
                                            // breaker.
                                            std::thread::sleep(backoff(
                                                p.retry_backoff_ms,
                                                attempts,
                                            ));
                                            continue;
                                        }
                                    }
                                }
                                Err(_) => {
                                    ever_spawned = true;
                                    std::thread::sleep(backoff(p.retry_backoff_ms, attempts));
                                    continue;
                                }
                            }
                        }
                        let live = client.as_mut().expect("worker ensured above");
                        if let Some(c) = chaos {
                            if c.should_kill_worker(&[k as u64]) {
                                live.chaos_kill();
                            }
                        }
                        attempts += 1;
                        let attempt_started = obs.enabled().then(Instant::now);
                        let attempt = live.run_batch(&[k as u64], run_timeout, chaos);
                        if let Some(t0) = attempt_started {
                            ins.attempt_micros.observe(t0.elapsed().as_micros() as u64);
                        }
                        match attempt {
                            Ok(Attempt::Done { mut results }) => {
                                let done_run =
                                    results.pop().expect("batch of one verified by client");
                                break (done_run.record, done_run.stats);
                            }
                            Ok(Attempt::Died {
                                deadline,
                                signal,
                                exit_code,
                            }) => {
                                client = None;
                                if deadline {
                                    ins.worker_kills.inc();
                                }
                                // A hard-deadline kill means the run never let
                                // its own clock be observed; any other death is
                                // classified from the exit status.
                                let outcome = if deadline {
                                    RunOutcome::Hung { last_tick_ms: 0 }
                                } else {
                                    RunOutcome::Crashed { signal, exit_code }
                                };
                                let reproduced = last_death.as_ref() == Some(&outcome);
                                let budget_spent = attempts > self.config.max_retries;
                                if reproduced || budget_spent {
                                    break self.death_record(spec, &targets, k, outcome);
                                }
                                last_death = Some(outcome);
                                ins.run_retries.inc();
                                emit_incident(
                                    k as u64,
                                    "retried",
                                    &format!("worker death on attempt {attempts}; backing off"),
                                );
                                std::thread::sleep(backoff(p.retry_backoff_ms, attempts));
                            }
                            Ok(Attempt::Protocol(message)) => {
                                set_fail(FiError::WorkerProcess { message });
                                break 'coords;
                            }
                            Err(e) => {
                                set_fail(e);
                                break 'coords;
                            }
                        }
                    };
                    if !commit(k, record, stats, attempts.max(1)) {
                        break 'coords;
                    }
                }
            }
        };

        if let Some(p) = process_cfg {
            if threads <= 1 {
                supervisor(p);
            } else {
                let supervisor_ref = &supervisor;
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        s.spawn(move || supervisor_ref(p));
                    }
                });
            }
        } else if threads <= 1 {
            worker(0);
        } else {
            let worker_ref = &worker;
            std::thread::scope(|s| {
                for w in 0..threads {
                    s.spawn(move || worker_ref(w));
                }
            });
        }

        // Whatever the exit path, leave the journal durable first.
        if let Some(j) = &journal {
            j.lock().map_err(|_| FiError::WorkerPanicked)?.sync()?;
        }
        if let Some(e) = fail.into_inner().map_err(|_| FiError::WorkerPanicked)? {
            return Err(e);
        }

        let executed = executed.into_inner().map_err(|_| FiError::WorkerPanicked)?;
        let (sampled, planner) = match source {
            WorkSource::Dense(_) => (None, None),
            WorkSource::Adaptive(state, _) => {
                let s = state.into_inner().map_err(|_| FiError::WorkerPanicked)?;
                (Some(s.sampled), Some(s.planner))
            }
        };
        // Dense campaigns merge every journaled record; adaptive campaigns
        // merge exactly the coordinates the planner sampled (a journaled
        // run whose batch was never re-issued — possible only after a
        // cancellation — stays out, matching its skipped accounting).
        // Expected dense total: every journaled record plus every
        // shard-owned coordinate that was not journaled. Without a shard
        // this is simply the spec's run count.
        let dense_expected = shard.map_or(run_count, |s| {
            done.len()
                + s.positions(run_count as u64)
                    .filter(|k| !done.contains_key(k))
                    .count()
        });
        let mut merged: Vec<(u64, RunRecord)> = match &sampled {
            None => done.into_iter().map(|(k, (r, _))| (k, r)).collect(),
            Some(sampled_ks) => {
                let sampled_set: std::collections::HashSet<u64> =
                    sampled_ks.iter().copied().collect();
                done.into_iter()
                    .filter(|(k, _)| sampled_set.contains(k))
                    .map(|(k, (r, _))| (k, r))
                    .collect()
            }
        };
        merged.extend(executed);
        merged.sort_by_key(|&(k, _)| k);

        let emit_final_progress = || {
            if obs.enabled() {
                obs.progress(&Progress {
                    done: progress_done.load(Ordering::Relaxed),
                    total: progress_total,
                    recovered,
                    quarantined: progress_quarantined.load(Ordering::Relaxed),
                    forked: progress_forked.load(Ordering::Relaxed),
                    executed: progress_executed.load(Ordering::Relaxed),
                    elapsed_micros: campaign_elapsed(),
                    finished: true,
                });
            }
        };
        obs.gauge("process.campaign_wall_ms")
            .set(campaign_started.elapsed().as_millis() as u64);

        // Budget exhaustion implies at least one claimed coordinate was
        // denied, so the campaign is necessarily incomplete — it reports
        // as interrupted exactly like an external cancellation.
        if cancel.is_some_and(|c| c.load(Ordering::Acquire))
            || budget_exhausted.load(Ordering::Acquire)
        {
            emit_final_progress();
            return Err(FiError::Interrupted {
                completed: merged.len() as u64,
                total: run_count as u64,
            });
        }
        match &sampled {
            None => debug_assert_eq!(merged.len(), dense_expected),
            Some(s) => debug_assert_eq!(merged.len(), s.len()),
        }
        // Adaptive totals are deterministic facts of the finished plan: a
        // resumed campaign replays the same rounds and closes the same
        // strata, so these merge to the uninterrupted values just like the
        // `campaign.*` counters.
        if let (Some(p), Some(s)) = (&planner, &sampled) {
            ins.adaptive_batches.add(p.rounds());
            ins.adaptive_strata_closed.add(p.strata_closed() as u64);
            ins.adaptive_runs_saved
                .add(run_count.saturating_sub(s.len()) as u64);
        }
        emit_final_progress();

        // Assemble the result purely from the merged record set, in
        // coordinate order — the same bytes whether the records were just
        // executed, recovered from a journal, or any mix of the two.
        let _merge_span = obs.span("merge");
        let per_target = spec.injections_per_target();
        let mut outcomes = OutcomeTally::default();
        let mut completed_per_target = vec![0u64; targets.len()];
        let mut runs_per_target = vec![0u64; targets.len()];
        let mut errors: Vec<Vec<u64>> = targets
            .iter()
            .map(|t| vec![0u64; t.output_signals.len()])
            .collect();
        for (k, record) in &merged {
            let ti = (*k as usize) / per_target;
            runs_per_target[ti] += 1;
            outcomes.record(&record.outcome);
            if record.outcome.is_completed() {
                completed_per_target[ti] += 1;
                for (out_idx, div) in record.first_divergence.iter().enumerate() {
                    if div.is_some() {
                        errors[ti][out_idx] += 1;
                    }
                }
            }
        }
        if outcomes.quarantined_fraction() > self.config.max_quarantined_fraction {
            return Err(FiError::QuarantineThresholdExceeded {
                quarantined: outcomes.quarantined(),
                total: outcomes.total(),
                max_fraction: self.config.max_quarantined_fraction,
            });
        }

        let mut pairs = Vec::new();
        for (ti, target) in targets.iter().enumerate() {
            for (out_idx, out_name) in target.output_signals.iter().enumerate() {
                pairs.push(PairStat {
                    module: target.module_name.clone(),
                    input_signal: target.input_signal.clone(),
                    output_signal: out_name.clone(),
                    input: target.input_port,
                    output: out_idx,
                    // `n_inj` counts only runs that produced a comparison;
                    // equals `injections_per_target` when nothing was
                    // quarantined.
                    injections: completed_per_target[ti],
                    errors: errors[ti][out_idx],
                });
            }
        }
        let total_runs = merged.len() as u64;
        Ok(CampaignResult {
            pairs,
            records: if self.config.keep_records {
                merged.into_iter().map(|(_, r)| r).collect()
            } else {
                Vec::new()
            },
            golden_ticks,
            total_runs,
            runs_per_target,
            outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ErrorModel;
    use crate::spec::PortTarget;
    use permea_runtime::module::{ModuleCtx, SoftwareModule};
    use permea_runtime::scheduler::Schedule;
    use permea_runtime::signals::SignalBus;
    use permea_runtime::sim::{Environment, SimulationBuilder};

    /// Copies input to output; a second output stays constant (zero
    /// permeability) — a minimal system with known ground truth.
    struct CopyAndConst;
    impl SoftwareModule for CopyAndConst {
        fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
            let v = ctx.read(0);
            ctx.write(0, v);
            ctx.write(1, 42);
        }
    }

    struct RampEnv {
        sensor: permea_runtime::signals::SignalRef,
        limit: u64,
    }
    impl Environment for RampEnv {
        fn pre_tick(&mut self, now: SimTime, bus: &mut SignalBus) {
            bus.write(self.sensor, (now.as_millis() % 1000) as u16);
        }
        fn post_tick(&mut self, _: SimTime, _: &mut SignalBus) {}
        fn finished(&self, now: SimTime) -> bool {
            now.as_millis() >= self.limit
        }
    }

    fn build_sim(case: usize) -> Simulation {
        let mut b = SimulationBuilder::new();
        let sensor = b.define_signal("sensor");
        let out = b.define_signal("out");
        let konst = b.define_signal("konst");
        b.add_module(
            "COPY",
            Box::new(CopyAndConst),
            Schedule::every_ms(),
            &[sensor],
            &[out, konst],
        );
        let mut sim = b.build(Box::new(RampEnv {
            sensor,
            limit: 100 + case as u64,
        }));
        sim.enable_tracing_all();
        sim
    }

    fn factory() -> FnSystemFactory<fn(usize) -> Simulation> {
        FnSystemFactory::new(2, 10_000, build_sim as fn(usize) -> Simulation)
    }

    fn spec() -> CampaignSpec {
        CampaignSpec {
            targets: vec![PortTarget::new("COPY", "sensor")],
            models: ErrorModel::all_bit_flips(),
            times_ms: vec![10, 50],
            cases: 2,
            scope: InjectionScope::Port,
            adaptive: None,
        }
    }

    #[test]
    fn golden_run_has_expected_length() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let g = c.golden(0).unwrap();
        assert_eq!(g.ticks, 100);
        let g1 = c.golden(1).unwrap();
        assert_eq!(g1.ticks, 101);
    }

    #[test]
    fn copy_module_has_full_permeability_on_copy_and_zero_on_const() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let res = c.run(&spec()).unwrap();
        let copy = res.pair("COPY", "sensor", "out").unwrap();
        assert_eq!(copy.injections, 16 * 2 * 2);
        assert_eq!(copy.estimate(), 1.0, "every flip reaches the copied output");
        let konst = res.pair("COPY", "sensor", "konst").unwrap();
        assert_eq!(konst.estimate(), 0.0, "constant output never diverges");
        assert_eq!(res.total_runs, 64);
        assert_eq!(res.records.len(), 64);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let f = factory();
        let seq = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .run(&spec())
        .unwrap();
        let par = Campaign::new(
            &f,
            CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .run(&spec())
        .unwrap();
        assert_eq!(
            seq, par,
            "campaigns must be deterministic regardless of threads"
        );
    }

    #[test]
    fn horizon_truncates_runs() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                horizon_ms: Some(30),
                ..Default::default()
            },
        );
        let g = c.golden(0).unwrap();
        assert_eq!(g.ticks, 30);
    }

    #[test]
    fn unknown_targets_are_rejected() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let mut s = spec();
        s.targets = vec![PortTarget::new("NOPE", "sensor")];
        assert_eq!(
            c.run(&s).unwrap_err(),
            FiError::UnknownModule("NOPE".into())
        );
        let mut s = spec();
        s.targets = vec![PortTarget::new("COPY", "nope")];
        assert!(matches!(
            c.run(&s).unwrap_err(),
            FiError::UnknownInputPort { .. }
        ));
    }

    #[test]
    fn signal_scope_also_corrupts() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let mut s = spec();
        s.scope = InjectionScope::Signal;
        let res = c.run(&s).unwrap();
        assert_eq!(res.pair("COPY", "sensor", "out").unwrap().estimate(), 1.0);
    }

    #[test]
    fn records_capture_injection_details() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let res = c.run(&spec()).unwrap();
        let r = &res.records[0];
        assert_eq!(r.module, "COPY");
        assert_eq!(r.corrupted_value, r.original_value ^ 1); // bit 0 first
        assert!(r.any_error());
        // The copied output diverges at the injection tick itself.
        assert_eq!(r.first_divergence[0], Some(r.time_ms as u32));
    }

    #[test]
    fn fast_forward_and_replay_agree_bit_for_bit() {
        let f = factory();
        let fast = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .run(&spec())
        .unwrap();
        let replay = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                fast_forward: false,
                ..Default::default()
            },
        )
        .run(&spec())
        .unwrap();
        assert_eq!(fast, replay, "fast-forward must not change any result bit");
    }

    #[test]
    fn golden_bundle_captures_fork_points_and_checkpoints() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let b = c.golden_bundle(0, &[10, 50]).unwrap();
        assert_eq!(b.run.ticks, 100);
        assert!(
            b.snapshot_at(10).is_some(),
            "fork point at each injection instant"
        );
        assert!(b.snapshot_at(50).is_some());
        assert_eq!(b.snapshot_at(10).unwrap().now().as_millis(), 10);
        // 100-tick run: no 250 ms cadence checkpoint fits.
        assert_eq!(b.snapshot_count(), 2);
        let bare = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                fast_forward: false,
                ..Default::default()
            },
        )
        .golden_bundle(0, &[10, 50])
        .unwrap();
        assert_eq!(bare.snapshot_count(), 0);
        assert_eq!(
            bare.run, b.run,
            "snapshot capture must not perturb the golden run"
        );
    }

    #[test]
    fn unreachable_instants_fail_validation() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        // Case 0's golden run is 100 ticks; an instant at its end can never
        // fire.
        let mut s = spec();
        s.times_ms = vec![10, 100];
        assert_eq!(
            c.run(&s).unwrap_err(),
            FiError::UnreachableInstant {
                time_ms: 100,
                limit_ms: 100,
                case: Some(0)
            }
        );
        // Against an explicit horizon the horizon wins the error message.
        let ch = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                horizon_ms: Some(40),
                ..Default::default()
            },
        );
        let mut s = spec();
        s.times_ms = vec![10, 50];
        assert_eq!(
            ch.run(&s).unwrap_err(),
            FiError::UnreachableInstant {
                time_ms: 50,
                limit_ms: 40,
                case: None
            }
        );
    }

    #[test]
    fn horizon_beyond_factory_cap_is_an_error() {
        // The scenario never finishes on its own within the cap, and the
        // configured horizon cannot be honoured either: refuse instead of
        // silently truncating at the cap.
        let f = FnSystemFactory::new(1, 50, build_sim as fn(usize) -> Simulation);
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                horizon_ms: Some(200),
                ..Default::default()
            },
        );
        assert_eq!(
            c.golden(0).unwrap_err(),
            FiError::HorizonExceedsCap {
                horizon_ms: 200,
                max_run_ms: 50
            }
        );
        // A horizon the cap can honour still truncates as configured.
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                horizon_ms: Some(40),
                ..Default::default()
            },
        );
        assert_eq!(c.golden(0).unwrap().ticks, 40);
    }

    /// Panics when its input exceeds a threshold — only corrupted runs die.
    struct Fragile;
    impl SoftwareModule for Fragile {
        fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
            let v = ctx.read(0);
            assert!(v < 0x4000, "fragile module crashed on corrupted input");
            ctx.write(0, v);
        }
    }

    fn fragile_sim(_case: usize) -> Simulation {
        let mut b = SimulationBuilder::new();
        let sensor = b.define_signal("sensor");
        let out = b.define_signal("out");
        b.add_module(
            "FRAGILE",
            Box::new(Fragile),
            Schedule::every_ms(),
            &[sensor],
            &[out],
        );
        let mut sim = b.build(Box::new(RampEnv { sensor, limit: 100 }));
        sim.enable_tracing_all();
        sim
    }

    fn fragile_spec() -> CampaignSpec {
        CampaignSpec {
            targets: vec![PortTarget::new("FRAGILE", "sensor")],
            models: vec![ErrorModel::BitFlip { bit: 15 }],
            times_ms: vec![10],
            cases: 1,
            scope: InjectionScope::Port,
            adaptive: None,
        }
    }

    #[test]
    fn panicking_run_is_quarantined_and_campaign_completes() {
        let f = FnSystemFactory::new(1, 10_000, fragile_sim as fn(usize) -> Simulation);
        for threads in [1, 4] {
            let c = Campaign::new(
                &f,
                CampaignConfig {
                    threads,
                    // Every run of this spec dies; accept that for the test.
                    max_quarantined_fraction: 1.0,
                    ..Default::default()
                },
            );
            let res = c.run(&fragile_spec()).unwrap();
            assert_eq!(res.total_runs, 1);
            assert_eq!(res.outcomes.panicked, 1);
            assert_eq!(res.outcomes.completed, 0);
            assert_eq!(res.records.len(), 1);
            match &res.records[0].outcome {
                RunOutcome::Panicked { message } => {
                    assert!(
                        message.contains("fragile module crashed"),
                        "panic message should be preserved, got: {message}"
                    );
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
            assert!(res.records[0].first_divergence.is_empty());
            // Quarantined runs are excluded from n_inj.
            assert_eq!(res.pair("FRAGILE", "sensor", "out").unwrap().injections, 0);
        }
    }

    #[test]
    fn systematic_breakage_exceeds_quarantine_threshold() {
        let f = FnSystemFactory::new(1, 10_000, fragile_sim as fn(usize) -> Simulation);
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        // 1 of 1 runs quarantined blows through the default 25 % ceiling.
        assert_eq!(
            c.run(&fragile_spec()).unwrap_err(),
            FiError::QuarantineThresholdExceeded {
                quarantined: 1,
                total: 1,
                max_fraction: 0.25,
            }
        );
    }

    /// Loops as many times as its input value says — an injected high bit
    /// turns the loop pathological and stalls the simulated clock.
    struct InputBoundedLoop;
    impl SoftwareModule for InputBoundedLoop {
        fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
            let v = ctx.read(0);
            let mut acc: u16 = 0;
            for _ in 0..v {
                ctx.work(1);
                acc = acc.wrapping_add(3);
            }
            ctx.write(0, acc);
        }
    }

    fn looping_sim(_case: usize) -> Simulation {
        let mut b = SimulationBuilder::new();
        let sensor = b.define_signal("sensor");
        let out = b.define_signal("out");
        b.add_module(
            "LOOPER",
            Box::new(InputBoundedLoop),
            Schedule::every_ms(),
            &[sensor],
            &[out],
        );
        let mut sim = b.build(Box::new(RampEnv { sensor, limit: 100 }));
        sim.enable_tracing_all();
        sim
    }

    #[test]
    fn hanging_run_is_quarantined_as_hung() {
        let f = FnSystemFactory::new(1, 10_000, looping_sim as fn(usize) -> Simulation);
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                // Golden runs do < 100 units/tick; a bit-15 flip forces
                // ≥ 32 768 and must trip.
                watchdog: Some(WatchdogConfig {
                    max_work_per_tick: Some(4_096),
                    max_wall_ms: None,
                }),
                max_quarantined_fraction: 1.0,
                ..Default::default()
            },
        );
        let s = CampaignSpec {
            targets: vec![PortTarget::new("LOOPER", "sensor")],
            models: vec![ErrorModel::BitFlip { bit: 15 }],
            times_ms: vec![10],
            cases: 1,
            scope: InjectionScope::Port,
            adaptive: None,
        };
        let res = c.run(&s).unwrap();
        assert_eq!(res.outcomes.hung, 1);
        assert_eq!(
            res.records[0].outcome,
            RunOutcome::Hung { last_tick_ms: 10 },
            "the clock stalled at the injection instant"
        );
        // Without a work budget the same run must complete: the loop is
        // long, not unbounded.
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                watchdog: None,
                ..Default::default()
            },
        );
        let res = c.run(&s).unwrap();
        assert_eq!(res.outcomes.hung, 0);
        assert_eq!(res.outcomes.completed, 1);
    }

    #[test]
    fn untraced_factory_is_a_typed_error() {
        fn untraced(_case: usize) -> Simulation {
            let mut b = SimulationBuilder::new();
            let sensor = b.define_signal("sensor");
            let out = b.define_signal("out");
            let konst = b.define_signal("konst");
            b.add_module(
                "COPY",
                Box::new(CopyAndConst),
                Schedule::every_ms(),
                &[sensor],
                &[out, konst],
            );
            b.build(Box::new(RampEnv { sensor, limit: 100 }))
        }
        let f = FnSystemFactory::new(1, 10_000, untraced as fn(usize) -> Simulation);
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            c.golden(0).unwrap_err(),
            FiError::TracingDisabled { case: 0 }
        );
        let mut s = spec();
        s.cases = 1;
        assert_eq!(c.run(&s).unwrap_err(), FiError::TracingDisabled { case: 0 });
    }

    fn journal_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("permea-campaign-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    #[test]
    fn journaled_campaign_matches_plain_run() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let baseline = c.run(&spec()).unwrap();

        let path = journal_path("full");
        let _ = std::fs::remove_file(&path);
        let header = c.journal_header(&spec());
        let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
        let journaled = c.run_resumable(&spec(), Some(&mut j), None).unwrap();
        assert_eq!(journaled, baseline);
        assert_eq!(j.len(), spec().run_count());

        // A second pass over the now-complete journal re-executes nothing
        // and still reproduces the result bit for bit.
        let (mut j, loaded) = RunJournal::open_or_create(&path, &header).unwrap();
        assert_eq!(loaded.recovered, spec().run_count());
        let resumed = c.run_resumable(&spec(), Some(&mut j), None).unwrap();
        assert_eq!(resumed, baseline);
    }

    #[test]
    fn sharded_journals_merge_to_the_unsharded_journal() {
        let f = factory();
        let unsharded = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let baseline = unsharded.run(&spec()).unwrap();
        let full_path = journal_path("shard-full");
        let _ = std::fs::remove_file(&full_path);
        let header = unsharded.journal_header(&spec());
        let (mut j, _) = RunJournal::open_or_create(&full_path, &header).unwrap();
        unsharded
            .run_resumable(&spec(), Some(&mut j), None)
            .unwrap();
        j.sync().unwrap();
        drop(j);

        // Each shard runs its slice into its own journal; shard totals
        // partition the grid.
        let mut shard_paths = Vec::new();
        for i in 0..2 {
            let c = Campaign::new(
                &f,
                CampaignConfig {
                    threads: 1,
                    shard: Some(Shard::new(i, 2).unwrap()),
                    ..Default::default()
                },
            );
            let path = journal_path(&format!("shard-{i}"));
            let _ = std::fs::remove_file(&path);
            let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
            let partial = c.run_resumable(&spec(), Some(&mut j), None).unwrap();
            assert_eq!(
                partial.total_runs,
                Shard::new(i, 2).unwrap().len(spec().run_count() as u64),
                "shard {i} must run exactly its slice"
            );
            j.sync().unwrap();
            drop(j);
            shard_paths.push(path);
        }

        let merged_path = journal_path("shard-merged");
        let _ = std::fs::remove_file(&merged_path);
        let summary = crate::journal::merge_journals(&merged_path, &shard_paths).unwrap();
        assert_eq!(summary.records, spec().run_count());
        assert_eq!(
            std::fs::read(&merged_path).unwrap(),
            std::fs::read(&full_path).unwrap(),
            "merged shard journals must be byte-identical to the unsharded journal"
        );

        // The merged journal resumes the unsharded campaign: nothing
        // re-executes and the result is bit-identical.
        let (mut j, loaded) = RunJournal::open_or_create(&merged_path, &header).unwrap();
        assert_eq!(loaded.recovered, spec().run_count());
        let resumed = unsharded
            .run_resumable(&spec(), Some(&mut j), None)
            .unwrap();
        assert_eq!(resumed, baseline);
    }

    #[test]
    fn resume_after_truncation_is_byte_identical() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let baseline = c.run(&spec()).unwrap();

        let path = journal_path("truncated");
        let _ = std::fs::remove_file(&path);
        let header = c.journal_header(&spec());
        let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
        c.run_resumable(&spec(), Some(&mut j), None).unwrap();
        drop(j);

        // Chop the journal mid-way — keep the header plus 20 records and a
        // torn half-line, as a kill -9 would leave it.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mut kept: String = lines[..21].join("\n");
        kept.push('\n');
        kept.push_str(&lines[21][..lines[21].len() / 2]);
        std::fs::write(&path, kept).unwrap();

        let (mut j, loaded) = RunJournal::open_or_create(&path, &header).unwrap();
        assert_eq!(loaded.recovered, 20);
        assert!(loaded.truncated_tail);
        let resumed = c.run_resumable(&spec(), Some(&mut j), None).unwrap();
        assert_eq!(resumed, baseline, "resume must be byte-identical");
    }

    #[test]
    fn cancelled_campaign_reports_interrupted_and_resumes() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let baseline = c.run(&spec()).unwrap();

        let path = journal_path("cancelled");
        let _ = std::fs::remove_file(&path);
        let header = c.journal_header(&spec());
        let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
        let cancel = AtomicBool::new(true); // raised before any run starts
        assert_eq!(
            c.run_resumable(&spec(), Some(&mut j), Some(&cancel))
                .unwrap_err(),
            FiError::Interrupted {
                completed: 0,
                total: spec().run_count() as u64,
            }
        );
        drop(j);

        let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
        let resumed = c.run_resumable(&spec(), Some(&mut j), None).unwrap();
        assert_eq!(resumed, baseline);
    }

    #[test]
    fn budgeted_slices_converge_to_the_unbudgeted_result() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let baseline = c.run(&spec()).unwrap();
        let total = spec().run_count() as u64;

        // Reference journal: one unbudgeted journaled run.
        let full_path = journal_path("budget-full");
        let _ = std::fs::remove_file(&full_path);
        let header = c.journal_header(&spec());
        let (mut j, _) = RunJournal::open_or_create(&full_path, &header).unwrap();
        c.run_resumable(&spec(), Some(&mut j), None).unwrap();
        j.sync().unwrap();
        drop(j);

        // The same campaign in slices of 10 new runs per invocation: every
        // slice but the last reports Interrupted, and the union converges
        // to the identical result and the identical journal bytes.
        let path = journal_path("budget-sliced");
        let _ = std::fs::remove_file(&path);
        let mut slices = 0u64;
        let result = loop {
            slices += 1;
            assert!(slices <= total, "budgeted loop failed to converge");
            let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
            match c.run_resumable_budgeted(&spec(), Some(&mut j), None, Some(10)) {
                Ok(result) => break result,
                Err(FiError::Interrupted {
                    completed,
                    total: t,
                }) => {
                    assert_eq!(t, total);
                    assert!(completed < total, "interrupted slice must be partial");
                }
                Err(e) => panic!("unexpected slice failure: {e:?}"),
            }
        };
        assert_eq!(result, baseline);
        assert_eq!(slices, total.div_ceil(10), "64 runs in 10-run slices");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&full_path).unwrap(),
            "sliced journal must be byte-identical to the unbudgeted journal"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&full_path);
    }

    #[test]
    fn zero_budget_interrupts_without_issuing_work() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            c.run_resumable_budgeted(&spec(), None, None, Some(0))
                .unwrap_err(),
            FiError::Interrupted {
                completed: 0,
                total: spec().run_count() as u64,
            }
        );
    }

    #[test]
    fn keep_records_false_drops_details() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                keep_records: false,
                ..Default::default()
            },
        );
        let res = c.run(&spec()).unwrap();
        assert!(res.records.is_empty());
        assert_eq!(res.pairs.len(), 2);
    }

    #[test]
    fn zero_fsync_interval_is_rejected() {
        let f = factory();
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                journal_fsync_interval: 0,
                ..Default::default()
            },
        );
        assert_eq!(c.run(&spec()).unwrap_err(), FiError::InvalidFsyncInterval);
    }

    /// Arms a time bomb: an injected high bit does not stall the module at
    /// the injection tick — it schedules an unbounded loop five ticks later.
    /// Distinguishes "hung at the injection instant" from "hung where the
    /// clock actually stopped".
    struct DelayedStall {
        stall_at: Option<u64>,
    }
    impl SoftwareModule for DelayedStall {
        fn step(&mut self, ctx: &mut ModuleCtx<'_>) {
            let v = ctx.read(0);
            let now = ctx.now().as_millis();
            if self.stall_at.is_none() && v >= 0x8000 {
                self.stall_at = Some(now + 5);
            }
            if self.stall_at == Some(now) {
                loop {
                    ctx.work(1);
                }
            }
            ctx.write(0, v.wrapping_add(1));
        }
        fn reset(&mut self) {
            self.stall_at = None;
        }
        fn save_state(&self) -> Vec<u8> {
            let mut w = permea_runtime::state::StateWriter::new();
            w.put_bool(self.stall_at.is_some());
            w.put_u64(self.stall_at.unwrap_or(0));
            w.finish()
        }
        fn load_state(&mut self, state: &[u8]) {
            let mut r = permea_runtime::state::StateReader::new(state);
            let armed = r.bool();
            let at = r.u64();
            r.finish();
            self.stall_at = armed.then_some(at);
        }
    }

    fn delayed_stall_sim(_case: usize) -> Simulation {
        let mut b = SimulationBuilder::new();
        let sensor = b.define_signal("sensor");
        let out = b.define_signal("out");
        b.add_module(
            "BOMB",
            Box::new(DelayedStall { stall_at: None }),
            Schedule::every_ms(),
            &[sensor],
            &[out],
        );
        let mut sim = b.build(Box::new(RampEnv { sensor, limit: 100 }));
        sim.enable_tracing_all();
        sim
    }

    #[test]
    fn hung_outcome_records_the_watchdogs_last_observed_tick() {
        let f = FnSystemFactory::new(1, 10_000, delayed_stall_sim as fn(usize) -> Simulation);
        let s = CampaignSpec {
            targets: vec![PortTarget::new("BOMB", "sensor")],
            models: vec![ErrorModel::BitFlip { bit: 15 }],
            times_ms: vec![10],
            cases: 1,
            scope: InjectionScope::Port,
            adaptive: None,
        };
        for fast_forward in [true, false] {
            let c = Campaign::new(
                &f,
                CampaignConfig {
                    threads: 1,
                    fast_forward,
                    watchdog: Some(WatchdogConfig {
                        max_work_per_tick: Some(4_096),
                        max_wall_ms: None,
                    }),
                    max_quarantined_fraction: 1.0,
                    ..Default::default()
                },
            );
            let res = c.run(&s).unwrap();
            assert_eq!(res.outcomes.hung, 1);
            assert_eq!(
                res.records[0].outcome,
                RunOutcome::Hung { last_tick_ms: 15 },
                "the clock stalled 5 ticks after the injection at 10 \
                 (fast_forward = {fast_forward})"
            );
        }
    }

    #[test]
    fn telemetry_counters_match_campaign_facts() {
        let f = factory();
        let obs = Obs::with_sinks(Vec::new());
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .with_obs(obs.clone());
        let res = c.run(&spec()).unwrap();
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("campaign.runs_total"), Some(64));
        assert_eq!(snap.counter("campaign.runs_completed"), Some(64));
        assert_eq!(snap.counter("campaign.golden_runs"), Some(2));
        assert_eq!(
            snap.counter("campaign.golden_ticks"),
            Some(res.golden_ticks.iter().sum::<u64>())
        );
        // Every injection instant has a fork snapshot, so every run forks.
        assert_eq!(snap.counter("campaign.ff_forked"), Some(64));
        assert!(snap.counter("campaign.snapshots").unwrap() > 0);
        assert_eq!(snap.counter("process.runs_executed"), Some(64));
        assert_eq!(snap.counter("process.runs_recovered"), Some(0));
        assert_eq!(
            snap.histograms.get("process.run_micros").map(|h| h.count),
            Some(64)
        );
        assert!(snap.spans.contains_key("campaign"));
        assert!(snap.spans.contains_key("golden"));
    }

    #[test]
    fn resumed_campaign_merges_metrics_to_uninterrupted_totals() {
        let f = factory();
        let obs_full = Obs::with_sinks(Vec::new());
        let c = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .with_obs(obs_full.clone());
        let baseline = c.run(&spec()).unwrap();
        let full_snapshot = obs_full.snapshot().unwrap();
        let full = full_snapshot.campaign_section();

        // Journal a complete campaign, then chop it to 20 records as an
        // interruption would have left it.
        let path = journal_path("metrics-merge");
        let _ = std::fs::remove_file(&path);
        let header = c.journal_header(&spec());
        let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
        Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .run_resumable(&spec(), Some(&mut j), None)
        .unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mut kept = lines[..21].join("\n");
        kept.push('\n');
        std::fs::write(&path, kept).unwrap();

        let obs_resumed = Obs::with_sinks(Vec::new());
        let c2 = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .with_obs(obs_resumed.clone());
        let (mut j, loaded) = RunJournal::open_or_create(&path, &header).unwrap();
        assert_eq!(loaded.recovered, 20);
        let resumed = c2.run_resumable(&spec(), Some(&mut j), None).unwrap();
        assert_eq!(resumed, baseline);

        let snap = obs_resumed.snapshot().unwrap();
        assert_eq!(
            snap.campaign_section(),
            full,
            "deterministic campaign.* totals must merge to the uninterrupted values"
        );
        // ... while the process-local view shows the split honestly.
        assert_eq!(snap.counter("process.runs_executed"), Some(44));
        assert_eq!(snap.counter("process.runs_recovered"), Some(20));
    }

    /// Records every progress event's sink clock / campaign clock pair and
    /// optionally raises a cancel flag after a fixed number of them.
    #[derive(Debug)]
    struct TimelineSink {
        /// `(t_us, elapsed_micros, finished)` per progress event.
        points: Mutex<Vec<(u64, u64, bool)>>,
        cancel_after: Option<(usize, Arc<AtomicBool>)>,
    }
    impl permea_obs::Sink for TimelineSink {
        fn event(&self, now_micros: u64, event: &permea_obs::Event<'_>) {
            if let permea_obs::Event::Progress(p) = event {
                let mut pts = self.points.lock().unwrap();
                pts.push((now_micros, p.elapsed_micros, p.finished));
                if let Some((after, flag)) = &self.cancel_after {
                    if pts.len() >= *after {
                        flag.store(true, Ordering::Release);
                    }
                }
            }
        }
    }

    /// Regression for the resumed-campaign timeline: progress events must
    /// carry *campaign-relative* timestamps (each session restarting at
    /// zero), not the telemetry handle's epoch clock — the epoch starts at
    /// handle creation and would fold per-process setup time into the
    /// timeline, breaking contiguous stitching of kill/resume sessions.
    #[test]
    fn timeline_events_are_campaign_relative_across_kill_and_resume() {
        // Deliberate gap between telemetry-handle creation and campaign
        // start. An event stamped with the epoch clock carries this gap;
        // a campaign-relative one does not.
        const SETUP_GAP: Duration = Duration::from_millis(50);
        const MIN_GAP_MICROS: u64 = 40_000;

        let f = factory();
        let path = journal_path("timeline-resume");
        let _ = std::fs::remove_file(&path);
        let header = Campaign::new(
            &f,
            CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .journal_header(&spec());

        let run_session = |cancel_after: Option<usize>| {
            let cancel = Arc::new(AtomicBool::new(false));
            let sink = Arc::new(TimelineSink {
                points: Mutex::new(Vec::new()),
                cancel_after: cancel_after.map(|n| (n, cancel.clone())),
            });
            let obs = Obs::with_sinks(vec![sink.clone()]);
            std::thread::sleep(SETUP_GAP);
            let c = Campaign::new(
                &f,
                CampaignConfig {
                    threads: 1,
                    ..Default::default()
                },
            )
            .with_obs(obs);
            let (mut j, _) = RunJournal::open_or_create(&path, &header).unwrap();
            let result = c.run_resumable(&spec(), Some(&mut j), Some(&cancel));
            let points = sink.points.lock().unwrap().clone();
            (points, result)
        };

        let assert_session = |points: &[(u64, u64, bool)], label: &str| {
            assert!(!points.is_empty(), "{label}: no progress events");
            let mut prev = 0u64;
            for &(t_us, elapsed, _) in points {
                assert!(
                    t_us >= elapsed + MIN_GAP_MICROS,
                    "{label}: elapsed_micros {elapsed} is epoch-relative \
                     (sink clock {t_us})"
                );
                assert!(
                    elapsed >= prev,
                    "{label}: campaign clock went backwards ({prev} -> {elapsed})"
                );
                prev = elapsed;
            }
        };

        // Session 1: killed after 20 progress events.
        let (first, result) = run_session(Some(20));
        assert!(
            matches!(result, Err(FiError::Interrupted { .. })),
            "session 1 should be interrupted, got {result:?}"
        );
        assert_session(&first, "session 1");

        // Session 2: resumes the journal and finishes. Its campaign clock
        // restarts at zero — still bounded away from the epoch clock.
        let (second, result) = run_session(None);
        result.expect("resume completes");
        assert_session(&second, "session 2");
        assert!(
            second.last().is_some_and(|&(_, _, finished)| finished),
            "resumed session must emit the final progress event"
        );
        let _ = std::fs::remove_file(&path);
    }
}
