//! Process-environment hardening: atomic artifact writes, a free-disk
//! preflight, and worker resource limits.
//!
//! Everything the executor persists beyond the journal — `result.json`,
//! `metrics.json`, report files, merged journals — goes through
//! [`atomic_write`]: the bytes land in a sibling `*.tmp` file, are
//! `fsync`ed, and only then renamed over the destination, so a crash (or an
//! injected [`crate::chaos`] fault) mid-write can never leave a torn
//! artifact where a good one stood.
//!
//! [`free_disk_bytes`] backs the campaign's preflight check: a campaign
//! that would run out of journal space is refused up front with the typed
//! [`crate::error::FiError::DiskSpaceLow`] instead of aborting mid-run on
//! `ENOSPC`.
//!
//! [`apply_rlimits_from_env`] caps a worker process's address space and CPU
//! time from the `PERMEA_RLIMIT_AS_BYTES` / `PERMEA_RLIMIT_CPU_SECS`
//! environment variables the supervisor sets on the pool command — an
//! injection run that leaks unboundedly is killed by the kernel (and
//! classified via [`crate::outcome::RunOutcome::crash_cause`]) instead of
//! taking the host down.
//!
//! The `statvfs`/`setrlimit` calls need FFI; the `unsafe` is confined to
//! the private `ffi` submodule (the crate is otherwise `deny(unsafe_code)`)
//! and compiled only on Linux — elsewhere the helpers degrade to no-ops.

use crate::chaos::ChaosInjector;
use crate::error::FiError;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Environment variable carrying the worker address-space cap in bytes
/// (`RLIMIT_AS`).
pub const RLIMIT_AS_ENV: &str = "PERMEA_RLIMIT_AS_BYTES";
/// Environment variable carrying the worker CPU-time cap in seconds
/// (`RLIMIT_CPU`).
pub const RLIMIT_CPU_ENV: &str = "PERMEA_RLIMIT_CPU_SECS";

/// Atomically replaces `path` with `bytes`: write to a sibling `*.tmp`,
/// `fsync`, then rename into place. On any failure the destination is
/// untouched and the temp file is cleaned up (best effort).
///
/// # Errors
///
/// Returns [`FiError::ArtifactWrite`] naming the destination path.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), FiError> {
    atomic_write_chaos(path, bytes, None)
}

/// [`atomic_write`] with an optional chaos hook: when the injector's plan
/// schedules an `artifact-fail` for this file name, the write fails with
/// the same typed error a real I/O failure would produce — before any byte
/// reaches the destination.
///
/// # Errors
///
/// Returns [`FiError::ArtifactWrite`] on real or injected failure.
pub fn atomic_write_chaos(
    path: impl AsRef<Path>,
    bytes: &[u8],
    chaos: Option<&ChaosInjector>,
) -> Result<(), FiError> {
    let path = path.as_ref();
    let artifact_err = |message: String| FiError::ArtifactWrite {
        path: path.display().to_string(),
        message,
    };
    if let Some(injector) = chaos {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if injector.fail_artifact(&name) {
            return Err(artifact_err("injected artifact-write fault (chaos)".into()));
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write_tmp = || -> std::io::Result<()> {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()
    };
    if let Err(e) = write_tmp() {
        let _ = std::fs::remove_file(&tmp);
        return Err(artifact_err(format!("writing {}: {e}", tmp.display())));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(artifact_err(format!(
            "renaming {} into place: {e}",
            tmp.display()
        )));
    }
    Ok(())
}

/// Free bytes available to unprivileged writes on the filesystem holding
/// `path` (`statvfs`'s `f_bavail × f_frsize`). `None` when the platform
/// has no `statvfs` or the call fails — callers treat that as "unknown,
/// proceed".
pub fn free_disk_bytes(path: impl AsRef<Path>) -> Option<u64> {
    imp::free_disk_bytes(path.as_ref())
}

/// Applies the worker resource limits named by [`RLIMIT_AS_ENV`] and
/// [`RLIMIT_CPU_ENV`], when set. Returns a description of each limit
/// actually applied, for logging. Unparseable values and unsupported
/// platforms are skipped silently — a missing cap degrades to the previous
/// (uncapped) behaviour, never to a crash.
pub fn apply_rlimits_from_env() -> Vec<String> {
    let mut applied = Vec::new();
    if let Some(bytes) = read_env_u64(RLIMIT_AS_ENV) {
        if imp::set_rlimit(imp::RLIMIT_AS, bytes) {
            applied.push(format!("RLIMIT_AS={bytes}"));
        }
    }
    if let Some(secs) = read_env_u64(RLIMIT_CPU_ENV) {
        if imp::set_rlimit(imp::RLIMIT_CPU, secs) {
            applied.push(format!("RLIMIT_CPU={secs}"));
        }
    }
    applied
}

fn read_env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

#[cfg(target_os = "linux")]
mod imp {
    use std::ffi::CString;
    use std::os::unix::ffi::OsStrExt;
    use std::path::Path;

    pub const RLIMIT_CPU: i32 = 0;
    pub const RLIMIT_AS: i32 = 9;

    // The only unsafe in the crate: two thin libc wrappers with the glibc
    // x86-64 ABI spelled out locally (no libc crate in the offline vendor
    // set). Layouts match `struct statvfs` / `struct rlimit` on 64-bit
    // Linux, where every field is 8 bytes wide.
    #[allow(unsafe_code)]
    mod ffi {
        #[repr(C)]
        pub struct StatVfs {
            pub f_bsize: u64,
            pub f_frsize: u64,
            pub f_blocks: u64,
            pub f_bfree: u64,
            pub f_bavail: u64,
            pub f_files: u64,
            pub f_ffree: u64,
            pub f_favail: u64,
            pub f_fsid: u64,
            pub f_flag: u64,
            pub f_namemax: u64,
            pub reserved: [i32; 6],
        }

        #[repr(C)]
        pub struct RLimit {
            pub rlim_cur: u64,
            pub rlim_max: u64,
        }

        extern "C" {
            fn statvfs(path: *const std::os::raw::c_char, buf: *mut StatVfs) -> i32;
            fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        }

        pub fn statvfs_call(path: &std::ffi::CStr) -> Option<StatVfs> {
            let mut buf = std::mem::MaybeUninit::<StatVfs>::uninit();
            // SAFETY: `path` is a valid NUL-terminated string and `buf` is
            // a properly sized, writable statvfs buffer; statvfs only
            // writes into it.
            let rc = unsafe { statvfs(path.as_ptr(), buf.as_mut_ptr()) };
            // SAFETY: on rc == 0 statvfs has fully initialised the buffer.
            (rc == 0).then(|| unsafe { buf.assume_init() })
        }

        pub fn setrlimit_call(resource: i32, limit: u64) -> bool {
            let rlim = RLimit {
                rlim_cur: limit,
                rlim_max: limit,
            };
            // SAFETY: `rlim` is a valid, fully initialised rlimit struct
            // that outlives the call.
            unsafe { setrlimit(resource, &rlim) == 0 }
        }
    }

    pub fn free_disk_bytes(path: &Path) -> Option<u64> {
        // statvfs wants an existing path; fall back to the parent when the
        // target file has not been created yet.
        let probe = if path.exists() {
            path
        } else {
            path.parent().filter(|p| !p.as_os_str().is_empty())?
        };
        let cpath = CString::new(probe.as_os_str().as_bytes()).ok()?;
        let vfs = ffi::statvfs_call(&cpath)?;
        Some(vfs.f_bavail.saturating_mul(vfs.f_frsize))
    }

    pub fn set_rlimit(resource: i32, limit: u64) -> bool {
        ffi::setrlimit_call(resource, limit)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::path::Path;

    pub const RLIMIT_CPU: i32 = 0;
    pub const RLIMIT_AS: i32 = 9;

    pub fn free_disk_bytes(_path: &Path) -> Option<u64> {
        None
    }

    pub fn set_rlimit(_resource: i32, _limit: u64) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosInjector, ChaosPlan};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("permea_env_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("artifact.json");
        atomic_write(&path, b"first").expect("first write");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("readable"), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir listing")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_failure_keeps_previous_artifact() {
        let dir = tmp_dir("chaos_artifact");
        let path = dir.join("result.json");
        atomic_write(&path, b"good").expect("initial write");
        let plan = ChaosPlan::parse("artifact-fail=result.json").expect("plan");
        let injector = ChaosInjector::new(plan);
        let err = atomic_write_chaos(&path, b"torn", Some(&injector))
            .expect_err("injected fault surfaces");
        assert!(matches!(err, FiError::ArtifactWrite { .. }));
        assert_eq!(
            std::fs::read(&path).expect("previous artifact intact"),
            b"good"
        );
        // The fault is consumed: the retry writes cleanly.
        atomic_write_chaos(&path, b"fresh", Some(&injector)).expect("retry succeeds");
        assert_eq!(std::fs::read(&path).expect("readable"), b"fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn free_disk_reports_something_on_linux() {
        let dir = tmp_dir("statvfs");
        let free = free_disk_bytes(&dir);
        if cfg!(target_os = "linux") {
            assert!(free.expect("statvfs works on linux") > 0);
        }
        // Missing file falls back to its parent.
        let missing = dir.join("journal.jsonl");
        assert_eq!(free.is_some(), free_disk_bytes(missing).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rlimits_with_no_env_are_a_no_op() {
        assert!(apply_rlimits_from_env().is_empty());
    }
}
