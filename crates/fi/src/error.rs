//! Error types for campaign specification and execution.

use std::error::Error;
use std::fmt;

/// Error produced while preparing or executing an injection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FiError {
    /// A target's module name did not resolve in the simulation.
    UnknownModule(String),
    /// A target's input-signal name is not an input of the module.
    UnknownInputPort {
        /// Module name.
        module: String,
        /// Signal name that failed to resolve as an input port.
        signal: String,
    },
    /// A signal-scoped target did not resolve on the bus.
    UnknownSignal(String),
    /// The campaign spec is empty along some axis.
    EmptySpec(&'static str),
    /// The Golden Run never terminated within the configured cap.
    GoldenRunDidNotTerminate {
        /// Workload case index.
        case: usize,
    },
    /// A worker thread panicked.
    WorkerPanicked,
}

impl fmt::Display for FiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiError::UnknownModule(m) => write!(f, "no module named `{m}` in the simulation"),
            FiError::UnknownInputPort { module, signal } => {
                write!(f, "`{signal}` is not an input signal of module `{module}`")
            }
            FiError::UnknownSignal(s) => write!(f, "no signal named `{s}` on the bus"),
            FiError::EmptySpec(axis) => write!(f, "campaign spec has no {axis}"),
            FiError::GoldenRunDidNotTerminate { case } => {
                write!(f, "golden run for case {case} did not terminate within the cap")
            }
            FiError::WorkerPanicked => write!(f, "an injection worker thread panicked"),
        }
    }
}

impl Error for FiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(FiError::UnknownModule("CALC".into()).to_string().contains("CALC"));
        assert!(FiError::UnknownInputPort { module: "A".into(), signal: "s".into() }
            .to_string()
            .contains("input signal"));
        assert!(FiError::EmptySpec("targets").to_string().contains("targets"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<FiError>();
    }
}
