//! Error types for campaign specification and execution.

use std::error::Error;
use std::fmt;

/// Error produced while preparing or executing an injection campaign.
///
/// Not `Eq` because [`FiError::QuarantineThresholdExceeded`] carries the
/// configured `f64` fraction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FiError {
    /// A target's module name did not resolve in the simulation.
    UnknownModule(String),
    /// A target's input-signal name is not an input of the module.
    UnknownInputPort {
        /// Module name.
        module: String,
        /// Signal name that failed to resolve as an input port.
        signal: String,
    },
    /// A signal-scoped target did not resolve on the bus.
    UnknownSignal(String),
    /// The campaign spec is empty along some axis.
    EmptySpec(&'static str),
    /// The same (module, input signal) target appears twice in the spec;
    /// its runs would be double-counted, silently inflating `n_inj`.
    DuplicateTarget {
        /// Module name of the repeated target.
        module: String,
        /// Input-signal name of the repeated target.
        signal: String,
    },
    /// The same injection instant appears twice in `times_ms`; its runs
    /// would be double-counted, silently inflating `n_inj`.
    DuplicateInstant {
        /// The repeated instant, in milliseconds.
        time_ms: u64,
    },
    /// An error model in the spec carries unusable parameters (a bit
    /// position outside the 16-bit word, a zero-width burst, an identity
    /// mask, a dead intermittent schedule).
    InvalidErrorModel {
        /// Index of the offending model in `models`.
        index: usize,
        /// Display form of the offending model.
        model: String,
        /// Which constraint the model violates.
        reason: &'static str,
    },
    /// The spec carries an adaptive sampling plan whose parameters are
    /// unusable (zero batch, a confidence target outside (0, 1), a
    /// non-finite z, or a run floor above the run cap).
    InvalidAdaptivePlan {
        /// Which constraint the plan violates.
        reason: &'static str,
    },
    /// The Golden Run never terminated within the configured cap.
    GoldenRunDidNotTerminate {
        /// Workload case index.
        case: usize,
    },
    /// The configured horizon exceeds the factory's run-length cap, so the
    /// horizon could never be honoured — the run would be silently truncated
    /// at the cap instead.
    HorizonExceedsCap {
        /// The configured horizon, in milliseconds.
        horizon_ms: u64,
        /// The factory's [`crate::campaign::SystemFactory::max_run_ms`].
        max_run_ms: u64,
    },
    /// An injection instant lies at or beyond the end of every run it would
    /// be part of, so the injection could never fire.
    UnreachableInstant {
        /// The offending injection instant, in milliseconds.
        time_ms: u64,
        /// The limit the instant collides with: the configured horizon, or
        /// the golden-run length of `case`.
        limit_ms: u64,
        /// The workload case whose golden run ends too early, or `None` when
        /// the campaign-wide horizon is the limit.
        case: Option<usize>,
    },
    /// A worker thread panicked outside any injection run — i.e. the
    /// campaign *infrastructure* died, not the simulated software. Panics
    /// raised inside an injection run are quarantined as
    /// [`crate::outcome::RunOutcome::Panicked`] instead.
    WorkerPanicked,
    /// The system factory built a simulation without tracing enabled, so no
    /// Golden Run Comparison is possible.
    TracingDisabled {
        /// Workload case index whose simulation lacked traces.
        case: usize,
    },
    /// Too many runs were quarantined (panicked or hung): the breakage is
    /// systematic, not incidental, and the permeability estimates would be
    /// built on a biased sample.
    QuarantineThresholdExceeded {
        /// Number of quarantined runs.
        quarantined: u64,
        /// Total runs executed so far.
        total: u64,
        /// The configured [`crate::campaign::CampaignConfig::max_quarantined_fraction`].
        max_fraction: f64,
    },
    /// The campaign was interrupted by a cancellation request (e.g. SIGINT);
    /// completed runs are preserved in the journal.
    Interrupted {
        /// Runs finished (and journaled) before the interruption.
        completed: u64,
        /// Total runs the spec expands to.
        total: u64,
    },
    /// The configured journal fsync interval is zero: the journal would
    /// never be made durable.
    InvalidFsyncInterval,
    /// The worker-process pool failed as *infrastructure*: a worker broke
    /// the IPC protocol, or setup failed in a way retries and the in-process
    /// fallback could not absorb. Deaths of individual injection runs are
    /// never this error — they are classified as
    /// [`crate::outcome::RunOutcome::Crashed`] instead.
    WorkerProcess {
        /// Description of the infrastructure failure.
        message: String,
    },
    /// Reading or writing the run journal failed.
    Journal {
        /// Description of the underlying I/O or parse failure.
        message: String,
    },
    /// A journal record failed its CRC32 (or did not parse) *mid-file* —
    /// with intact records after it, so this is silent corruption (bit rot,
    /// a bad copy), not the torn tail of an interrupted write. The journal
    /// is rejected rather than silently resumed over a hole.
    JournalCorrupt {
        /// 1-based line number of the first corrupt record in the file
        /// (line 1 is the header).
        line: usize,
    },
    /// An existing journal was written by a different campaign — its header
    /// does not match the spec, seed or horizon being resumed.
    JournalMismatch {
        /// The header field that disagreed.
        field: &'static str,
    },
    /// Adaptive execution was requested but the campaign spec carries no
    /// adaptive sampling plan to execute.
    AdaptivePlanMissing,
    /// A `--shard i/n` specification could not be parsed or is out of range.
    InvalidShard {
        /// Which constraint the shard specification violates.
        reason: String,
    },
    /// Two journals being merged carry *different* records for the same
    /// coordinate — they came from campaigns that disagree, so a merged
    /// journal would silently mix incompatible results.
    JournalMergeConflict {
        /// The flat coordinate index both journals claim with different data.
        k: u64,
    },
    /// `merge_journals` was handed an empty input list: there is no header
    /// to copy and nothing to merge.
    JournalMergeEmpty,
    /// A journal append kept failing with `ENOSPC` after the bounded retry
    /// budget was spent: the disk is full. The journal's on-disk tail stays
    /// parseable (at worst torn), so the campaign can resume once space is
    /// freed.
    JournalDiskFull {
        /// Append retries performed before giving up.
        retries: u32,
    },
    /// Writing a result artifact (result.json, metrics.json, a report file)
    /// failed. The write is atomic (temp + rename), so the previous artifact
    /// — if any — is still intact.
    ArtifactWrite {
        /// Path of the artifact that could not be written.
        path: String,
        /// Description of the underlying I/O failure.
        message: String,
    },
    /// The preflight free-disk-space check failed before the campaign
    /// started: running would likely abort mid-journal on `ENOSPC`.
    DiskSpaceLow {
        /// Free bytes available on the journal's filesystem.
        free_bytes: u64,
        /// The minimum the campaign insists on before starting.
        needed_bytes: u64,
    },
}

impl FiError {
    /// `true` for failures of the *environment* the executor runs in — a
    /// full or failing disk, an unwritable artifact — rather than of the
    /// campaign or the system under test. Binaries map these to exit code 4
    /// (see the exit-code contract in `permea-analysis`): the campaign state
    /// is intact and resumable once the environment is fixed.
    pub fn is_environment_failure(&self) -> bool {
        matches!(
            self,
            FiError::Journal { .. }
                | FiError::JournalDiskFull { .. }
                | FiError::ArtifactWrite { .. }
                | FiError::DiskSpaceLow { .. }
        )
    }
}

impl fmt::Display for FiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiError::UnknownModule(m) => write!(f, "no module named `{m}` in the simulation"),
            FiError::UnknownInputPort { module, signal } => {
                write!(f, "`{signal}` is not an input signal of module `{module}`")
            }
            FiError::UnknownSignal(s) => write!(f, "no signal named `{s}` on the bus"),
            FiError::EmptySpec(axis) => write!(f, "campaign spec has no {axis}"),
            FiError::DuplicateTarget { module, signal } => write!(
                f,
                "target `{module}:{signal}` appears more than once in the spec; \
                 duplicated targets double-count injections and bias n_inj"
            ),
            FiError::DuplicateInstant { time_ms } => write!(
                f,
                "injection instant {time_ms} ms appears more than once in the spec; \
                 duplicated instants double-count injections and bias n_inj"
            ),
            FiError::InvalidErrorModel {
                index,
                model,
                reason,
            } => write!(f, "error model #{index} (`{model}`) is invalid: {reason}"),
            FiError::InvalidAdaptivePlan { reason } => {
                write!(f, "invalid adaptive sampling plan: {reason}")
            }
            FiError::GoldenRunDidNotTerminate { case } => {
                write!(
                    f,
                    "golden run for case {case} did not terminate within the cap"
                )
            }
            FiError::HorizonExceedsCap {
                horizon_ms,
                max_run_ms,
            } => write!(
                f,
                "horizon of {horizon_ms} ms exceeds the factory cap of {max_run_ms} ms; \
                 the run would be silently truncated at the cap"
            ),
            FiError::UnreachableInstant {
                time_ms,
                limit_ms,
                case: Some(case),
            } => write!(
                f,
                "injection instant {time_ms} ms is unreachable: the golden run of case \
                 {case} ends after {limit_ms} ms"
            ),
            FiError::UnreachableInstant {
                time_ms,
                limit_ms,
                case: None,
            } => write!(
                f,
                "injection instant {time_ms} ms is unreachable: it lies at or beyond the \
                 campaign horizon of {limit_ms} ms"
            ),
            FiError::WorkerPanicked => write!(
                f,
                "an injection worker thread panicked outside any injection run"
            ),
            FiError::TracingDisabled { case } => write!(
                f,
                "the factory built case {case} without tracing enabled; \
                 golden-run comparison is impossible"
            ),
            FiError::QuarantineThresholdExceeded {
                quarantined,
                total,
                max_fraction,
            } => write!(
                f,
                "{quarantined} of {total} runs were quarantined (panicked or hung), \
                 exceeding the configured maximum fraction of {max_fraction}"
            ),
            FiError::Interrupted { completed, total } => write!(
                f,
                "campaign interrupted after {completed} of {total} runs; completed \
                 runs are preserved in the journal"
            ),
            FiError::InvalidFsyncInterval => write!(
                f,
                "journal_fsync_interval must be greater than zero; an interval of 0 \
                 would never fsync the journal"
            ),
            FiError::WorkerProcess { message } => {
                write!(f, "worker process pool failure: {message}")
            }
            FiError::Journal { message } => write!(f, "run journal failure: {message}"),
            FiError::JournalCorrupt { line } => write!(
                f,
                "journal record at line {line} is corrupt (CRC or parse failure) but \
                 intact records follow it; refusing to resume over silent corruption"
            ),
            FiError::JournalMismatch { field } => write!(
                f,
                "existing journal belongs to a different campaign ({field} differs); \
                 refusing to resume"
            ),
            FiError::AdaptivePlanMissing => write!(
                f,
                "adaptive execution requested but the campaign spec has no \
                 adaptive sampling plan"
            ),
            FiError::InvalidShard { reason } => write!(f, "invalid shard spec: {reason}"),
            FiError::JournalMergeConflict { k } => write!(
                f,
                "journals disagree about coordinate {k}: both carry a record for it \
                 with different contents; refusing to merge campaigns that conflict"
            ),
            FiError::JournalMergeEmpty => write!(
                f,
                "journal merge needs at least one input journal; none were given"
            ),
            FiError::JournalDiskFull { retries } => write!(
                f,
                "journal append failed with ENOSPC after {retries} retries: the disk \
                 is full; free space and resume — journaled runs are preserved"
            ),
            FiError::ArtifactWrite { path, message } => write!(
                f,
                "cannot write artifact {path}: {message}; any previous version \
                 is intact (writes are atomic)"
            ),
            FiError::DiskSpaceLow {
                free_bytes,
                needed_bytes,
            } => write!(
                f,
                "only {free_bytes} bytes free on the journal filesystem, below the \
                 {needed_bytes}-byte preflight minimum; refusing to start a campaign \
                 that would abort on ENOSPC"
            ),
        }
    }
}

impl Error for FiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(FiError::UnknownModule("CALC".into())
            .to_string()
            .contains("CALC"));
        assert!(FiError::UnknownInputPort {
            module: "A".into(),
            signal: "s".into()
        }
        .to_string()
        .contains("input signal"));
        assert!(FiError::EmptySpec("targets")
            .to_string()
            .contains("targets"));
        let dup_target = FiError::DuplicateTarget {
            module: "CALC".into(),
            signal: "pulscnt".into(),
        };
        assert!(dup_target.to_string().contains("CALC:pulscnt"));
        assert!(FiError::DuplicateInstant { time_ms: 500 }
            .to_string()
            .contains("500"));
        assert!(FiError::InvalidAdaptivePlan {
            reason: "batch_size must be greater than zero"
        }
        .to_string()
        .contains("batch_size"));
        let bad_model = FiError::InvalidErrorModel {
            index: 2,
            model: "burst15+4".into(),
            reason: "burst start + width must not exceed 16",
        };
        assert!(bad_model.to_string().contains("burst15+4"));
        assert!(bad_model.to_string().contains("#2"));
        assert!(FiError::HorizonExceedsCap {
            horizon_ms: 90_000,
            max_run_ms: 60_000
        }
        .to_string()
        .contains("90000"));
        let against_horizon = FiError::UnreachableInstant {
            time_ms: 50_000,
            limit_ms: 6_000,
            case: None,
        };
        assert!(against_horizon.to_string().contains("50000"));
        assert!(against_horizon.to_string().contains("horizon"));
        let against_golden = FiError::UnreachableInstant {
            time_ms: 7_000,
            limit_ms: 6_400,
            case: Some(3),
        };
        assert!(against_golden.to_string().contains("case"));
        assert!(against_golden.to_string().contains("6400"));
        assert!(FiError::TracingDisabled { case: 4 }
            .to_string()
            .contains("4"));
        let threshold = FiError::QuarantineThresholdExceeded {
            quarantined: 30,
            total: 100,
            max_fraction: 0.25,
        };
        assert!(threshold.to_string().contains("30"));
        assert!(threshold.to_string().contains("0.25"));
        let interrupted = FiError::Interrupted {
            completed: 12,
            total: 8_000,
        };
        assert!(interrupted.to_string().contains("12"));
        assert!(interrupted.to_string().contains("journal"));
        assert!(FiError::Journal {
            message: "disk full".into()
        }
        .to_string()
        .contains("disk full"));
        assert!(FiError::InvalidFsyncInterval.to_string().contains("fsync"));
        assert!(FiError::WorkerProcess {
            message: "worker replied to the wrong coordinate".into()
        }
        .to_string()
        .contains("wrong coordinate"));
        let corrupt = FiError::JournalCorrupt { line: 17 };
        assert!(corrupt.to_string().contains("17"));
        assert!(corrupt.to_string().contains("corrupt"));
        assert!(FiError::JournalMismatch {
            field: "master_seed"
        }
        .to_string()
        .contains("master_seed"));
        assert!(FiError::AdaptivePlanMissing
            .to_string()
            .contains("adaptive"));
        assert!(FiError::InvalidShard {
            reason: "shard index 3 is out of range for 2 shards".into()
        }
        .to_string()
        .contains("out of range"));
        let conflict = FiError::JournalMergeConflict { k: 42 };
        assert!(conflict.to_string().contains("42"));
        assert!(conflict.to_string().contains("merge"));
        assert!(FiError::JournalMergeEmpty.to_string().contains("input"));
        let disk_full = FiError::JournalDiskFull { retries: 3 };
        assert!(disk_full.to_string().contains("3"));
        assert!(disk_full.to_string().contains("ENOSPC"));
        let artifact = FiError::ArtifactWrite {
            path: "out/result.json".into(),
            message: "permission denied".into(),
        };
        assert!(artifact.to_string().contains("out/result.json"));
        assert!(artifact.to_string().contains("permission denied"));
        let low = FiError::DiskSpaceLow {
            free_bytes: 4096,
            needed_bytes: 8_388_608,
        };
        assert!(low.to_string().contains("4096"));
        assert!(low.to_string().contains("8388608"));
    }

    #[test]
    fn environment_failures_are_classified() {
        assert!(FiError::JournalDiskFull { retries: 3 }.is_environment_failure());
        assert!(FiError::Journal {
            message: "fsync failed".into()
        }
        .is_environment_failure());
        assert!(FiError::ArtifactWrite {
            path: "x".into(),
            message: "y".into()
        }
        .is_environment_failure());
        assert!(FiError::DiskSpaceLow {
            free_bytes: 0,
            needed_bytes: 1
        }
        .is_environment_failure());
        assert!(!FiError::JournalMergeEmpty.is_environment_failure());
        assert!(!FiError::WorkerPanicked.is_environment_failure());
        assert!(!FiError::QuarantineThresholdExceeded {
            quarantined: 1,
            total: 2,
            max_fraction: 0.1
        }
        .is_environment_failure());
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<FiError>();
    }
}
