//! Error types for campaign specification and execution.

use std::error::Error;
use std::fmt;

/// Error produced while preparing or executing an injection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FiError {
    /// A target's module name did not resolve in the simulation.
    UnknownModule(String),
    /// A target's input-signal name is not an input of the module.
    UnknownInputPort {
        /// Module name.
        module: String,
        /// Signal name that failed to resolve as an input port.
        signal: String,
    },
    /// A signal-scoped target did not resolve on the bus.
    UnknownSignal(String),
    /// The campaign spec is empty along some axis.
    EmptySpec(&'static str),
    /// The Golden Run never terminated within the configured cap.
    GoldenRunDidNotTerminate {
        /// Workload case index.
        case: usize,
    },
    /// The configured horizon exceeds the factory's run-length cap, so the
    /// horizon could never be honoured — the run would be silently truncated
    /// at the cap instead.
    HorizonExceedsCap {
        /// The configured horizon, in milliseconds.
        horizon_ms: u64,
        /// The factory's [`crate::campaign::SystemFactory::max_run_ms`].
        max_run_ms: u64,
    },
    /// An injection instant lies at or beyond the end of every run it would
    /// be part of, so the injection could never fire.
    UnreachableInstant {
        /// The offending injection instant, in milliseconds.
        time_ms: u64,
        /// The limit the instant collides with: the configured horizon, or
        /// the golden-run length of `case`.
        limit_ms: u64,
        /// The workload case whose golden run ends too early, or `None` when
        /// the campaign-wide horizon is the limit.
        case: Option<usize>,
    },
    /// A worker thread panicked.
    WorkerPanicked,
}

impl fmt::Display for FiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiError::UnknownModule(m) => write!(f, "no module named `{m}` in the simulation"),
            FiError::UnknownInputPort { module, signal } => {
                write!(f, "`{signal}` is not an input signal of module `{module}`")
            }
            FiError::UnknownSignal(s) => write!(f, "no signal named `{s}` on the bus"),
            FiError::EmptySpec(axis) => write!(f, "campaign spec has no {axis}"),
            FiError::GoldenRunDidNotTerminate { case } => {
                write!(
                    f,
                    "golden run for case {case} did not terminate within the cap"
                )
            }
            FiError::HorizonExceedsCap {
                horizon_ms,
                max_run_ms,
            } => write!(
                f,
                "horizon of {horizon_ms} ms exceeds the factory cap of {max_run_ms} ms; \
                 the run would be silently truncated at the cap"
            ),
            FiError::UnreachableInstant {
                time_ms,
                limit_ms,
                case: Some(case),
            } => write!(
                f,
                "injection instant {time_ms} ms is unreachable: the golden run of case \
                 {case} ends after {limit_ms} ms"
            ),
            FiError::UnreachableInstant {
                time_ms,
                limit_ms,
                case: None,
            } => write!(
                f,
                "injection instant {time_ms} ms is unreachable: it lies at or beyond the \
                 campaign horizon of {limit_ms} ms"
            ),
            FiError::WorkerPanicked => write!(f, "an injection worker thread panicked"),
        }
    }
}

impl Error for FiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(FiError::UnknownModule("CALC".into())
            .to_string()
            .contains("CALC"));
        assert!(FiError::UnknownInputPort {
            module: "A".into(),
            signal: "s".into()
        }
        .to_string()
        .contains("input signal"));
        assert!(FiError::EmptySpec("targets")
            .to_string()
            .contains("targets"));
        assert!(FiError::HorizonExceedsCap {
            horizon_ms: 90_000,
            max_run_ms: 60_000
        }
        .to_string()
        .contains("90000"));
        let against_horizon = FiError::UnreachableInstant {
            time_ms: 50_000,
            limit_ms: 6_000,
            case: None,
        };
        assert!(against_horizon.to_string().contains("50000"));
        assert!(against_horizon.to_string().contains("horizon"));
        let against_golden = FiError::UnreachableInstant {
            time_ms: 7_000,
            limit_ms: 6_400,
            case: Some(3),
        };
        assert!(against_golden.to_string().contains("case"));
        assert!(against_golden.to_string().contains("6400"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<FiError>();
    }
}
