//! Classified outcomes of injection runs.
//!
//! A SWIFI campaign deliberately feeds software values it was never built
//! to handle, so individual runs *will* sometimes die: a module panics on a
//! corrupted input, or an injected error pushes a computation into a loop
//! that never lets simulated time advance. Following the
//! failures-are-data principle, the campaign executor does not abort on
//! such runs — it quarantines them, records a classified [`RunOutcome`] and
//! carries on, so one brittle module variant cannot take down a
//! 52 000-run campaign.

use serde::{Deserialize, Serialize};
use std::any::Any;

/// How one injection run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run executed to the golden horizon and was compared normally.
    Completed,
    /// The run unwound with a panic (e.g. a module crashed on the corrupted
    /// input). The run is quarantined: no divergence data exists for it.
    Panicked {
        /// The panic message, when one could be extracted from the payload.
        message: String,
    },
    /// The run tripped the stalled-clock watchdog: simulated time stopped
    /// making progress (typically an injected value made a module-internal
    /// loop unbounded). The run is quarantined.
    ///
    /// Under process isolation a run killed at the supervisor's *hard*
    /// wall-clock deadline is also classified `Hung` — the worker never got
    /// a chance to observe its own clock, so `last_tick_ms` is 0.
    Hung {
        /// The last simulated tick at which progress was observed, in ms
        /// (0 when the supervisor killed the run at the hard deadline).
        last_tick_ms: u64,
    },
    /// The run took its whole worker *process* down — `abort()`, a stack
    /// overflow, an OOM kill — and the death was reproducible (or the retry
    /// budget ran out). Only produced under
    /// [`crate::process::IsolationMode::Process`]; in-process campaigns die
    /// with the run instead. The run is quarantined.
    Crashed {
        /// The signal that terminated the worker (e.g. 6 for SIGABRT), when
        /// the platform reports one.
        signal: Option<i32>,
        /// The worker's exit code, when it exited rather than being
        /// signalled.
        exit_code: Option<i32>,
    },
}

/// Derived cause of a [`RunOutcome::Crashed`] worker death, classified from
/// the recorded signal and exit code. Deliberately *not* serialised: the
/// wire format of `RunOutcome` is pinned by the byte-identical-resume
/// contract, so the cause is recomputed from the stored fields instead of
/// stored alongside them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashCause {
    /// SIGKILL that was *not* the supervisor's deadline (deadline kills are
    /// classified [`RunOutcome::Hung`] first): the kernel OOM killer, an
    /// `RLIMIT_AS`-driven kill, or an external `kill -9`.
    OomKilled,
    /// SIGXCPU: the worker exhausted its `RLIMIT_CPU` budget.
    CpuLimit,
    /// SIGABRT: `abort()` — including Rust's allocation-failure abort when
    /// `RLIMIT_AS` refuses an allocation.
    Aborted,
    /// SIGSEGV or SIGBUS: a memory fault (e.g. a stack overflow hitting the
    /// guard page).
    MemoryFault,
    /// Any other signal or a plain non-zero exit.
    Other,
}

impl CrashCause {
    /// A short human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CrashCause::OomKilled => "oom-killed",
            CrashCause::CpuLimit => "cpu-limit",
            CrashCause::Aborted => "aborted",
            CrashCause::MemoryFault => "memory-fault",
            CrashCause::Other => "other",
        }
    }
}

impl RunOutcome {
    /// `true` for [`RunOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// `true` for any outcome other than [`RunOutcome::Completed`]: the run
    /// produced no usable comparison and is excluded from estimates.
    pub fn is_quarantined(&self) -> bool {
        !self.is_completed()
    }

    /// Classifies a [`RunOutcome::Crashed`] death into a [`CrashCause`];
    /// `None` for every other outcome.
    pub fn crash_cause(&self) -> Option<CrashCause> {
        let RunOutcome::Crashed { signal, .. } = self else {
            return None;
        };
        Some(match signal {
            Some(9) => CrashCause::OomKilled,
            Some(24) => CrashCause::CpuLimit,
            Some(6) => CrashCause::Aborted,
            Some(7) | Some(11) => CrashCause::MemoryFault,
            _ => CrashCause::Other,
        })
    }
}

/// Classifies the payload of an unwound injection run: a typed
/// [`permea_runtime::watchdog::StalledClock`] payload means the watchdog
/// declared the run hung; anything else is an ordinary panic, with the
/// message recovered when the payload is a string.
pub fn classify_unwind(payload: Box<dyn Any + Send>) -> RunOutcome {
    match payload.downcast::<permea_runtime::watchdog::StalledClock>() {
        Ok(stalled) => RunOutcome::Hung {
            last_tick_ms: stalled.last_tick_ms,
        },
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            RunOutcome::Panicked { message }
        }
    }
}

/// Per-class run counts for a whole campaign.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeTally {
    /// Runs that completed and entered the estimates.
    pub completed: u64,
    /// Runs quarantined because they panicked.
    pub panicked: u64,
    /// Runs quarantined because the stalled-clock watchdog tripped (or the
    /// process-isolation supervisor killed them at the hard deadline).
    pub hung: u64,
    /// Runs quarantined because they took their worker process down.
    pub crashed: u64,
}

impl OutcomeTally {
    /// Counts one outcome.
    pub fn record(&mut self, outcome: &RunOutcome) {
        match outcome {
            RunOutcome::Completed => self.completed += 1,
            RunOutcome::Panicked { .. } => self.panicked += 1,
            RunOutcome::Hung { .. } => self.hung += 1,
            RunOutcome::Crashed { .. } => self.crashed += 1,
        }
    }

    /// Total runs tallied.
    pub fn total(&self) -> u64 {
        self.completed + self.panicked + self.hung + self.crashed
    }

    /// Runs that produced no usable comparison.
    pub fn quarantined(&self) -> u64 {
        self.panicked + self.hung + self.crashed
    }

    /// Quarantined fraction of all tallied runs (0 when nothing ran).
    pub fn quarantined_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.quarantined() as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    #[test]
    fn outcome_predicates() {
        assert!(RunOutcome::Completed.is_completed());
        assert!(!RunOutcome::Completed.is_quarantined());
        assert!(RunOutcome::Panicked {
            message: "x".into()
        }
        .is_quarantined());
        assert!(RunOutcome::Hung { last_tick_ms: 3 }.is_quarantined());
        assert!(RunOutcome::Crashed {
            signal: Some(9),
            exit_code: None
        }
        .is_quarantined());
    }

    #[test]
    fn classify_recovers_panic_messages() {
        let static_payload = catch_unwind(|| panic!("plain static message")).unwrap_err();
        assert_eq!(
            classify_unwind(static_payload),
            RunOutcome::Panicked {
                message: "plain static message".into()
            }
        );
        let formatted = catch_unwind(|| panic!("value was {}", 17)).unwrap_err();
        assert_eq!(
            classify_unwind(formatted),
            RunOutcome::Panicked {
                message: "value was 17".into()
            }
        );
    }

    #[test]
    fn classify_spots_stalled_clock_payloads() {
        let payload = catch_unwind(|| {
            std::panic::panic_any(permea_runtime::watchdog::StalledClock { last_tick_ms: 812 })
        })
        .unwrap_err();
        assert_eq!(
            classify_unwind(payload),
            RunOutcome::Hung { last_tick_ms: 812 }
        );
    }

    #[test]
    fn tally_counts_and_fraction() {
        let mut t = OutcomeTally::default();
        assert_eq!(t.quarantined_fraction(), 0.0);
        t.record(&RunOutcome::Completed);
        t.record(&RunOutcome::Completed);
        t.record(&RunOutcome::Completed);
        t.record(&RunOutcome::Panicked {
            message: "m".into(),
        });
        assert_eq!(t.total(), 4);
        assert_eq!(t.quarantined(), 1);
        assert_eq!(t.quarantined_fraction(), 0.25);
        t.record(&RunOutcome::Hung { last_tick_ms: 9 });
        assert_eq!(t.quarantined(), 2);
        assert_eq!(t.total(), 5);
        t.record(&RunOutcome::Crashed {
            signal: Some(6),
            exit_code: None,
        });
        assert_eq!(t.crashed, 1);
        assert_eq!(t.quarantined(), 3);
        assert_eq!(t.total(), 6);
        assert_eq!(t.quarantined_fraction(), 0.5);
    }

    #[test]
    fn crash_causes_classify_from_signals() {
        let crashed = |signal| RunOutcome::Crashed {
            signal,
            exit_code: None,
        };
        assert_eq!(crashed(Some(9)).crash_cause(), Some(CrashCause::OomKilled));
        assert_eq!(crashed(Some(24)).crash_cause(), Some(CrashCause::CpuLimit));
        assert_eq!(crashed(Some(6)).crash_cause(), Some(CrashCause::Aborted));
        assert_eq!(
            crashed(Some(11)).crash_cause(),
            Some(CrashCause::MemoryFault)
        );
        assert_eq!(crashed(Some(15)).crash_cause(), Some(CrashCause::Other));
        assert_eq!(crashed(None).crash_cause(), Some(CrashCause::Other));
        assert_eq!(RunOutcome::Completed.crash_cause(), None);
        assert_eq!(
            RunOutcome::Hung { last_tick_ms: 0 }.crash_cause(),
            None,
            "deadline kills stay Hung, never a crash cause"
        );
        assert_eq!(CrashCause::OomKilled.label(), "oom-killed");
    }

    #[test]
    fn serde_roundtrip() {
        for o in [
            RunOutcome::Completed,
            RunOutcome::Panicked {
                message: "assertion failed".into(),
            },
            RunOutcome::Hung { last_tick_ms: 123 },
            RunOutcome::Crashed {
                signal: Some(9),
                exit_code: None,
            },
            RunOutcome::Crashed {
                signal: None,
                exit_code: Some(134),
            },
        ] {
            let json = serde_json::to_string(&o).unwrap();
            let back: RunOutcome = serde_json::from_str(&json).unwrap();
            assert_eq!(back, o);
        }
    }
}
