//! Campaign specification: what to inject, where, and when.

use crate::adaptive::AdaptivePlan;
use crate::error::FiError;
use crate::model::ErrorModel;
use serde::{Deserialize, Serialize};

/// Where a single injection lands.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectionScope {
    /// Corrupt the value as seen by one module input port only (the default;
    /// implements the paper's "direct errors only" accounting exactly).
    #[default]
    Port,
    /// Corrupt the stored signal value so every consumer observes it (kept
    /// as an ablation mode).
    Signal,
}

/// One injection target: a module input port, addressed by names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortTarget {
    /// Module name as registered in the simulation.
    pub module: String,
    /// Name of the signal bound to the targeted input port.
    pub input_signal: String,
}

impl PortTarget {
    /// Creates a target from names.
    pub fn new(module: impl Into<String>, input_signal: impl Into<String>) -> Self {
        PortTarget {
            module: module.into(),
            input_signal: input_signal.into(),
        }
    }
}

/// A full campaign: the cartesian product
/// `targets × models × times × cases` defines the injection runs.
///
/// The paper's experiment: every module input port, all 16 bit flips, ten
/// times (0.5–5.0 s in 0.5 s steps), 25 workload cases — 4 000 injections
/// per input signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Module input ports to inject into.
    pub targets: Vec<PortTarget>,
    /// Error models applied at each injection (one model per run).
    pub models: Vec<ErrorModel>,
    /// Injection instants in milliseconds from scenario start.
    pub times_ms: Vec<u64>,
    /// Number of workload cases (indices `0..cases` are passed to the
    /// system factory).
    pub cases: usize,
    /// Injection scope (port by default).
    pub scope: InjectionScope,
    /// Adaptive sampling plan. `None` (the default, and what older
    /// serialised specs deserialise to) enumerates the dense grid; `Some`
    /// lets an [`crate::adaptive::AdaptivePlanner`] draw a confidence-driven
    /// subset of the coordinates instead.
    pub adaptive: Option<AdaptivePlan>,
}

impl CampaignSpec {
    /// Creates a spec with the paper's model set (16 bit flips) and times
    /// (0.5–5.0 s), over the given targets and case count.
    pub fn paper_style(targets: Vec<PortTarget>, cases: usize) -> Self {
        CampaignSpec {
            targets,
            models: ErrorModel::all_bit_flips(),
            times_ms: (1..=10).map(|k| k * 500).collect(),
            cases,
            scope: InjectionScope::Port,
            adaptive: None,
        }
    }

    /// Total number of injection runs the spec expands to.
    pub fn run_count(&self) -> usize {
        self.targets.len() * self.models.len() * self.times_ms.len() * self.cases
    }

    /// Injections per target — the paper's `n_inj` (4 000 for the full
    /// experiment).
    pub fn injections_per_target(&self) -> usize {
        self.models.len() * self.times_ms.len() * self.cases
    }

    /// Validates that every axis is non-empty, that no axis double-counts
    /// (a duplicated target or injection instant would silently inflate
    /// `n_inj` and bias every estimate built on it), that every error
    /// model's parameters are usable, and that any adaptive plan is
    /// well-formed.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::EmptySpec`] naming the empty axis,
    /// [`FiError::DuplicateTarget`] / [`FiError::DuplicateInstant`] naming
    /// the first repeated entry, [`FiError::InvalidErrorModel`] naming the
    /// first malformed model, or [`FiError::InvalidAdaptivePlan`].
    pub fn validate(&self) -> Result<(), FiError> {
        if self.targets.is_empty() {
            return Err(FiError::EmptySpec("targets"));
        }
        if self.models.is_empty() {
            return Err(FiError::EmptySpec("models"));
        }
        for (index, model) in self.models.iter().enumerate() {
            model
                .validate()
                .map_err(|reason| FiError::InvalidErrorModel {
                    index,
                    model: model.to_string(),
                    reason,
                })?;
        }
        if self.times_ms.is_empty() {
            return Err(FiError::EmptySpec("times"));
        }
        if self.cases == 0 {
            return Err(FiError::EmptySpec("cases"));
        }
        let mut seen_targets = std::collections::HashSet::new();
        for t in &self.targets {
            if !seen_targets.insert((t.module.as_str(), t.input_signal.as_str())) {
                return Err(FiError::DuplicateTarget {
                    module: t.module.clone(),
                    signal: t.input_signal.clone(),
                });
            }
        }
        let mut seen_times = std::collections::HashSet::new();
        for &t in &self.times_ms {
            if !seen_times.insert(t) {
                return Err(FiError::DuplicateInstant { time_ms: t });
            }
        }
        if let Some(plan) = &self.adaptive {
            plan.validate(self.injections_per_target())?;
        }
        Ok(())
    }

    /// Validates that every injection instant can actually fire: an instant
    /// at or beyond the campaign horizon, or at or beyond the end of some
    /// case's golden run, would silently produce a clean no-injection run
    /// and dilute the permeability estimate.
    ///
    /// `golden_ticks[case]` is the recorded golden-run length of each case.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::UnreachableInstant`] naming the first offending
    /// instant and the limit it collides with.
    pub fn validate_instants(
        &self,
        horizon_ms: Option<u64>,
        golden_ticks: &[u64],
    ) -> Result<(), FiError> {
        for &t in &self.times_ms {
            if let Some(h) = horizon_ms {
                if t >= h {
                    return Err(FiError::UnreachableInstant {
                        time_ms: t,
                        limit_ms: h,
                        case: None,
                    });
                }
            }
            for (case, &ticks) in golden_ticks.iter().enumerate() {
                if t >= ticks {
                    return Err(FiError::UnreachableInstant {
                        time_ms: t,
                        limit_ms: ticks,
                        case: Some(case),
                    });
                }
            }
        }
        Ok(())
    }

    /// Decodes coordinate index `k` into
    /// `(target_idx, model_idx, time_idx, case_idx)` — the inverse of the
    /// [`CampaignSpec::coordinates`] enumeration. Because the decoding
    /// depends only on the spec, a supervisor and its worker processes agree
    /// on what run `k` means without shipping the tuple itself.
    pub fn coordinate(&self, k: usize) -> (usize, usize, usize, usize) {
        let (nm, nt, nc) = (self.models.len(), self.times_ms.len(), self.cases);
        let case = k % nc;
        let time = (k / nc) % nt;
        let model = (k / (nc * nt)) % nm;
        let target = k / (nc * nt * nm);
        (target, model, time, case)
    }

    /// Enumerates all run coordinates in a deterministic order:
    /// `(target_idx, model_idx, time_idx, case_idx)`.
    pub fn coordinates(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        (0..self.run_count()).map(move |k| self.coordinate(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec::paper_style(
            vec![
                PortTarget::new("CALC", "pulscnt"),
                PortTarget::new("V_REG", "SetValue"),
            ],
            25,
        )
    }

    #[test]
    fn paper_style_matches_section_7_3() {
        let s = spec();
        assert_eq!(s.models.len(), 16);
        assert_eq!(s.times_ms.len(), 10);
        assert_eq!(s.injections_per_target(), 4_000, "16 × 10 × 25");
        assert_eq!(s.run_count(), 8_000);
        assert_eq!(s.times_ms[0], 500);
        assert_eq!(*s.times_ms.last().unwrap(), 5_000);
        assert_eq!(s.scope, InjectionScope::Port);
    }

    #[test]
    fn validation_catches_empty_axes() {
        let mut s = spec();
        s.models.clear();
        assert_eq!(s.validate(), Err(FiError::EmptySpec("models")));
        let mut s = spec();
        s.targets.clear();
        assert_eq!(s.validate(), Err(FiError::EmptySpec("targets")));
        let mut s = spec();
        s.times_ms.clear();
        assert_eq!(s.validate(), Err(FiError::EmptySpec("times")));
        let mut s = spec();
        s.cases = 0;
        assert_eq!(s.validate(), Err(FiError::EmptySpec("cases")));
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn duplicate_targets_and_instants_are_rejected() {
        let mut s = spec();
        s.targets.push(PortTarget::new("CALC", "pulscnt"));
        assert_eq!(
            s.validate(),
            Err(FiError::DuplicateTarget {
                module: "CALC".into(),
                signal: "pulscnt".into()
            })
        );
        // Same module with a different input port is fine.
        let mut s = spec();
        s.targets.push(PortTarget::new("CALC", "other"));
        assert!(s.validate().is_ok());
        let mut s = spec();
        s.times_ms.push(500);
        assert_eq!(
            s.validate(),
            Err(FiError::DuplicateInstant { time_ms: 500 })
        );
    }

    #[test]
    fn malformed_error_models_are_rejected_by_validate() {
        let mut s = spec();
        s.models.push(ErrorModel::Burst {
            start: 15,
            width: 4,
        });
        assert_eq!(
            s.validate(),
            Err(FiError::InvalidErrorModel {
                index: 16,
                model: "burst15+4".into(),
                reason: "burst start + width must not exceed 16",
            })
        );
        let mut s = spec();
        s.models.push(ErrorModel::MultiBit { mask: 0 });
        assert!(matches!(
            s.validate(),
            Err(FiError::InvalidErrorModel { index: 16, .. })
        ));
        // Well-formed extended models pass.
        let mut s = spec();
        s.models.push(ErrorModel::Burst { start: 4, width: 4 });
        s.models.push(ErrorModel::MultiBit { mask: 0x0101 });
        s.models.push(ErrorModel::Intermittent {
            bit: 3,
            period_ms: 100,
            count: 3,
        });
        assert!(s.validate().is_ok());
    }

    #[test]
    fn invalid_adaptive_plan_is_rejected_by_validate() {
        let mut s = spec();
        s.adaptive = Some(crate::adaptive::AdaptivePlan::default());
        assert!(s.validate().is_ok());
        s.adaptive = Some(crate::adaptive::AdaptivePlan {
            batch_size: 0,
            ..Default::default()
        });
        assert!(matches!(
            s.validate(),
            Err(FiError::InvalidAdaptivePlan { .. })
        ));
    }

    #[test]
    fn instants_beyond_horizon_or_golden_end_are_rejected() {
        let s = spec();
        // All paper instants fit a 6 s horizon over 5.5 s golden runs.
        assert!(s.validate_instants(Some(6_000), &[5_500; 25]).is_ok());
        assert!(s.validate_instants(None, &[5_001; 25]).is_ok());
        // Horizon at the last instant: `t >= horizon` can never fire.
        assert_eq!(
            s.validate_instants(Some(5_000), &[5_500; 25]),
            Err(FiError::UnreachableInstant {
                time_ms: 5_000,
                limit_ms: 5_000,
                case: None
            })
        );
        // One short golden run is enough to reject.
        let mut ticks = vec![5_500u64; 25];
        ticks[7] = 4_800;
        assert_eq!(
            s.validate_instants(None, &ticks),
            Err(FiError::UnreachableInstant {
                time_ms: 5_000,
                limit_ms: 4_800,
                case: Some(7)
            })
        );
    }

    #[test]
    fn coordinates_cover_product_exactly_once() {
        let s = spec();
        let coords: std::collections::HashSet<_> = s.coordinates().collect();
        assert_eq!(coords.len(), s.run_count());
        assert!(coords.contains(&(0, 0, 0, 0)));
        assert!(coords.contains(&(1, 15, 9, 24)));
    }

    #[test]
    fn coordinates_are_deterministic() {
        let s = spec();
        let a: Vec<_> = s.coordinates().collect();
        let b: Vec<_> = s.coordinates().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
