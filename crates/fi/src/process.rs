//! Out-of-process run isolation: the worker protocol and the supervisor's
//! per-worker client.
//!
//! In-process sandboxing (`catch_unwind` + the cooperative watchdog) cannot
//! survive a run that takes the whole *process* down — `abort()`, a stack
//! overflow, an OOM kill — or a hard deadlock that never polls the
//! watchdog. Under [`IsolationMode::Process`] the campaign supervisor
//! instead spawns N worker processes (a re-exec of the current binary with
//! a `--worker` flag), dispatches run coordinates to them over stdio, and
//! enforces a *hard* wall-clock deadline per run with SIGKILL: no
//! cooperation from the simulated software is required. A worker death is
//! classified from its exit status into
//! [`crate::outcome::RunOutcome::Crashed`] (or `Hung` for a deadline kill)
//! and the coordinate is retried with exponential backoff up to
//! [`crate::campaign::CampaignConfig::max_retries`] times, so transient
//! infrastructure failures are separated from deterministic crashes.
//!
//! # Wire format
//!
//! Messages are JSON, framed as
//!
//! ```text
//! [8-byte magic] [u32 LE payload length] [payload bytes]
//! ```
//!
//! The magic contains non-UTF-8 bytes, and the reader *scans* for it rather
//! than assuming frame alignment, so chatter from the hosting binary (a
//! test harness banner, a stray `println!`) interleaved on the pipe is
//! skipped instead of poisoning the stream. The supervisor sends
//! [`ToWorker`] frames (one `Setup`, then `RunBatch` per dispatch — up to
//! [`ProcessIsolation::dispatch_batch`] coordinates per frame, amortising
//! the per-message syscall/serialisation cost); the worker answers with
//! [`FromWorker`] frames (`Ready`, then one `DoneBatch` per dispatch).
//! Anything else the supervisor observes — a truncated frame, an answer for
//! the wrong coordinates — is an infrastructure failure
//! ([`crate::error::FiError::WorkerProcess`]), never a quarantined run.

use crate::campaign::{Campaign, CampaignConfig, SystemFactory};
use crate::error::FiError;
use crate::results::{RunRecord, RunStats};
use crate::spec::CampaignSpec;
use permea_runtime::tracing::TraceSet;
use permea_runtime::watchdog::WatchdogConfig;
use serde::{Deserialize, Serialize};
use std::io::{BufReader, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Frame magic: eight bytes, deliberately containing non-UTF-8 values so no
/// plain-text output can collide with it. The reader scans for this
/// sequence; bytes before it are discarded as noise.
const FRAME_MAGIC: [u8; 8] = [0xF1, b'P', b'F', b'I', 0x01, 0xA7, 0x5C, 0x0A];

/// Ceiling on a single frame payload; a length beyond this can only be
/// stream corruption (a full `RunRecord` is a few kilobytes).
const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Supervisor → worker messages.
// `Setup` dwarfs `Run`, but it is built exactly once per worker lifetime
// and never stored, so boxing it would only complicate the wire format.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum ToWorker {
    /// First message on every worker's stdin: everything needed to rebuild
    /// the campaign deterministically. `payload` is an opaque string the
    /// hosting binary's factory builder interprets (e.g. serialized plant
    /// parameters); the watchdog config is flattened because it carries no
    /// serde impls of its own.
    Setup {
        spec: CampaignSpec,
        master_seed: u64,
        horizon_ms: Option<u64>,
        fast_forward: bool,
        wd_enabled: bool,
        wd_work_per_tick: Option<u64>,
        wd_wall_ms: Option<u64>,
        payload: String,
    },
    /// Execute the listed coordinates of the spec's enumeration, in
    /// order, answering one `DoneBatch` for the lot.
    RunBatch { ks: Vec<u64> },
    /// Exit cleanly (closing the worker's stdin has the same effect).
    Shutdown,
}

/// One finished coordinate inside a [`FromWorker::DoneBatch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct DoneRun {
    pub(crate) k: u64,
    pub(crate) record: RunRecord,
    pub(crate) stats: RunStats,
}

/// Worker → supervisor messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum FromWorker {
    /// Setup succeeded; golden runs are recorded and runs can be dispatched.
    Ready,
    /// Every coordinate of the preceding `RunBatch` finished (completed
    /// *or* quarantined in-process — a worker still classifies panics and
    /// cooperative-watchdog trips itself; only process death is left to
    /// the supervisor), in dispatch order.
    DoneBatch { results: Vec<DoneRun> },
    /// Setup or a run failed as infrastructure (not as a sandboxed
    /// outcome); the message is propagated into
    /// [`FiError::WorkerProcess`].
    Fail { message: String },
}

/// Exponential retry/respawn backoff: `base × 2^(attempt−1)`, with the
/// exponent capped at [`MAX_BACKOFF_SHIFT`] so a long crash storm (or a
/// huge `--max-retries`) cannot overflow the shift into a zero — or
/// hour-long — delay.
pub(crate) fn backoff(base_ms: u64, attempt: u32) -> Duration {
    Duration::from_millis(
        base_ms.saturating_mul(1 << attempt.saturating_sub(1).min(MAX_BACKOFF_SHIFT)),
    )
}

/// Cap on the backoff doubling: 2⁶ × base is the longest sleep.
pub(crate) const MAX_BACKOFF_SHIFT: u32 = 6;

/// Encodes one frame: magic, length, payload.
///
/// Public so other transports (e.g. the campaign daemon's Unix-socket
/// protocol) can speak the same self-synchronising wire format as the
/// worker pipes; [`read_frame`] is the matching decoder.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut frame = Vec::with_capacity(FRAME_MAGIC.len() + 4 + bytes.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(bytes);
    frame
}

/// Reads the next frame, scanning past any non-frame noise. Returns
/// `Ok(None)` on a clean EOF (stream closed before another frame started).
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut matched = 0usize;
    let mut byte = [0u8; 1];
    loop {
        if r.read(&mut byte)? == 0 {
            return Ok(None);
        }
        if byte[0] == FRAME_MAGIC[matched] {
            matched += 1;
            if matched == FRAME_MAGIC.len() {
                break;
            }
        } else {
            // No byte of the magic repeats its first byte, so the only
            // viable restart after a mismatch is position 0 or 1.
            matched = usize::from(byte[0] == FRAME_MAGIC[0]);
        }
    }
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload).map(Some).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 frame payload")
    })
}

/// How to launch one worker process.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerCommand {
    /// Executable to spawn.
    pub program: String,
    /// Arguments selecting the binary's worker mode (e.g. `["--worker"]`).
    pub args: Vec<String>,
    /// Extra environment variables set on the worker.
    pub envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A re-exec of the current binary with the given arguments — the
    /// normal way a campaign binary describes its own `--worker` mode.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::WorkerProcess`] when the current executable path
    /// cannot be determined.
    pub fn current_exe(args: Vec<String>) -> Result<Self, FiError> {
        let program = std::env::current_exe()
            .map_err(|e| FiError::WorkerProcess {
                message: format!("resolving current executable: {e}"),
            })?
            .to_string_lossy()
            .into_owned();
        Ok(WorkerCommand {
            program,
            args,
            envs: Vec::new(),
        })
    }
}

/// Configuration of the worker-process pool.
///
/// Not `Eq` only by convention with the other config types.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessIsolation {
    /// Worker processes (0 ⇒ use available parallelism).
    pub workers: usize,
    /// Hard wall-clock deadline per run attempt, in milliseconds: the
    /// supervisor SIGKILLs the worker at the deadline and classifies the
    /// run [`crate::outcome::RunOutcome::Hung`]. No cooperation from the
    /// run is needed, so even a deadlock that never polls the cooperative
    /// watchdog is bounded.
    pub run_timeout_ms: u64,
    /// Deadline for worker setup (golden-run recording), in milliseconds.
    pub setup_timeout_ms: u64,
    /// Base of the exponential retry/respawn backoff, in milliseconds.
    pub retry_backoff_ms: u64,
    /// Total worker respawns the pool may spend before the crash-storm
    /// circuit breaker trips and the campaign degrades to the in-process
    /// executor for its remaining coordinates (each thread's *first* spawn
    /// is free).
    pub max_worker_respawns: u64,
    /// Coordinates dispatched per `RunBatch` frame (minimum 1). Batching
    /// amortises framing and syscalls; the per-run deadline scales with the
    /// batch, and any worker death degrades the affected batch to
    /// single-coordinate dispatch so retry classification stays exact.
    pub dispatch_batch: usize,
    /// How to launch a worker.
    pub command: WorkerCommand,
    /// Opaque payload forwarded to the worker's factory builder.
    pub factory_payload: String,
    /// Address-space cap applied inside each worker (`RLIMIT_AS`, bytes).
    /// A run that leaks unboundedly is refused memory by the kernel —
    /// aborting or being OOM-killed — instead of taking the host down; the
    /// death is classified via
    /// [`crate::outcome::RunOutcome::crash_cause`]. `None` (the default)
    /// leaves the worker uncapped.
    pub rlimit_as_bytes: Option<u64>,
    /// CPU-time cap applied inside each worker (`RLIMIT_CPU`, seconds).
    /// Backs up the wall-clock deadline for runs that spin without
    /// blocking. `None` (the default) leaves the worker uncapped.
    pub rlimit_cpu_secs: Option<u64>,
    /// Extra full respawn-budget refills the supervisor may spend when the
    /// pool collapses (the budget hits zero). A refill re-arms
    /// `max_worker_respawns` fresh respawns; only after every wave is spent
    /// does the crash-storm breaker trip and degrade the campaign to the
    /// in-process executor. 0 keeps the historical single-budget behaviour.
    pub pool_respawn_waves: u64,
}

impl ProcessIsolation {
    /// Pool defaults: one worker per core, a 30 s per-run deadline, a two
    /// minute setup deadline, 50 ms backoff base, 16 respawns (plus one
    /// pool-collapse refill wave), 16 coordinates per dispatch frame, and
    /// no worker resource limits.
    pub fn new(command: WorkerCommand, factory_payload: impl Into<String>) -> Self {
        ProcessIsolation {
            workers: 0,
            run_timeout_ms: 30_000,
            setup_timeout_ms: 120_000,
            retry_backoff_ms: 50,
            max_worker_respawns: 16,
            dispatch_batch: 16,
            command,
            factory_payload: factory_payload.into(),
            rlimit_as_bytes: None,
            rlimit_cpu_secs: None,
            pool_respawn_waves: 1,
        }
    }

    /// The worker launch command with this pool's resource-limit
    /// environment variables applied (see
    /// [`crate::env::apply_rlimits_from_env`], which the worker calls on
    /// entry). Identical to [`ProcessIsolation::command`] when no limit is
    /// configured.
    pub fn effective_command(&self) -> WorkerCommand {
        let mut command = self.command.clone();
        if let Some(bytes) = self.rlimit_as_bytes {
            command
                .envs
                .push((crate::env::RLIMIT_AS_ENV.to_owned(), bytes.to_string()));
        }
        if let Some(secs) = self.rlimit_cpu_secs {
            command
                .envs
                .push((crate::env::RLIMIT_CPU_ENV.to_owned(), secs.to_string()));
        }
        command
    }
}

/// Where injection runs execute.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum IsolationMode {
    /// `catch_unwind` + cooperative watchdog in this process (the default):
    /// fast, but a hard fault in a run kills the campaign.
    #[default]
    InProcess,
    /// A supervised pool of worker processes with hard deadlines, crash
    /// classification and retry (see the module docs).
    Process(ProcessIsolation),
}

/// Commands understood by a worker's killer thread.
enum KillerMsg {
    /// SIGKILL the worker at the given instant unless disarmed first.
    Arm(Instant),
    /// Cancel the pending deadline.
    Disarm,
    /// Thread shutdown.
    Exit,
}

/// One dispatch attempt as the supervisor saw it.
#[derive(Debug)]
pub(crate) enum Attempt {
    /// The worker answered every dispatched coordinate, in order; a record
    /// may still be a quarantined outcome the worker classified itself.
    Done { results: Vec<DoneRun> },
    /// The worker process died under this run. `deadline` is `true` when
    /// this supervisor's hard deadline fired (classified `Hung`); otherwise
    /// the death is classified `Crashed` from the signal / exit code.
    Died {
        deadline: bool,
        signal: Option<i32>,
        exit_code: Option<i32>,
    },
    /// The worker violated the protocol; this poisons the pool as
    /// [`FiError::WorkerProcess`] rather than quarantining the run.
    Protocol(String),
}

#[cfg(unix)]
fn status_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn status_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

/// Supervisor-side handle on one worker process: its pipes plus a killer
/// thread that enforces hard deadlines with `Child::kill` (SIGKILL).
pub(crate) struct WorkerClient {
    child: Arc<Mutex<Child>>,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    killer_tx: mpsc::Sender<KillerMsg>,
    killer: Option<std::thread::JoinHandle<()>>,
    deadline_fired: Arc<AtomicBool>,
}

impl WorkerClient {
    /// Spawns a worker process and its killer thread.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::WorkerProcess`] when the process cannot be
    /// spawned.
    pub(crate) fn spawn(command: &WorkerCommand) -> Result<Self, FiError> {
        let mut cmd = Command::new(&command.program);
        cmd.args(&command.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in &command.envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().map_err(|e| FiError::WorkerProcess {
            message: format!("spawning worker `{}`: {e}", command.program),
        })?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout was piped"));
        let child = Arc::new(Mutex::new(child));
        let deadline_fired = Arc::new(AtomicBool::new(false));
        let (killer_tx, killer_rx) = mpsc::channel::<KillerMsg>();
        let killer = {
            let child = Arc::clone(&child);
            let fired = Arc::clone(&deadline_fired);
            std::thread::spawn(move || loop {
                let mut armed = match killer_rx.recv() {
                    Ok(KillerMsg::Arm(deadline)) => deadline,
                    Ok(KillerMsg::Disarm) => continue,
                    Ok(KillerMsg::Exit) | Err(_) => return,
                };
                loop {
                    let now = Instant::now();
                    if now >= armed {
                        fired.store(true, Ordering::SeqCst);
                        if let Ok(mut c) = child.lock() {
                            let _ = c.kill();
                        }
                        break;
                    }
                    match killer_rx.recv_timeout(armed - now) {
                        Ok(KillerMsg::Arm(deadline)) => armed = deadline,
                        Ok(KillerMsg::Disarm) => break,
                        Ok(KillerMsg::Exit) => return,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            fired.store(true, Ordering::SeqCst);
                            if let Ok(mut c) = child.lock() {
                                let _ = c.kill();
                            }
                            break;
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => return,
                    }
                }
            })
        };
        Ok(WorkerClient {
            child,
            stdin,
            stdout,
            killer_tx,
            killer: Some(killer),
            deadline_fired,
        })
    }

    /// Sends the setup frame and waits (bounded) for `Ready`.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::WorkerProcess`] when the worker reports a setup
    /// failure, dies, or answers out of protocol.
    pub(crate) fn setup(&mut self, setup_frame: &[u8], timeout: Duration) -> Result<(), FiError> {
        self.deadline_fired.store(false, Ordering::SeqCst);
        if let Err(e) = self
            .stdin
            .write_all(setup_frame)
            .and_then(|()| self.stdin.flush())
        {
            return Err(FiError::WorkerProcess {
                message: format!("worker died before setup: {e}"),
            });
        }
        let _ = self
            .killer_tx
            .send(KillerMsg::Arm(Instant::now() + timeout));
        let reply = read_frame(&mut self.stdout);
        let _ = self.killer_tx.send(KillerMsg::Disarm);
        match reply {
            Ok(Some(json)) => match serde_json::from_str::<FromWorker>(&json) {
                Ok(FromWorker::Ready) => Ok(()),
                Ok(FromWorker::Fail { message }) => Err(FiError::WorkerProcess { message }),
                Ok(other) => Err(FiError::WorkerProcess {
                    message: format!("expected Ready, worker sent {other:?}"),
                }),
                Err(e) => Err(FiError::WorkerProcess {
                    message: format!("unparseable setup reply: {e}"),
                }),
            },
            Ok(None) | Err(_) => {
                let Attempt::Died {
                    deadline,
                    signal,
                    exit_code,
                } = self.collect_death()
                else {
                    unreachable!("collect_death only returns Died");
                };
                Err(FiError::WorkerProcess {
                    message: format!(
                        "worker died during setup (deadline: {deadline}, signal: {signal:?}, \
                         exit code: {exit_code:?})"
                    ),
                })
            }
        }
    }

    /// Dispatches the coordinates in one `RunBatch` frame and waits for
    /// the batched reply, killing the worker after `timeout × ks.len()`
    /// (every run gets its full per-run budget).
    ///
    /// # Errors
    ///
    /// Returns [`FiError::WorkerProcess`] only on serialisation failure;
    /// worker deaths and protocol violations come back as [`Attempt`]
    /// variants so the caller owns the retry policy.
    pub(crate) fn run_batch(
        &mut self,
        ks: &[u64],
        timeout: Duration,
        chaos: Option<&crate::chaos::ChaosInjector>,
    ) -> Result<Attempt, FiError> {
        let json = serde_json::to_string(&ToWorker::RunBatch { ks: ks.to_vec() }).map_err(|e| {
            FiError::WorkerProcess {
                message: format!("serialising run command: {e}"),
            }
        })?;
        let frame = encode_frame(&json);
        // An injected frame corruption truncates the dispatch mid-write —
        // the shape a dying supervisor-side pipe produces. The worker
        // blocks on the incomplete frame, the deadline kill reaps it, and
        // the ordinary retry path re-dispatches the coordinates.
        let send = match chaos {
            Some(c) if c.corrupt_dispatch() => &frame[..frame.len() / 2],
            _ => &frame[..],
        };
        let deadline = timeout.saturating_mul(ks.len().clamp(1, 4096) as u32);
        self.deadline_fired.store(false, Ordering::SeqCst);
        if self
            .stdin
            .write_all(send)
            .and_then(|()| self.stdin.flush())
            .is_err()
        {
            // Rust ignores SIGPIPE, so writing to a dead worker surfaces
            // here as BrokenPipe: the death belongs to this attempt.
            return Ok(self.collect_death());
        }
        let _ = self
            .killer_tx
            .send(KillerMsg::Arm(Instant::now() + deadline));
        let reply = read_frame(&mut self.stdout);
        let _ = self.killer_tx.send(KillerMsg::Disarm);
        match reply {
            Ok(Some(json)) => match serde_json::from_str::<FromWorker>(&json) {
                Ok(FromWorker::DoneBatch { results }) => {
                    let answered_in_order =
                        results.len() == ks.len() && results.iter().zip(ks).all(|(r, &k)| r.k == k);
                    if answered_in_order {
                        Ok(Attempt::Done { results })
                    } else {
                        Ok(Attempt::Protocol(format!(
                            "worker answered coordinates {:?} when asked for {ks:?}",
                            results.iter().map(|r| r.k).collect::<Vec<_>>()
                        )))
                    }
                }
                Ok(FromWorker::Fail { message }) => Ok(Attempt::Protocol(message)),
                Ok(FromWorker::Ready) => {
                    Ok(Attempt::Protocol("unexpected Ready mid-campaign".into()))
                }
                Err(e) => Ok(Attempt::Protocol(format!("unparseable worker reply: {e}"))),
            },
            Ok(None) | Err(_) => Ok(self.collect_death()),
        }
    }

    /// SIGKILLs the worker *without* marking the supervisor deadline — the
    /// chaos harness's stand-in for an external `kill -9` (OOM killer,
    /// operator). The next dispatch hits the dead pipe and the death is
    /// classified [`Attempt::Died`] with `deadline: false`, i.e. a
    /// [`crate::outcome::RunOutcome::Crashed`] on the retry path.
    pub(crate) fn chaos_kill(&mut self) {
        if let Ok(mut child) = self.child.lock() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Reaps a dead worker and classifies the death. Always returns
    /// [`Attempt::Died`].
    fn collect_death(&mut self) -> Attempt {
        let status = self.child.lock().ok().and_then(|mut c| c.wait().ok());
        let deadline = self.deadline_fired.swap(false, Ordering::SeqCst);
        let (signal, exit_code) = match status {
            Some(s) => (status_signal(&s), s.code()),
            None => (None, None),
        };
        Attempt::Died {
            deadline,
            signal,
            exit_code,
        }
    }
}

impl Drop for WorkerClient {
    fn drop(&mut self) {
        let _ = self.killer_tx.send(KillerMsg::Exit);
        if let Ok(mut child) = self.child.lock() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(handle) = self.killer.take() {
            let _ = handle.join();
        }
    }
}

fn write_frame_stdout(msg: &FromWorker) -> std::io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let frame = encode_frame(&json);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    out.write_all(&frame)?;
    out.flush()
}

/// The worker-process main loop: reads [`ToWorker`] frames from stdin,
/// executes runs with the in-process sandbox, and writes [`FromWorker`]
/// frames to stdout. Returns the process exit code (0 on a clean shutdown
/// or EOF, 1 after reporting a failure).
///
/// `build_factory` turns the setup payload into the system under test —
/// the hosting binary decides what the payload means. Campaign binaries
/// call this early in `main` when their `--worker` flag is present:
///
/// ```no_run
/// # use permea_fi::process::run_worker;
/// # fn make_factory(_: &str) -> Result<Box<dyn permea_fi::campaign::SystemFactory>, String> { unimplemented!() }
/// if std::env::args().any(|a| a == "--worker") {
///     std::process::exit(run_worker(make_factory) as i32);
/// }
/// ```
pub fn run_worker<F>(build_factory: F) -> u8
where
    F: FnOnce(&str) -> Result<Box<dyn SystemFactory>, String>,
{
    // Apply the supervisor's resource caps (RLIMIT_AS / RLIMIT_CPU from
    // the pool's environment variables) before touching any input: a
    // leaking or spinning run dies inside this process's limits instead of
    // destabilising the host.
    let _ = crate::env::apply_rlimits_from_env();
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let fail = |message: String| -> u8 {
        let _ = write_frame_stdout(&FromWorker::Fail { message });
        1
    };

    let setup = match read_frame(&mut input) {
        Ok(Some(json)) => match serde_json::from_str::<ToWorker>(&json) {
            Ok(msg) => msg,
            Err(e) => return fail(format!("unparseable setup frame: {e}")),
        },
        // The supervisor went away before configuring us; nothing to do.
        Ok(None) => return 0,
        Err(e) => return fail(format!("reading setup frame: {e}")),
    };
    let ToWorker::Setup {
        spec,
        master_seed,
        horizon_ms,
        fast_forward,
        wd_enabled,
        wd_work_per_tick,
        wd_wall_ms,
        payload,
    } = setup
    else {
        return fail("first frame was not Setup".into());
    };
    let factory = match build_factory(&payload) {
        Ok(f) => f,
        Err(e) => return fail(format!("building system factory: {e}")),
    };
    let config = CampaignConfig {
        threads: 1,
        master_seed,
        keep_records: true,
        horizon_ms,
        fast_forward,
        watchdog: wd_enabled.then_some(WatchdogConfig {
            max_work_per_tick: wd_work_per_tick,
            max_wall_ms: wd_wall_ms,
        }),
        ..Default::default()
    };
    let campaign = Campaign::new(factory.as_ref(), config);
    let (targets, goldens, _golden_ticks) = match campaign.prepare(&spec) {
        Ok(prepared) => prepared,
        Err(e) => return fail(format!("preparing campaign: {e}")),
    };
    if write_frame_stdout(&FromWorker::Ready).is_err() {
        return 1;
    }

    // One sample arena for the worker's whole lifetime: every run of every
    // batch records into the same storage.
    let mut arena: Option<TraceSet> = None;
    loop {
        match read_frame(&mut input) {
            Ok(Some(json)) => match serde_json::from_str::<ToWorker>(&json) {
                Ok(ToWorker::RunBatch { ks }) => {
                    let mut results = Vec::with_capacity(ks.len());
                    for &k in &ks {
                        match campaign
                            .execute_sandboxed(&spec, &targets, &goldens, k as usize, &mut arena)
                        {
                            Ok((record, stats)) => results.push(DoneRun { k, record, stats }),
                            Err(e) => {
                                return fail(format!("run {k} failed as infrastructure: {e}"))
                            }
                        }
                    }
                    if write_frame_stdout(&FromWorker::DoneBatch { results }).is_err() {
                        return 1;
                    }
                }
                Ok(ToWorker::Shutdown) => return 0,
                Ok(ToWorker::Setup { .. }) => return fail("duplicate Setup frame".into()),
                Err(e) => return fail(format!("unparseable command frame: {e}")),
            },
            Ok(None) => return 0,
            Err(e) => return fail(format!("reading command frame: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let payload = r#"{"hello":"world"}"#;
        let frame = encode_frame(payload);
        let mut cursor = &frame[..];
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(payload));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn reader_skips_noise_before_and_between_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(b"running 1 test\n");
        stream.extend_from_slice(&encode_frame("first"));
        stream.extend_from_slice(b"random chatter \xf1P not a frame");
        stream.extend_from_slice(&encode_frame("second"));
        let mut cursor = &stream[..];
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("first"));
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("second"));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn reader_resyncs_after_partial_magic() {
        // The magic's own first byte immediately before a real frame must
        // not desynchronise the scanner.
        let mut stream = Vec::new();
        stream.push(FRAME_MAGIC[0]);
        stream.extend_from_slice(&encode_frame("payload"));
        let mut cursor = &stream[..];
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("payload"));
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&FRAME_MAGIC);
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &stream[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let frame = encode_frame("full payload");
        let mut cursor = &frame[..frame.len() - 3];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn protocol_messages_roundtrip_as_json() {
        let spec =
            CampaignSpec::paper_style(vec![crate::spec::PortTarget::new("CALC", "pulscnt")], 2);
        let setup = ToWorker::Setup {
            spec,
            master_seed: 0x5EED,
            horizon_ms: Some(6_000),
            fast_forward: true,
            wd_enabled: true,
            wd_work_per_tick: Some(4_096),
            wd_wall_ms: None,
            payload: r#"{"masses":[1.0]}"#.into(),
        };
        let json = serde_json::to_string(&setup).unwrap();
        assert_eq!(serde_json::from_str::<ToWorker>(&json).unwrap(), setup);

        for msg in [
            ToWorker::RunBatch {
                ks: vec![17, 18, 40],
            },
            ToWorker::Shutdown,
        ] {
            let json = serde_json::to_string(&msg).unwrap();
            assert_eq!(serde_json::from_str::<ToWorker>(&json).unwrap(), msg);
        }

        let done = FromWorker::DoneBatch {
            results: vec![DoneRun {
                k: 3,
                record: RunRecord {
                    module: "CALC".into(),
                    input_signal: "pulscnt".into(),
                    model: crate::model::ErrorModel::BitFlip { bit: 3 },
                    time_ms: 500,
                    case: 0,
                    original_value: 7,
                    corrupted_value: 15,
                    first_divergence: vec![Some(510), None],
                    outcome: crate::outcome::RunOutcome::Completed,
                },
                stats: RunStats {
                    sim_ticks: 40,
                    forked: true,
                    converged_ms: Some(90),
                },
            }],
        };
        for msg in [
            FromWorker::Ready,
            done,
            FromWorker::Fail {
                message: "boom".into(),
            },
        ] {
            let json = serde_json::to_string(&msg).unwrap();
            assert_eq!(serde_json::from_str::<FromWorker>(&json).unwrap(), msg);
        }
    }

    #[test]
    fn default_isolation_is_in_process() {
        assert_eq!(IsolationMode::default(), IsolationMode::InProcess);
    }

    #[test]
    fn process_isolation_defaults() {
        let command = WorkerCommand {
            program: "campaign".into(),
            args: vec!["--worker".into()],
            envs: Vec::new(),
        };
        let p = ProcessIsolation::new(command.clone(), "{}");
        assert_eq!(p.workers, 0);
        assert_eq!(p.run_timeout_ms, 30_000);
        assert_eq!(p.max_worker_respawns, 16);
        assert_eq!(p.dispatch_batch, 16);
        assert_eq!(p.command, command);
    }

    #[test]
    fn backoff_shift_is_clamped() {
        // Doubling stops at 2^MAX_BACKOFF_SHIFT: a huge retry budget (or a
        // u32-sized attempt counter) must not shift past 64 bits.
        assert_eq!(backoff(50, 0), Duration::from_millis(50));
        assert_eq!(backoff(50, 1), Duration::from_millis(50));
        assert_eq!(backoff(50, 2), Duration::from_millis(100));
        assert_eq!(
            backoff(50, MAX_BACKOFF_SHIFT + 1),
            Duration::from_millis(50 << MAX_BACKOFF_SHIFT)
        );
        assert_eq!(
            backoff(50, 1_000),
            Duration::from_millis(50 << MAX_BACKOFF_SHIFT)
        );
        assert_eq!(
            backoff(50, u32::MAX),
            Duration::from_millis(50 << MAX_BACKOFF_SHIFT)
        );
        // Saturating, not wrapping, when the base itself is huge.
        assert_eq!(backoff(u64::MAX, u32::MAX), Duration::from_millis(u64::MAX));
    }
}
