//! Write-ahead run journal: append-only JSONL persistence for campaigns.
//!
//! A full paper-scale campaign executes tens of thousands of injection runs
//! over minutes of wall-clock time; a crash, OOM kill or `kill -9` halfway
//! through should not throw that work away. The journal records every
//! finished run as one JSON line, keyed by its coordinate index `k` in the
//! spec's deterministic [`crate::spec::CampaignSpec::coordinates`]
//! enumeration. Because per-run seeds are derived from `k` alone, replaying
//! journaled records and re-executing the missing coordinates reconstructs
//! the uninterrupted [`crate::results::CampaignResult`] *byte for byte*.
//!
//! Layout:
//!
//! * line 1 — a [`JournalHeader`]: format version, campaign spec, master
//!   seed and horizon. On resume the header is compared against the
//!   campaign being run; any disagreement is a typed
//!   [`FiError::JournalMismatch`] — a journal never silently contaminates a
//!   different campaign.
//! * lines 2.. — one [`JournalEntry`] per finished run.
//!
//! Durability: every appended record is flushed to the OS immediately (so a
//! process kill loses nothing), and `fsync`ed in configurable batches
//! (default [`DEFAULT_FSYNC_INTERVAL`], see [`RunJournal::set_fsync_interval`])
//! bounding loss on power failure. A torn final line — the signature of
//! `kill -9` mid-write — is detected on open, reported via
//! [`LoadedJournal::truncated_tail`], and truncated away before appending
//! resumes so the file stays parseable.
//!
//! Each entry also carries the run's deterministic
//! [`RunStats`] (ticks simulated, fast-forward shortcuts taken), which is
//! what lets a resumed campaign's telemetry totals merge to exactly the
//! uninterrupted values, plus the number of *attempts* the executor needed
//! (always 1 in-process; retries under process isolation push it higher).
//!
//! # Integrity (format v3)
//!
//! Every record line is prefixed with the CRC32 (IEEE) of its JSON payload,
//! as eight lowercase hex digits and a space:
//!
//! ```text
//! 89abcdef {"k":17,"attempts":1,"record":{...},"stats":{...}}
//! ```
//!
//! A record that fails its CRC (or does not parse) at the **end** of the
//! file is the torn tail of an interrupted write and is truncated away as
//! before. The same failure **mid-file** — with intact records after it —
//! can only be silent corruption (bit rot, a bad copy, a buggy tool), and
//! resuming over it would quietly drop a run, so the journal is rejected
//! with [`FiError::JournalCorrupt`] naming the first corrupt line.

use crate::chaos::{ChaosInjector, IoFaultKind};
use crate::error::FiError;
use crate::results::{RunRecord, RunStats};
use crate::spec::CampaignSpec;
use permea_obs::{Counter, Histogram, Obs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal format version; bumped on any incompatible layout change.
/// Version 2 added per-entry [`RunStats`]; version 3 added the per-record
/// CRC32 prefix and the per-coordinate attempt count; version 4 carries
/// the adaptive sampling plan inside the header's spec, so a journal can
/// replay the planner's coordinate stream (dense and adaptive journals can
/// never silently resume each other).
pub const JOURNAL_VERSION: u32 = 4;

/// CRC32 (IEEE 802.3, reflected) of `data` — the checksum prefixed to every
/// v3 record line. Computed bitwise; journal lines are short enough that a
/// lookup table would buy nothing.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Default fsync batching: records are `fsync`ed every this many appends
/// (each append is still flushed to the OS immediately). Campaigns override
/// it through [`crate::campaign::CampaignConfig::journal_fsync_interval`].
pub const DEFAULT_FSYNC_INTERVAL: usize = 64;

/// First line of a journal: identifies the campaign the records belong to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// The campaign spec whose coordinate enumeration keys the records.
    pub spec: CampaignSpec,
    /// Master seed the per-run seeds derive from.
    pub master_seed: u64,
    /// Campaign horizon, when one was configured.
    pub horizon_ms: Option<u64>,
}

impl JournalHeader {
    /// Builds the header for a campaign.
    pub fn new(spec: &CampaignSpec, master_seed: u64, horizon_ms: Option<u64>) -> Self {
        JournalHeader {
            version: JOURNAL_VERSION,
            spec: spec.clone(),
            master_seed,
            horizon_ms,
        }
    }

    /// Checks this header against another, returning the first disagreeing
    /// field.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::JournalMismatch`] naming the field.
    pub fn ensure_matches(&self, other: &JournalHeader) -> Result<(), FiError> {
        if self.version != other.version {
            return Err(FiError::JournalMismatch { field: "version" });
        }
        if self.master_seed != other.master_seed {
            return Err(FiError::JournalMismatch {
                field: "master_seed",
            });
        }
        if self.horizon_ms != other.horizon_ms {
            return Err(FiError::JournalMismatch {
                field: "horizon_ms",
            });
        }
        if self.spec != other.spec {
            return Err(FiError::JournalMismatch { field: "spec" });
        }
        Ok(())
    }
}

/// One journaled run: the coordinate index, the number of attempts the
/// executor needed, the finished record and the run's deterministic
/// execution statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Coordinate index in [`CampaignSpec::coordinates`] order; also the
    /// input to per-run seed derivation.
    pub k: u64,
    /// Execution attempts this coordinate took (1 unless process isolation
    /// retried it after a worker death).
    pub attempts: u32,
    /// The finished run record, including its outcome.
    pub record: RunRecord,
    /// Deterministic per-run execution statistics, merged into campaign
    /// telemetry on resume.
    pub stats: RunStats,
}

/// What [`RunJournal::open_or_create`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadedJournal {
    /// Number of complete records recovered.
    pub recovered: usize,
    /// `true` when the file ended in a torn (incomplete or unparseable)
    /// line that was truncated away — the signature of a hard kill
    /// mid-write.
    pub truncated_tail: bool,
}

fn io_err(context: &str, e: std::io::Error) -> FiError {
    FiError::Journal {
        message: format!("{context}: {e}"),
    }
}

/// Parses one v3 record line: eight lowercase hex CRC digits, a space, the
/// JSON entry. Returns `None` on any framing, checksum or parse failure —
/// the caller decides whether that means a torn tail or corruption.
fn parse_entry_line(bytes: &[u8]) -> Option<JournalEntry> {
    let line = std::str::from_utf8(bytes).ok()?;
    let (crc_hex, json) = line.split_once(' ')?;
    if crc_hex.len() != 8 {
        return None;
    }
    let expected = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(json.as_bytes()) != expected {
        return None;
    }
    serde_json::from_str::<JournalEntry>(json).ok()
}

/// Serialises one journal entry into its on-disk line (without the trailing
/// newline): eight lowercase hex CRC32 digits, a space, the JSON payload.
/// Shared by [`RunJournal::append`] and [`merge_journals`] so both write the
/// exact same bytes for the same entry.
fn entry_line(entry: &JournalEntry) -> Result<String, FiError> {
    let json = serde_json::to_string(entry).map_err(|e| FiError::Journal {
        message: format!("serialising journal entry: {e}"),
    })?;
    Ok(format!("{:08x} {json}", crc32(json.as_bytes())))
}

/// A journal read without opening it for appending: the parsed header, the
/// surviving entries keyed by coordinate, and whether the file ended in a
/// torn tail.
#[derive(Debug, Clone)]
pub struct ReadJournal {
    /// The campaign header on line 1.
    pub header: JournalHeader,
    /// All complete records, keyed by coordinate index.
    pub entries: HashMap<u64, JournalEntry>,
    /// `true` when the file ended in a torn (incomplete or unparseable)
    /// line. Read-only access never truncates the file.
    pub truncated_tail: bool,
}

/// Reads a journal without modifying it: parses the header, recovers every
/// complete record and *reports* (rather than truncates) a torn tail. The
/// shard-merge path uses this so merging never mutates its inputs.
///
/// # Errors
///
/// Returns [`FiError::Journal`] when the file is missing or its header is
/// unreadable, and [`FiError::JournalCorrupt`] when a record fails its CRC
/// mid-file with intact records after it.
pub fn read_journal(path: impl AsRef<Path>) -> Result<ReadJournal, FiError> {
    let path = path.as_ref();
    let data =
        std::fs::read(path).map_err(|e| io_err(&format!("reading {}", path.display()), e))?;
    let mut line_ranges: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            line_ranges.push((start, i));
            start = i + 1;
        }
    }
    let mut truncated_tail = start < data.len();

    let mut ranges = line_ranges.into_iter();
    let (hs, he) = ranges.next().ok_or(FiError::Journal {
        message: format!("{} holds no complete header line", path.display()),
    })?;
    let header_line = std::str::from_utf8(&data[hs..he]).map_err(|_| FiError::Journal {
        message: format!("{}: header is not valid UTF-8", path.display()),
    })?;
    let header: JournalHeader =
        serde_json::from_str(header_line).map_err(|e| FiError::Journal {
            message: format!("parsing header of {}: {e}", path.display()),
        })?;

    let mut entries = HashMap::new();
    let mut corrupt_line: Option<usize> = None;
    for (idx, (s, e)) in ranges.enumerate() {
        match parse_entry_line(&data[s..e]) {
            Some(entry) => {
                if let Some(line) = corrupt_line {
                    return Err(FiError::JournalCorrupt { line });
                }
                entries.insert(entry.k, entry);
            }
            None => {
                corrupt_line.get_or_insert(idx + 2);
            }
        }
    }
    if corrupt_line.is_some() {
        truncated_tail = true;
    }
    Ok(ReadJournal {
        header,
        entries,
        truncated_tail,
    })
}

/// Outcome of [`merge_journals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeSummary {
    /// Journals read.
    pub inputs: usize,
    /// Distinct coordinates written to the merged journal.
    pub records: usize,
    /// Duplicate records (same coordinate, identical contents) collapsed;
    /// the merged entry keeps the *maximum* attempt count.
    pub duplicates: usize,
    /// Input journals whose torn tail was skipped (their complete records
    /// were still merged).
    pub torn_tails: usize,
}

/// Merges shard journals into one resumable journal at `out`.
///
/// All inputs must carry the same campaign header (the first input is the
/// reference). Records are united by coordinate: a coordinate present in
/// several inputs must carry an identical record and stats everywhere —
/// the merged entry keeps the maximum attempt count — and any disagreement
/// aborts the merge. The output is written header-first, then entries in
/// ascending coordinate order, so merging the shards of a dense campaign
/// reproduces the unsharded single-threaded journal byte for byte. Inputs
/// are never modified; a torn tail in an input only drops the torn line.
///
/// # Errors
///
/// Returns [`FiError::JournalMismatch`] when input headers disagree,
/// [`FiError::JournalMergeConflict`] when two inputs carry different
/// records for one coordinate, and [`FiError::Journal`] on I/O failure.
pub fn merge_journals(out: impl AsRef<Path>, inputs: &[PathBuf]) -> Result<MergeSummary, FiError> {
    let out = out.as_ref();
    if inputs.is_empty() {
        return Err(FiError::JournalMergeEmpty);
    }

    let mut reference: Option<JournalHeader> = None;
    let mut merged: HashMap<u64, JournalEntry> = HashMap::new();
    let mut duplicates = 0usize;
    let mut torn_tails = 0usize;
    for path in inputs {
        let shard = read_journal(path)?;
        match &reference {
            None => reference = Some(shard.header),
            Some(first) => first.ensure_matches(&shard.header)?,
        }
        if shard.truncated_tail {
            torn_tails += 1;
        }
        for (k, entry) in shard.entries {
            match merged.entry(k) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(entry);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let existing = slot.get_mut();
                    if existing.record != entry.record || existing.stats != entry.stats {
                        return Err(FiError::JournalMergeConflict { k });
                    }
                    existing.attempts = existing.attempts.max(entry.attempts);
                    duplicates += 1;
                }
            }
        }
    }
    let header = reference.ok_or(FiError::JournalMergeEmpty)?;

    // The merged journal is written atomically: everything goes to a
    // sibling `*.tmp` which replaces `out` only after a successful fsync,
    // so a crash mid-merge can never leave a torn journal at `out`.
    let mut tmp = out.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let file = File::create(&tmp)
        .map_err(|e| io_err(&format!("creating merged journal {}", tmp.display()), e))?;
    let mut writer = BufWriter::new(file);
    let header_json = serde_json::to_string(&header).map_err(|e| FiError::Journal {
        message: format!("serialising merged journal header: {e}"),
    })?;
    writer
        .write_all(header_json.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .map_err(|e| io_err("writing merged journal header", e))?;
    let mut ks: Vec<u64> = merged.keys().copied().collect();
    ks.sort_unstable();
    let records = ks.len();
    for k in &ks {
        let line = entry_line(&merged[k])?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| io_err("writing merged journal entry", e))?;
    }
    writer
        .flush()
        .map_err(|e| io_err("flushing merged journal", e))?;
    writer
        .get_ref()
        .sync_data()
        .map_err(|e| io_err("syncing merged journal", e))?;
    drop(writer);
    std::fs::rename(&tmp, out).map_err(|e| {
        io_err(
            &format!("renaming merged journal into {}", out.display()),
            e,
        )
    })?;
    Ok(MergeSummary {
        inputs: inputs.len(),
        records,
        duplicates,
        torn_tails,
    })
}

/// The result of a raw-line [`audit_journal`] pass: the executor's journal
/// invariants, measured rather than assumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalAudit {
    /// Complete record lines in the file (before any de-duplication).
    pub records: usize,
    /// Distinct coordinates among them.
    pub distinct: usize,
    /// Lines whose coordinate appeared before with *identical* content.
    /// A healthy journal has none: a coordinate is appended exactly once.
    pub identical_duplicates: usize,
    /// Lines whose coordinate appeared before with the same record and
    /// stats but a *different* attempt count. A single-writer journal never
    /// produces these, but [`merge_journals`] legitimately does: when two
    /// shards finished the same coordinate identically it keeps the max
    /// attempts, so an audit of a merged journal's *inputs* (or of a
    /// journal re-merged over itself) sees attempt-only repeats. Resume is
    /// unaffected — the record content is identical either way.
    pub attempt_upgrades: usize,
    /// Coordinates that appear more than once with *different* content —
    /// the one shape resume could silently mis-replay. Always fatal.
    pub conflicts: Vec<u64>,
    /// The file ended in a torn (incomplete) line — legitimate after a
    /// crash mid-append; resume truncates it.
    pub truncated_tail: bool,
}

impl JournalAudit {
    /// `true` when the journal upholds the executor's append invariants:
    /// no coordinate recorded twice, no conflicting records. Strict — an
    /// attempt-only repeat also fails, because a single writer never
    /// produces one.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty() && self.identical_duplicates == 0 && self.attempt_upgrades == 0
    }

    /// `true` when the journal is safe to *resume or merge from*: no
    /// coordinate carries two different results. Identical duplicates and
    /// attempt-only repeats are tolerated — they replay to the same state —
    /// which is the right bar for journals assembled by [`merge_journals`].
    pub fn is_clean_merged(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Audits a journal file line by line, without collapsing records into a
/// map first the way [`read_journal`] does: every physical record line is
/// checked, so double-appends and conflicting re-appends are visible. The
/// chaos test-suite runs this after every injected fault schedule.
///
/// # Errors
///
/// Returns [`FiError::Journal`] when the file or its header is unreadable
/// and [`FiError::JournalCorrupt`] on a mid-file CRC/parse failure.
pub fn audit_journal(path: impl AsRef<Path>) -> Result<JournalAudit, FiError> {
    let path = path.as_ref();
    let data =
        std::fs::read(path).map_err(|e| io_err(&format!("reading {}", path.display()), e))?;
    let mut line_ranges: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            line_ranges.push((start, i));
            start = i + 1;
        }
    }
    let mut truncated_tail = start < data.len();

    let mut ranges = line_ranges.into_iter();
    let (hs, he) = ranges.next().ok_or(FiError::Journal {
        message: format!("{} holds no complete header line", path.display()),
    })?;
    let header_line = std::str::from_utf8(&data[hs..he]).map_err(|_| FiError::Journal {
        message: "journal header is not valid UTF-8".into(),
    })?;
    let _: JournalHeader = serde_json::from_str(header_line).map_err(|e| FiError::Journal {
        message: format!("parsing journal header: {e}"),
    })?;

    let mut seen: HashMap<u64, JournalEntry> = HashMap::new();
    let mut records = 0usize;
    let mut identical_duplicates = 0usize;
    let mut attempt_upgrades = 0usize;
    let mut conflicts: Vec<u64> = Vec::new();
    let mut corrupt_line: Option<usize> = None;
    for (idx, (s, e)) in ranges.enumerate() {
        match parse_entry_line(&data[s..e]) {
            Some(entry) => {
                if let Some(line) = corrupt_line {
                    return Err(FiError::JournalCorrupt { line });
                }
                records += 1;
                match seen.entry(entry.k) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(entry);
                    }
                    std::collections::hash_map::Entry::Occupied(slot) => {
                        let first = slot.get();
                        if first.record != entry.record || first.stats != entry.stats {
                            conflicts.push(entry.k);
                        } else if first.attempts == entry.attempts {
                            identical_duplicates += 1;
                        } else {
                            attempt_upgrades += 1;
                        }
                    }
                }
            }
            None => {
                // Line 1 is the header; entry `idx` sits on line idx+2.
                corrupt_line.get_or_insert(idx + 2);
            }
        }
    }
    if corrupt_line.is_some() {
        truncated_tail = true;
    }
    conflicts.sort_unstable();
    conflicts.dedup();
    Ok(JournalAudit {
        records,
        distinct: seen.len(),
        identical_duplicates,
        attempt_upgrades,
        conflicts,
        truncated_tail,
    })
}

/// An append-only JSONL run journal bound to one campaign.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    writer: BufWriter<File>,
    entries: HashMap<u64, (RunRecord, RunStats)>,
    attempts: HashMap<u64, u32>,
    unsynced: usize,
    fsync_interval: usize,
    appends: Counter,
    fsyncs: Counter,
    fsync_micros: Histogram,
    chaos: Option<Arc<ChaosInjector>>,
}

/// How many times an append retries a flush that failed with `ENOSPC`
/// before aborting with [`FiError::JournalDiskFull`]. Retries are spaced by
/// a short growing sleep — enough for log rotation or tmp-reaping to free
/// space, short enough that a genuinely full disk fails within a second.
pub const ENOSPC_APPEND_RETRIES: u32 = 3;

fn is_enospc(e: &std::io::Error) -> bool {
    e.raw_os_error() == Some(28) // ENOSPC on every unix we run on
}

fn enospc_error() -> std::io::Error {
    std::io::Error::from_raw_os_error(28)
}

impl RunJournal {
    /// Creates a fresh journal at `path`, writing (and syncing) the header.
    /// Any existing file at `path` is overwritten.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::Journal`] on I/O failure.
    pub fn create(path: impl AsRef<Path>, header: &JournalHeader) -> Result<Self, FiError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(|e| io_err("creating journal", e))?;
        let mut writer = BufWriter::new(file);
        let line = serde_json::to_string(header).map_err(|e| FiError::Journal {
            message: format!("serialising journal header: {e}"),
        })?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| io_err("writing journal header", e))?;
        writer
            .get_ref()
            .sync_data()
            .map_err(|e| io_err("syncing journal header", e))?;
        Ok(RunJournal {
            path,
            writer,
            entries: HashMap::new(),
            attempts: HashMap::new(),
            unsynced: 0,
            fsync_interval: DEFAULT_FSYNC_INTERVAL,
            appends: Counter::noop(),
            fsyncs: Counter::noop(),
            fsync_micros: Histogram::noop(),
            chaos: None,
        })
    }

    /// Opens an existing journal for resumption — verifying its header
    /// against `header`, recovering all complete records and truncating any
    /// torn final line — or creates a fresh one when `path` does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::JournalMismatch`] when the on-disk header belongs
    /// to a different campaign, and [`FiError::Journal`] on I/O or parse
    /// failures that corruption cannot explain (e.g. an unreadable header).
    pub fn open_or_create(
        path: impl AsRef<Path>,
        header: &JournalHeader,
    ) -> Result<(Self, LoadedJournal), FiError> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            let journal = Self::create(&path, header)?;
            return Ok((
                journal,
                LoadedJournal {
                    recovered: 0,
                    truncated_tail: false,
                },
            ));
        }

        let data = std::fs::read(&path).map_err(|e| io_err("reading journal", e))?;
        // Collect the byte ranges of complete (newline-terminated) lines; an
        // unterminated tail is a torn write and is discarded.
        let mut line_ranges: Vec<(usize, usize)> = Vec::new();
        let mut start = 0usize;
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' {
                line_ranges.push((start, i));
                start = i + 1;
            }
        }
        let mut truncated_tail = start < data.len();

        let mut ranges = line_ranges.into_iter();
        let (hs, he) = ranges.next().ok_or(FiError::Journal {
            message: "journal exists but holds no complete header line".into(),
        })?;
        let header_line = std::str::from_utf8(&data[hs..he]).map_err(|_| FiError::Journal {
            message: "journal header is not valid UTF-8".into(),
        })?;
        let on_disk: JournalHeader =
            serde_json::from_str(header_line).map_err(|e| FiError::Journal {
                message: format!("parsing journal header: {e}"),
            })?;
        header.ensure_matches(&on_disk)?;

        let mut entries = HashMap::new();
        let mut attempts = HashMap::new();
        let mut valid_end = he + 1;
        // 1-based physical line number of the first invalid record, if any.
        // Invalid lines at the very end of the file are a torn tail (the
        // write was interrupted); an invalid line *followed by a valid one*
        // is silent corruption and poisons the whole journal.
        let mut corrupt_line: Option<usize> = None;
        for (idx, (s, e)) in ranges.enumerate() {
            match parse_entry_line(&data[s..e]) {
                Some(entry) => {
                    if let Some(line) = corrupt_line {
                        return Err(FiError::JournalCorrupt { line });
                    }
                    entries.insert(entry.k, entry);
                    valid_end = e + 1;
                }
                None => {
                    // Line 1 is the header; entry `idx` sits on line idx+2.
                    corrupt_line.get_or_insert(idx + 2);
                }
            }
        }
        if corrupt_line.is_some() {
            // Only trailing lines were invalid: the torn tail of an
            // interrupted write. Truncate it away below.
            truncated_tail = true;
        }
        for entry in entries.values() {
            attempts.insert(entry.k, entry.attempts);
        }
        let entries: HashMap<u64, (RunRecord, RunStats)> = entries
            .into_iter()
            .map(|(k, entry)| (k, (entry.record, entry.stats)))
            .collect();

        let mut file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("reopening journal", e))?;
        if valid_end < data.len() {
            file.set_len(valid_end as u64)
                .map_err(|e| io_err("truncating torn journal tail", e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seeking journal end", e))?;
        let recovered = entries.len();
        Ok((
            RunJournal {
                path,
                writer: BufWriter::new(file),
                entries,
                attempts,
                unsynced: 0,
                fsync_interval: DEFAULT_FSYNC_INTERVAL,
                appends: Counter::noop(),
                fsyncs: Counter::noop(),
                fsync_micros: Histogram::noop(),
                chaos: None,
            },
            LoadedJournal {
                recovered,
                truncated_tail,
            },
        ))
    }

    /// Sets the fsync batching interval: the journal `fsync`s after every
    /// `interval` appends. Campaigns configure this from
    /// [`crate::campaign::CampaignConfig::journal_fsync_interval`] (already
    /// validated > 0); values are clamped to at least 1 here as a backstop.
    pub fn set_fsync_interval(&mut self, interval: usize) {
        self.fsync_interval = interval.max(1);
    }

    /// The active fsync batching interval.
    pub fn fsync_interval(&self) -> usize {
        self.fsync_interval
    }

    /// Attaches telemetry: an append counter, an fsync counter and an
    /// fsync-latency histogram (`process.journal_appends`,
    /// `process.journal_fsyncs`, `process.journal_fsync_micros`). No-op
    /// when `obs` is disabled.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.appends = obs.counter("process.journal_appends");
        self.fsyncs = obs.counter("process.journal_fsyncs");
        self.fsync_micros = obs.histogram("process.journal_fsync_micros");
    }

    /// Attaches a chaos injector: scheduled `journal-write` / `journal-fsync`
    /// faults from its plan are injected into [`RunJournal::append`] and
    /// [`RunJournal::sync`]. Production journals never call this; with no
    /// injector the hooks cost one `Option` branch.
    pub fn set_chaos(&mut self, chaos: Arc<ChaosInjector>) {
        self.chaos = Some(chaos);
    }

    /// Appends one finished run with its execution statistics and the number
    /// of attempts it took (1 unless process isolation retried it). The line
    /// is CRC32-prefixed, flushed to the OS immediately and `fsync`ed every
    /// [`RunJournal::fsync_interval`] appends.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::Journal`] on I/O failure.
    pub fn append(
        &mut self,
        k: u64,
        record: &RunRecord,
        stats: &RunStats,
        attempts: u32,
    ) -> Result<(), FiError> {
        let entry = JournalEntry {
            k,
            attempts,
            record: record.clone(),
            stats: *stats,
        };
        let line = entry_line(&entry)?;
        let fault = self.chaos.as_ref().and_then(|c| c.on_journal_append());
        let mut retries: u32 = 0;
        match fault {
            Some(IoFaultKind::Eio) => {
                return Err(io_err(
                    "appending journal entry",
                    std::io::Error::from_raw_os_error(5), // EIO
                ));
            }
            Some(IoFaultKind::Short) => {
                // A torn partial write: a prefix of the line reaches the
                // file with no newline, then the device fails — exactly the
                // tail shape `open_or_create` truncates away on resume.
                let cut = line.len() / 2;
                let _ = self
                    .writer
                    .write_all(&line.as_bytes()[..cut])
                    .and_then(|()| self.writer.flush());
                return Err(io_err("appending journal entry", enospc_error()));
            }
            Some(IoFaultKind::Enospc | IoFaultKind::EnospcOnce) => loop {
                let still_failing = fault == Some(IoFaultKind::Enospc) || retries == 0;
                if !still_failing {
                    break;
                }
                if retries >= ENOSPC_APPEND_RETRIES {
                    return Err(FiError::JournalDiskFull { retries });
                }
                retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(5 * u64::from(retries)));
            },
            None => {}
        }
        // Stage the full line in the writer's buffer (memory only, unless
        // the buffer spills), then make the flush durable under a bounded
        // ENOSPC retry: transient pressure (log rotation, tmp reaping)
        // often clears within milliseconds, while a genuinely full disk
        // aborts with the typed, resumable `JournalDiskFull`.
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| {
                if is_enospc(&e) {
                    FiError::JournalDiskFull { retries }
                } else {
                    io_err("appending journal entry", e)
                }
            })?;
        loop {
            match self.writer.flush() {
                Ok(()) => break,
                Err(e) if is_enospc(&e) && retries < ENOSPC_APPEND_RETRIES => {
                    retries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(5 * u64::from(retries)));
                }
                Err(e) if is_enospc(&e) => return Err(FiError::JournalDiskFull { retries }),
                Err(e) => return Err(io_err("appending journal entry", e)),
            }
        }
        self.appends.inc();
        self.entries.insert(k, (entry.record, entry.stats));
        self.attempts.insert(k, attempts);
        self.unsynced += 1;
        if self.unsynced >= self.fsync_interval {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered data and `fsync`s the file.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::Journal`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), FiError> {
        let started = std::time::Instant::now();
        let fault = self.chaos.as_ref().and_then(|c| c.on_journal_fsync());
        let mut retries: u32 = 0;
        match fault {
            // fsync has no "short" shape; both map to a hard I/O error.
            Some(IoFaultKind::Eio | IoFaultKind::Short) => {
                return Err(io_err(
                    "syncing journal",
                    std::io::Error::from_raw_os_error(5), // EIO
                ));
            }
            Some(IoFaultKind::Enospc | IoFaultKind::EnospcOnce) => loop {
                let still_failing = fault == Some(IoFaultKind::Enospc) || retries == 0;
                if !still_failing {
                    break;
                }
                if retries >= ENOSPC_APPEND_RETRIES {
                    return Err(FiError::JournalDiskFull { retries });
                }
                retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(5 * u64::from(retries)));
            },
            None => {}
        }
        self.writer
            .flush()
            .map_err(|e| io_err("flushing journal", e))?;
        loop {
            match self.writer.get_ref().sync_data() {
                Ok(()) => break,
                Err(e) if is_enospc(&e) && retries < ENOSPC_APPEND_RETRIES => {
                    retries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(5 * u64::from(retries)));
                }
                Err(e) if is_enospc(&e) => return Err(FiError::JournalDiskFull { retries }),
                Err(e) => return Err(io_err("syncing journal", e)),
            }
        }
        self.fsyncs.inc();
        self.fsync_micros
            .observe(started.elapsed().as_micros() as u64);
        self.unsynced = 0;
        Ok(())
    }

    /// Records and statistics recovered from disk plus those appended this
    /// session, keyed by coordinate index.
    pub fn entries(&self) -> &HashMap<u64, (RunRecord, RunStats)> {
        &self.entries
    }

    /// Per-coordinate attempt counts recovered from disk plus those appended
    /// this session.
    pub fn attempts(&self) -> &HashMap<u64, u32> {
        &self.attempts
    }

    /// Number of journaled runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no runs are journaled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ErrorModel;
    use crate::outcome::RunOutcome;
    use crate::spec::PortTarget;

    fn header() -> JournalHeader {
        let spec = CampaignSpec::paper_style(vec![PortTarget::new("CALC", "pulscnt")], 2);
        JournalHeader::new(&spec, 42, Some(6_000))
    }

    fn record(time_ms: u64) -> RunRecord {
        RunRecord {
            module: "CALC".into(),
            input_signal: "pulscnt".into(),
            model: ErrorModel::BitFlip { bit: 3 },
            time_ms,
            case: 0,
            original_value: 7,
            corrupted_value: 15,
            first_divergence: vec![Some(510), None],
            outcome: RunOutcome::Completed,
        }
    }

    fn stats(ticks: u64) -> RunStats {
        RunStats {
            sim_ticks: ticks,
            forked: true,
            converged_ms: Some(ticks + 50),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("permea-journal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    #[test]
    fn create_append_reload_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.append(0, &record(500), &stats(40), 1).unwrap();
        j.append(7, &record(1_000), &RunStats::default(), 3)
            .unwrap();
        j.sync().unwrap();
        drop(j);

        let (j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 2);
        assert!(!loaded.truncated_tail);
        assert_eq!(j.len(), 2);
        assert_eq!(j.entries()[&0], (record(500), stats(40)));
        assert_eq!(j.entries()[&7], (record(1_000), RunStats::default()));
    }

    #[test]
    fn torn_tail_is_truncated_and_append_continues() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.append(0, &record(500), &stats(40), 1).unwrap();
        j.sync().unwrap();
        drop(j);

        // Simulate kill -9 mid-write: a partial JSON line with no newline.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"k\":1,\"record\":{\"modu").unwrap();
        }

        let (mut j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 1);
        assert!(loaded.truncated_tail);
        j.append(1, &record(1_500), &stats(99), 1).unwrap();
        j.sync().unwrap();
        drop(j);

        let (j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 2);
        assert!(!loaded.truncated_tail);
        assert_eq!(j.entries()[&1], (record(1_500), stats(99)));
    }

    fn chaos(spec: &str) -> Arc<ChaosInjector> {
        Arc::new(ChaosInjector::new(
            crate::chaos::ChaosPlan::parse(spec).expect("chaos spec parses"),
        ))
    }

    #[test]
    fn injected_eio_surfaces_typed_and_leaves_tail_parseable() {
        let path = tmp("chaos-eio");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.set_chaos(chaos("journal-write=eio@1"));
        j.append(0, &record(500), &stats(40), 1).unwrap();
        let err = j.append(1, &record(1_000), &stats(41), 1).unwrap_err();
        assert!(matches!(err, FiError::Journal { .. }));
        j.sync().unwrap();
        drop(j);

        // The failed append wrote nothing: record 0 survives, the file is
        // clean, and resuming appends exactly where the failure struck.
        let (mut j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 1);
        assert!(!loaded.truncated_tail);
        j.append(1, &record(1_000), &stats(41), 1).unwrap();
        j.sync().unwrap();
        drop(j);
        let audit = audit_journal(&path).unwrap();
        assert!(audit.is_clean());
        assert_eq!(audit.records, 2);
    }

    #[test]
    fn injected_short_write_tears_the_tail_and_resume_recovers() {
        let path = tmp("chaos-short");
        let _ = std::fs::remove_file(&path);
        let clean = tmp("chaos-short-clean");
        let _ = std::fs::remove_file(&clean);

        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.set_chaos(chaos("journal-write=short@1"));
        j.append(0, &record(500), &stats(40), 1).unwrap();
        let err = j.append(1, &record(1_000), &stats(41), 1).unwrap_err();
        assert!(matches!(err, FiError::Journal { .. }));
        drop(j);

        // The torn prefix is on disk; resume truncates it and re-appends.
        let (mut j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 1);
        assert!(loaded.truncated_tail, "short write left a torn tail");
        j.append(1, &record(1_000), &stats(41), 1).unwrap();
        j.sync().unwrap();
        drop(j);

        // Byte-identical to a journal that never saw the fault.
        let mut u = RunJournal::create(&clean, &header()).unwrap();
        u.append(0, &record(500), &stats(40), 1).unwrap();
        u.append(1, &record(1_000), &stats(41), 1).unwrap();
        u.sync().unwrap();
        drop(u);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&clean).unwrap()
        );
        assert!(audit_journal(&path).unwrap().is_clean());
    }

    #[test]
    fn persistent_enospc_exhausts_retries_into_disk_full() {
        let path = tmp("chaos-enospc");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.set_chaos(chaos("journal-write=enospc@0"));
        let err = j.append(0, &record(500), &stats(40), 1).unwrap_err();
        assert!(
            matches!(err, FiError::JournalDiskFull { retries } if retries == ENOSPC_APPEND_RETRIES)
        );
        // The journal is still usable once "space is freed" (the fault was
        // scheduled only for append 0's index).
        j.append(0, &record(500), &stats(40), 1).unwrap();
        j.sync().unwrap();
        drop(j);
        let audit = audit_journal(&path).unwrap();
        assert!(audit.is_clean());
        assert_eq!(audit.records, 1);
    }

    #[test]
    fn transient_enospc_is_absorbed_by_the_bounded_retry() {
        let path = tmp("chaos-enospc-once");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.set_chaos(chaos(
            "journal-write=enospc-once@0,journal-fsync=enospc-once@0",
        ));
        j.append(0, &record(500), &stats(40), 1)
            .expect("transient ENOSPC is retried away");
        j.sync().expect("transient fsync ENOSPC is retried away");
        drop(j);
        let (j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 1);
        assert!(!loaded.truncated_tail);
        drop(j);
    }

    #[test]
    fn injected_fsync_eio_surfaces_typed() {
        let path = tmp("chaos-fsync");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.set_chaos(chaos("journal-fsync=eio@0"));
        j.append(0, &record(500), &stats(40), 1).unwrap();
        let err = j.sync().unwrap_err();
        assert!(matches!(err, FiError::Journal { .. }));
        // The data was flushed to the OS before fsync failed; a reopen
        // still recovers it.
        drop(j);
        let (j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 1);
        drop(j);
    }

    #[test]
    fn audit_flags_conflicting_records() {
        let path = tmp("audit-conflict");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.append(0, &record(500), &stats(40), 1).unwrap();
        j.sync().unwrap();
        drop(j);
        // Forge a second, different record for the same coordinate.
        {
            use std::io::Write as _;
            let entry = JournalEntry {
                k: 0,
                attempts: 1,
                record: record(999),
                stats: stats(41),
            };
            let line = entry_line(&entry).unwrap();
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{line}").unwrap();
        }
        let audit = audit_journal(&path).unwrap();
        assert!(!audit.is_clean());
        assert!(
            !audit.is_clean_merged(),
            "a true content conflict fails even the merged bar"
        );
        assert_eq!(audit.conflicts, vec![0]);
        assert_eq!(audit.records, 2);
        assert_eq!(audit.distinct, 1);
    }

    #[test]
    fn audit_classifies_attempt_only_repeats_as_upgrades_not_conflicts() {
        // The shape merge_journals legitimately produces when it keeps the
        // max-attempts record: same coordinate, same record and stats,
        // differing attempt counts.
        let path = tmp("audit-upgrade");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.append(0, &record(500), &stats(40), 1).unwrap();
        j.sync().unwrap();
        drop(j);
        {
            use std::io::Write as _;
            let entry = JournalEntry {
                k: 0,
                attempts: 3,
                record: record(500),
                stats: stats(40),
            };
            let line = entry_line(&entry).unwrap();
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{line}").unwrap();
        }
        let audit = audit_journal(&path).unwrap();
        assert_eq!(audit.attempt_upgrades, 1);
        assert_eq!(audit.identical_duplicates, 0);
        assert!(audit.conflicts.is_empty());
        assert!(!audit.is_clean(), "strict bar still refuses double-appends");
        assert!(
            audit.is_clean_merged(),
            "merged bar accepts attempt-only repeats"
        );
    }

    #[test]
    fn audit_accepts_output_of_a_max_attempts_merge() {
        // End-to-end over the real merge: two shards finished coordinate 0
        // identically with different attempt counts; the merged journal must
        // audit clean on both bars (merge collapses the duplicate into one
        // line, keeping max attempts).
        let a = shard_file("audit-merge-a", &[(0, record(500), stats(40), 1)]);
        let b = shard_file(
            "audit-merge-b",
            &[
                (0, record(500), stats(40), 3),
                (1, record(1_000), stats(41), 1),
            ],
        );
        let out = tmp("audit-merge-out");
        let _ = std::fs::remove_file(&out);
        merge_journals(&out, &[a, b]).unwrap();
        let audit = audit_journal(&out).unwrap();
        assert!(audit.is_clean());
        assert!(audit.is_clean_merged());
        assert_eq!(audit.records, 2);
        assert_eq!(audit.distinct, 2);
    }

    #[test]
    fn mismatched_header_is_rejected() {
        let path = tmp("mismatch");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::create(&path, &header()).unwrap();
        drop(j);

        let mut other = header();
        other.master_seed = 43;
        assert_eq!(
            RunJournal::open_or_create(&path, &other).unwrap_err(),
            FiError::JournalMismatch {
                field: "master_seed"
            }
        );
        let mut other = header();
        other.horizon_ms = None;
        assert_eq!(
            RunJournal::open_or_create(&path, &other).unwrap_err(),
            FiError::JournalMismatch {
                field: "horizon_ms"
            }
        );
        let mut other = header();
        other.spec.cases = 99;
        assert_eq!(
            RunJournal::open_or_create(&path, &other).unwrap_err(),
            FiError::JournalMismatch { field: "spec" }
        );
    }

    #[test]
    fn open_or_create_makes_fresh_journal() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let (j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 0);
        assert!(!loaded.truncated_tail);
        assert!(j.is_empty());
        assert!(path.exists());
    }

    #[test]
    fn quarantined_outcomes_roundtrip_through_journal() {
        let path = tmp("quarantine");
        let _ = std::fs::remove_file(&path);
        let mut hung = record(500);
        hung.outcome = RunOutcome::Hung { last_tick_ms: 498 };
        hung.first_divergence = vec![];
        let mut panicked = record(1_000);
        panicked.outcome = RunOutcome::Panicked {
            message: "attempt to add with overflow".into(),
        };
        panicked.first_divergence = vec![];
        let quarantined = RunStats::default();
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.append(3, &hung, &quarantined, 1).unwrap();
        j.append(4, &panicked, &quarantined, 2).unwrap();
        j.sync().unwrap();
        drop(j);

        let (j, _) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(j.entries()[&3], (hung, quarantined));
        assert_eq!(j.entries()[&4], (panicked, quarantined));
    }

    #[test]
    fn version_1_journal_is_rejected_on_resume() {
        let path = tmp("version");
        let _ = std::fs::remove_file(&path);
        let mut old = header();
        old.version = 1;
        let line = serde_json::to_string(&old).unwrap();
        std::fs::write(&path, format!("{line}\n")).unwrap();
        assert_eq!(
            RunJournal::open_or_create(&path, &header()).unwrap_err(),
            FiError::JournalMismatch { field: "version" }
        );
    }

    #[test]
    fn fsync_interval_batches_syncs_and_records_latency() {
        let path = tmp("fsync");
        let _ = std::fs::remove_file(&path);
        let obs = Obs::with_sinks(vec![]);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        assert_eq!(j.fsync_interval(), DEFAULT_FSYNC_INTERVAL);
        j.set_fsync_interval(2);
        j.attach_obs(&obs);
        for k in 0..5 {
            j.append(k, &record(500), &stats(10), 1).unwrap();
        }
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("process.journal_appends"), Some(5));
        // 5 appends at interval 2 -> syncs after the 2nd and 4th append.
        assert_eq!(snap.counter("process.journal_fsyncs"), Some(2));
        assert_eq!(snap.histograms["process.journal_fsync_micros"].count, 2);
        // The backstop clamp: interval 0 behaves as 1.
        j.set_fsync_interval(0);
        assert_eq!(j.fsync_interval(), 1);
    }

    #[test]
    fn record_lines_carry_verifiable_crc_prefix() {
        let path = tmp("crcformat");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.append(0, &record(500), &stats(40), 1).unwrap();
        j.append(1, &record(1_000), &stats(41), 2).unwrap();
        j.sync().unwrap();
        drop(j);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines[1..] {
            let (crc_hex, json) = line.split_once(' ').unwrap();
            assert_eq!(crc_hex.len(), 8);
            assert!(crc_hex.chars().all(|c| c.is_ascii_hexdigit()));
            assert_eq!(crc_hex, &crc_hex.to_lowercase());
            let expected = u32::from_str_radix(crc_hex, 16).unwrap();
            assert_eq!(crc32(json.as_bytes()), expected);
            let entry: JournalEntry = serde_json::from_str(json).unwrap();
            assert!(entry.k < 2);
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn attempts_roundtrip_through_reload() {
        let path = tmp("attempts");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.append(0, &record(500), &stats(40), 1).unwrap();
        j.append(5, &record(1_000), &stats(41), 3).unwrap();
        j.sync().unwrap();
        drop(j);

        let (j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 2);
        assert_eq!(j.attempts()[&0], 1);
        assert_eq!(j.attempts()[&5], 3);
    }

    #[test]
    fn mid_file_corruption_is_rejected_with_line_number() {
        let path = tmp("midcorrupt");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        for k in 0..4 {
            j.append(k, &record(500 * (k + 1)), &stats(10 + k), 1)
                .unwrap();
        }
        j.sync().unwrap();
        drop(j);

        // Flip one bit inside the *second* record (physical line 3), leaving
        // intact records after it.
        let mut data = std::fs::read(&path).unwrap();
        let mut newlines = data
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i);
        let line3_start = newlines.nth(1).unwrap() + 1;
        data[line3_start + 20] ^= 0x04;
        std::fs::write(&path, &data).unwrap();

        assert_eq!(
            RunJournal::open_or_create(&path, &header()).unwrap_err(),
            FiError::JournalCorrupt { line: 3 }
        );
    }

    /// Writes a shard journal holding `entries` and returns its path.
    fn shard_file(name: &str, entries: &[(u64, RunRecord, RunStats, u32)]) -> PathBuf {
        let path = tmp(name);
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        for (k, record, stats, attempts) in entries {
            j.append(*k, record, stats, *attempts).unwrap();
        }
        j.sync().unwrap();
        path
    }

    #[test]
    fn merge_of_disjoint_shards_matches_sequential_journal() {
        // Shard 0/2 owns even coordinates, shard 1/2 odd ones.
        let a = shard_file(
            "merge-a",
            &[
                (0, record(500), stats(40), 1),
                (2, record(1_500), stats(42), 1),
            ],
        );
        let b = shard_file(
            "merge-b",
            &[
                (1, record(1_000), stats(41), 1),
                (3, record(2_000), stats(43), 1),
            ],
        );
        // The reference: one journal appending every coordinate in order.
        let full = shard_file(
            "merge-full",
            &[
                (0, record(500), stats(40), 1),
                (1, record(1_000), stats(41), 1),
                (2, record(1_500), stats(42), 1),
                (3, record(2_000), stats(43), 1),
            ],
        );

        let out = tmp("merge-out");
        let _ = std::fs::remove_file(&out);
        let summary = merge_journals(&out, &[a, b]).unwrap();
        assert_eq!(summary.inputs, 2);
        assert_eq!(summary.records, 4);
        assert_eq!(summary.duplicates, 0);
        assert_eq!(summary.torn_tails, 0);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&full).unwrap(),
            "merged journal is not byte-identical to the sequential journal"
        );

        // The merged journal resumes like any other.
        let (j, loaded) = RunJournal::open_or_create(&out, &header()).unwrap();
        assert_eq!(loaded.recovered, 4);
        assert_eq!(j.attempts()[&3], 1);
    }

    #[test]
    fn merge_collapses_identical_duplicates_keeping_max_attempts() {
        let a = shard_file("dup-a", &[(0, record(500), stats(40), 1)]);
        let b = shard_file(
            "dup-b",
            &[
                (0, record(500), stats(40), 3),
                (1, record(1_000), stats(41), 1),
            ],
        );
        let out = tmp("dup-out");
        let _ = std::fs::remove_file(&out);
        let summary = merge_journals(&out, &[a, b]).unwrap();
        assert_eq!(summary.records, 2);
        assert_eq!(summary.duplicates, 1);
        let merged = read_journal(&out).unwrap();
        assert_eq!(merged.entries[&0].attempts, 3);
    }

    #[test]
    fn merge_rejects_conflicting_records() {
        let a = shard_file("conflict-a", &[(7, record(500), stats(40), 1)]);
        let b = shard_file("conflict-b", &[(7, record(999), stats(40), 1)]);
        let out = tmp("conflict-out");
        let _ = std::fs::remove_file(&out);
        assert_eq!(
            merge_journals(&out, &[a, b]).unwrap_err(),
            FiError::JournalMergeConflict { k: 7 }
        );
    }

    #[test]
    fn merge_rejects_mismatched_headers() {
        let a = shard_file("hdr-a", &[(0, record(500), stats(40), 1)]);
        let path = tmp("hdr-b");
        let _ = std::fs::remove_file(&path);
        let mut other = header();
        other.master_seed = 43;
        let mut j = RunJournal::create(&path, &other).unwrap();
        j.append(1, &record(1_000), &stats(41), 1).unwrap();
        j.sync().unwrap();
        drop(j);
        let out = tmp("hdr-out");
        let _ = std::fs::remove_file(&out);
        assert_eq!(
            merge_journals(&out, &[a, path]).unwrap_err(),
            FiError::JournalMismatch {
                field: "master_seed"
            }
        );
    }

    #[test]
    fn merge_tolerates_torn_tail_without_mutating_input() {
        let a = shard_file(
            "torn-a",
            &[
                (0, record(500), stats(40), 1),
                (2, record(1_500), stats(42), 1),
            ],
        );
        let b = shard_file("torn-b", &[(1, record(1_000), stats(41), 1)]);
        // Tear shard b mid-write.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&b).unwrap();
            f.write_all(b"{\"k\":3,\"record\":{\"modu").unwrap();
        }
        let before = std::fs::read(&b).unwrap();

        let out = tmp("torn-out");
        let _ = std::fs::remove_file(&out);
        let summary = merge_journals(&out, &[a, b.clone()]).unwrap();
        assert_eq!(summary.records, 3);
        assert_eq!(summary.torn_tails, 1);
        // Read-only: the torn input is untouched.
        assert_eq!(std::fs::read(&b).unwrap(), before);
        let merged = read_journal(&out).unwrap();
        assert!(!merged.truncated_tail);
        assert_eq!(merged.entries.len(), 3);
    }

    #[test]
    fn merge_requires_at_least_one_input() {
        let out = tmp("empty-out");
        let _ = std::fs::remove_file(&out);
        assert!(matches!(
            merge_journals(&out, &[]).unwrap_err(),
            FiError::JournalMergeEmpty
        ));
        assert!(!out.exists(), "no output is created for an empty merge");
    }

    #[test]
    fn read_journal_rejects_mid_file_corruption() {
        let path = shard_file(
            "ro-midcorrupt",
            &[
                (0, record(500), stats(40), 1),
                (1, record(1_000), stats(41), 1),
                (2, record(1_500), stats(42), 1),
            ],
        );
        let mut data = std::fs::read(&path).unwrap();
        let mut newlines = data
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i);
        let line3_start = newlines.nth(1).unwrap() + 1;
        data[line3_start + 20] ^= 0x04;
        std::fs::write(&path, &data).unwrap();
        assert_eq!(
            read_journal(&path).unwrap_err(),
            FiError::JournalCorrupt { line: 3 }
        );
    }

    #[test]
    fn complete_but_corrupt_final_line_is_truncated_as_torn_tail() {
        let path = tmp("corrupttail");
        let _ = std::fs::remove_file(&path);
        let mut j = RunJournal::create(&path, &header()).unwrap();
        j.append(0, &record(500), &stats(40), 1).unwrap();
        j.append(1, &record(1_000), &stats(41), 1).unwrap();
        j.sync().unwrap();
        drop(j);

        // Corrupt the *last* record only: with nothing intact after it, this
        // is indistinguishable from a torn write and must truncate, not
        // error.
        let mut data = std::fs::read(&path).unwrap();
        let last_line_start = {
            let trimmed = &data[..data.len() - 1];
            trimmed.iter().rposition(|&b| b == b'\n').unwrap() + 1
        };
        data[last_line_start + 15] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let (j, loaded) = RunJournal::open_or_create(&path, &header()).unwrap();
        assert_eq!(loaded.recovered, 1);
        assert!(loaded.truncated_tail);
        assert!(j.entries().contains_key(&0));
        assert!(!j.entries().contains_key(&1));
    }
}
