//! Error models: how an injected error transforms a 16-bit signal value.
//!
//! The paper's experiment uses single bit-flips in each of the 16 bit
//! positions. The other models are standard SWIFI repertoire (stuck-at,
//! offsets, random replacement, zeroing) kept for the workload/error-model
//! sensitivity studies the paper lists as future work.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transformation applied to the current value of a signal at injection
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ErrorModel {
    /// Flip one bit (0 = least significant).
    BitFlip {
        /// Bit position, `0..16`.
        bit: u8,
    },
    /// Force one bit to one.
    StuckAtOne {
        /// Bit position, `0..16`.
        bit: u8,
    },
    /// Force one bit to zero.
    StuckAtZero {
        /// Bit position, `0..16`.
        bit: u8,
    },
    /// Add a signed offset with wrapping arithmetic.
    Offset {
        /// The offset to add.
        delta: i16,
    },
    /// Replace the value with a uniformly random 16-bit value.
    RandomValue,
    /// Replace the value with zero.
    Zero,
    /// Replace the value with all ones (0xFFFF).
    Saturate,
    /// Flip a contiguous burst of bits — the multi-bit upsets of adjacent
    /// cells that single-event effects produce in real memories.
    Burst {
        /// Lowest bit of the burst, `0..16`.
        start: u8,
        /// Number of bits flipped; `start + width` must not exceed 16.
        width: u8,
    },
    /// Flip every bit set in an explicit mask (arbitrary multi-bit upset).
    MultiBit {
        /// XOR mask; must be non-zero or the model would be the identity.
        mask: u16,
    },
    /// Re-flip one bit periodically: the error fires at the injection
    /// instant `t0` and again at `t0 + i·period_ms` for `i < count` — an
    /// intermittent contact or marginal cell rather than a one-shot upset.
    /// Fires past the end of a run are dropped (the error source dies with
    /// the run).
    Intermittent {
        /// Bit position, `0..16`.
        bit: u8,
        /// Milliseconds between consecutive fires; must be non-zero.
        period_ms: u16,
        /// Total number of fires, including the first; must be non-zero.
        count: u8,
    },
}

impl ErrorModel {
    /// All sixteen single-bit flips — the paper's model set.
    pub fn all_bit_flips() -> Vec<ErrorModel> {
        (0..16).map(|bit| ErrorModel::BitFlip { bit }).collect()
    }

    /// Applies the model to `value`. `rng` is only consulted by
    /// [`ErrorModel::RandomValue`]; pass a deterministic, per-run seeded RNG
    /// for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if a bit position is 16 or larger.
    pub fn apply<R: Rng>(self, value: u16, rng: &mut R) -> u16 {
        match self {
            ErrorModel::BitFlip { bit } => {
                assert!(bit < 16, "bit position out of range");
                value ^ (1 << bit)
            }
            ErrorModel::StuckAtOne { bit } => {
                assert!(bit < 16, "bit position out of range");
                value | (1 << bit)
            }
            ErrorModel::StuckAtZero { bit } => {
                assert!(bit < 16, "bit position out of range");
                value & !(1 << bit)
            }
            ErrorModel::Offset { delta } => value.wrapping_add(delta as u16),
            ErrorModel::RandomValue => rng.gen(),
            ErrorModel::Zero => 0,
            ErrorModel::Saturate => u16::MAX,
            ErrorModel::Burst { start, width } => {
                assert!(width >= 1, "burst width must be at least one bit");
                assert!(
                    start as u32 + width as u32 <= 16,
                    "burst exceeds the 16-bit word"
                );
                let mask = (((1u32 << width) - 1) << start) as u16;
                value ^ mask
            }
            ErrorModel::MultiBit { mask } => value ^ mask,
            ErrorModel::Intermittent { bit, .. } => {
                assert!(bit < 16, "bit position out of range");
                value ^ (1 << bit)
            }
        }
    }

    /// `true` if the model can leave the value unchanged (stuck-at on an
    /// already-matching bit, zero offset, random collision, …). Bit flips —
    /// single, burst, masked or intermittent — always change the value
    /// (a zero mask is rejected by [`ErrorModel::validate`]).
    pub fn may_be_identity(self) -> bool {
        !matches!(
            self,
            ErrorModel::BitFlip { .. }
                | ErrorModel::Burst { .. }
                | ErrorModel::MultiBit { .. }
                | ErrorModel::Intermittent { .. }
        )
    }

    /// Checks the model's parameters (bit positions inside the 16-bit word,
    /// non-degenerate bursts, a non-identity mask, a live intermittent
    /// schedule). [`crate::spec::CampaignSpec::validate`] calls this for
    /// every model so malformed parameters are typed errors at admission,
    /// not panics mid-campaign.
    ///
    /// # Errors
    ///
    /// A static description of the violated constraint.
    pub fn validate(self) -> Result<(), &'static str> {
        match self {
            ErrorModel::BitFlip { bit }
            | ErrorModel::StuckAtOne { bit }
            | ErrorModel::StuckAtZero { bit } => {
                if bit >= 16 {
                    return Err("bit position must be below 16");
                }
            }
            ErrorModel::Burst { start, width } => {
                if width == 0 {
                    return Err("burst width must be at least one bit");
                }
                if start as u32 + width as u32 > 16 {
                    return Err("burst start + width must not exceed 16");
                }
            }
            ErrorModel::MultiBit { mask } => {
                if mask == 0 {
                    return Err("multi-bit mask must be non-zero (zero is the identity)");
                }
            }
            ErrorModel::Intermittent {
                bit,
                period_ms,
                count,
            } => {
                if bit >= 16 {
                    return Err("bit position must be below 16");
                }
                if period_ms == 0 {
                    return Err("intermittent period must be at least 1 ms");
                }
                if count == 0 {
                    return Err("intermittent count must be at least 1");
                }
            }
            ErrorModel::Offset { .. }
            | ErrorModel::RandomValue
            | ErrorModel::Zero
            | ErrorModel::Saturate => {}
        }
        Ok(())
    }

    /// `true` when the model fires at tick `now` of a run whose injection
    /// instant is `t0`. Every model fires at `t0`; only
    /// [`ErrorModel::Intermittent`] re-fires after it.
    pub fn fires_at(self, t0: u64, now: u64) -> bool {
        match self {
            ErrorModel::Intermittent {
                period_ms, count, ..
            } => {
                now >= t0
                    && (now - t0).is_multiple_of(u64::from(period_ms.max(1)))
                    && (now - t0) / u64::from(period_ms.max(1)) < u64::from(count)
            }
            _ => now == t0,
        }
    }

    /// The last tick at which the model fires for injection instant `t0` —
    /// `t0` itself for every one-shot model. Convergence early-exit must not
    /// engage before this instant: the system cannot have durably
    /// reconverged while the error source is still live.
    pub fn last_instant(self, t0: u64) -> u64 {
        match self {
            ErrorModel::Intermittent {
                period_ms, count, ..
            } => t0 + u64::from(period_ms) * u64::from(count.saturating_sub(1)),
            _ => t0,
        }
    }
}

impl fmt::Display for ErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorModel::BitFlip { bit } => write!(f, "flip{bit}"),
            ErrorModel::StuckAtOne { bit } => write!(f, "stuck1@{bit}"),
            ErrorModel::StuckAtZero { bit } => write!(f, "stuck0@{bit}"),
            ErrorModel::Offset { delta } => write!(f, "offset{delta:+}"),
            ErrorModel::RandomValue => write!(f, "random"),
            ErrorModel::Zero => write!(f, "zero"),
            ErrorModel::Saturate => write!(f, "saturate"),
            ErrorModel::Burst { start, width } => write!(f, "burst{start}+{width}"),
            ErrorModel::MultiBit { mask } => write!(f, "mask{mask:#06x}"),
            ErrorModel::Intermittent {
                bit,
                period_ms,
                count,
            } => write!(f, "int{bit}x{count}@{period_ms}ms"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let mut r = rng();
        for bit in 0..16u8 {
            let v = 0b1010_1010_1010_1010;
            let out = ErrorModel::BitFlip { bit }.apply(v, &mut r);
            assert_eq!((out ^ v).count_ones(), 1);
            assert_eq!(out ^ v, 1 << bit);
        }
    }

    #[test]
    fn all_bit_flips_covers_16_positions() {
        let flips = ErrorModel::all_bit_flips();
        assert_eq!(flips.len(), 16);
        let mut r = rng();
        let distinct: std::collections::HashSet<u16> =
            flips.iter().map(|m| m.apply(0, &mut r)).collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn stuck_at_models() {
        let mut r = rng();
        assert_eq!(ErrorModel::StuckAtOne { bit: 3 }.apply(0, &mut r), 8);
        assert_eq!(ErrorModel::StuckAtOne { bit: 3 }.apply(8, &mut r), 8); // identity
        assert_eq!(ErrorModel::StuckAtZero { bit: 3 }.apply(8, &mut r), 0);
        assert!(ErrorModel::StuckAtOne { bit: 3 }.may_be_identity());
        assert!(!ErrorModel::BitFlip { bit: 3 }.may_be_identity());
    }

    #[test]
    fn offset_wraps() {
        let mut r = rng();
        assert_eq!(ErrorModel::Offset { delta: -1 }.apply(0, &mut r), u16::MAX);
        assert_eq!(ErrorModel::Offset { delta: 10 }.apply(u16::MAX, &mut r), 9);
    }

    #[test]
    fn replacement_models() {
        let mut r = rng();
        assert_eq!(ErrorModel::Zero.apply(1234, &mut r), 0);
        assert_eq!(ErrorModel::Saturate.apply(1234, &mut r), u16::MAX);
    }

    #[test]
    fn random_is_deterministic_under_seed() {
        let a = ErrorModel::RandomValue.apply(7, &mut rng());
        let b = ErrorModel::RandomValue.apply(7, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        ErrorModel::BitFlip { bit: 16 }.apply(0, &mut rng());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ErrorModel::BitFlip { bit: 5 }.to_string(), "flip5");
        assert_eq!(ErrorModel::Offset { delta: -4 }.to_string(), "offset-4");
        assert_eq!(
            ErrorModel::Burst { start: 3, width: 4 }.to_string(),
            "burst3+4"
        );
        assert_eq!(
            ErrorModel::MultiBit { mask: 0x8001 }.to_string(),
            "mask0x8001"
        );
        assert_eq!(
            ErrorModel::Intermittent {
                bit: 2,
                period_ms: 40,
                count: 3
            }
            .to_string(),
            "int2x3@40ms"
        );
    }

    #[test]
    fn burst_flips_the_contiguous_range() {
        let mut r = rng();
        let m = ErrorModel::Burst { start: 4, width: 3 };
        assert_eq!(m.apply(0, &mut r), 0b0111_0000);
        assert_eq!(m.apply(0b0111_0000, &mut r), 0);
        // The full word is a legal burst.
        let full = ErrorModel::Burst {
            start: 0,
            width: 16,
        };
        assert_eq!(full.apply(0x1234, &mut r), !0x1234);
    }

    #[test]
    fn multi_bit_xors_the_mask() {
        let mut r = rng();
        let m = ErrorModel::MultiBit { mask: 0x8001 };
        assert_eq!(m.apply(0, &mut r), 0x8001);
        assert_eq!(m.apply(0xFFFF, &mut r), 0x7FFE);
    }

    #[test]
    fn intermittent_fires_on_its_schedule_only() {
        let m = ErrorModel::Intermittent {
            bit: 1,
            period_ms: 50,
            count: 3,
        };
        assert!(m.fires_at(500, 500));
        assert!(m.fires_at(500, 550));
        assert!(m.fires_at(500, 600));
        assert!(!m.fires_at(500, 650), "count exhausted");
        assert!(!m.fires_at(500, 525), "off-period tick");
        assert!(!m.fires_at(500, 450), "before the injection instant");
        assert_eq!(m.last_instant(500), 600);
        // One-shot models fire exactly once, at t0.
        let flip = ErrorModel::BitFlip { bit: 0 };
        assert!(flip.fires_at(500, 500));
        assert!(!flip.fires_at(500, 501));
        assert_eq!(flip.last_instant(500), 500);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad_parameters() {
        assert!(ErrorModel::BitFlip { bit: 15 }.validate().is_ok());
        assert!(ErrorModel::BitFlip { bit: 16 }.validate().is_err());
        assert!(ErrorModel::StuckAtOne { bit: 16 }.validate().is_err());
        assert!(ErrorModel::Burst {
            start: 0,
            width: 16
        }
        .validate()
        .is_ok());
        assert!(ErrorModel::Burst {
            start: 1,
            width: 16
        }
        .validate()
        .is_err());
        assert!(ErrorModel::Burst { start: 3, width: 0 }.validate().is_err());
        assert!(ErrorModel::MultiBit { mask: 1 }.validate().is_ok());
        assert!(ErrorModel::MultiBit { mask: 0 }.validate().is_err());
        let good = ErrorModel::Intermittent {
            bit: 3,
            period_ms: 50,
            count: 2,
        };
        assert!(good.validate().is_ok());
        assert!(ErrorModel::Intermittent {
            bit: 16,
            period_ms: 50,
            count: 2
        }
        .validate()
        .is_err());
        assert!(ErrorModel::Intermittent {
            bit: 3,
            period_ms: 0,
            count: 2
        }
        .validate()
        .is_err());
        assert!(ErrorModel::Intermittent {
            bit: 3,
            period_ms: 50,
            count: 0
        }
        .validate()
        .is_err());
        assert!(ErrorModel::Offset { delta: 0 }.validate().is_ok());
    }

    #[test]
    fn new_models_never_act_as_identity() {
        assert!(!ErrorModel::Burst { start: 2, width: 2 }.may_be_identity());
        assert!(!ErrorModel::MultiBit { mask: 5 }.may_be_identity());
        assert!(!ErrorModel::Intermittent {
            bit: 0,
            period_ms: 10,
            count: 1
        }
        .may_be_identity());
    }

    #[test]
    fn new_models_serde_roundtrip() {
        for m in [
            ErrorModel::Burst { start: 3, width: 4 },
            ErrorModel::MultiBit { mask: 0x00F0 },
            ErrorModel::Intermittent {
                bit: 7,
                period_ms: 25,
                count: 4,
            },
        ] {
            let json = serde_json::to_string(&m).unwrap();
            let back: ErrorModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m);
        }
    }
}
