//! Error models: how an injected error transforms a 16-bit signal value.
//!
//! The paper's experiment uses single bit-flips in each of the 16 bit
//! positions. The other models are standard SWIFI repertoire (stuck-at,
//! offsets, random replacement, zeroing) kept for the workload/error-model
//! sensitivity studies the paper lists as future work.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transformation applied to the current value of a signal at injection
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ErrorModel {
    /// Flip one bit (0 = least significant).
    BitFlip {
        /// Bit position, `0..16`.
        bit: u8,
    },
    /// Force one bit to one.
    StuckAtOne {
        /// Bit position, `0..16`.
        bit: u8,
    },
    /// Force one bit to zero.
    StuckAtZero {
        /// Bit position, `0..16`.
        bit: u8,
    },
    /// Add a signed offset with wrapping arithmetic.
    Offset {
        /// The offset to add.
        delta: i16,
    },
    /// Replace the value with a uniformly random 16-bit value.
    RandomValue,
    /// Replace the value with zero.
    Zero,
    /// Replace the value with all ones (0xFFFF).
    Saturate,
}

impl ErrorModel {
    /// All sixteen single-bit flips — the paper's model set.
    pub fn all_bit_flips() -> Vec<ErrorModel> {
        (0..16).map(|bit| ErrorModel::BitFlip { bit }).collect()
    }

    /// Applies the model to `value`. `rng` is only consulted by
    /// [`ErrorModel::RandomValue`]; pass a deterministic, per-run seeded RNG
    /// for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if a bit position is 16 or larger.
    pub fn apply<R: Rng>(self, value: u16, rng: &mut R) -> u16 {
        match self {
            ErrorModel::BitFlip { bit } => {
                assert!(bit < 16, "bit position out of range");
                value ^ (1 << bit)
            }
            ErrorModel::StuckAtOne { bit } => {
                assert!(bit < 16, "bit position out of range");
                value | (1 << bit)
            }
            ErrorModel::StuckAtZero { bit } => {
                assert!(bit < 16, "bit position out of range");
                value & !(1 << bit)
            }
            ErrorModel::Offset { delta } => value.wrapping_add(delta as u16),
            ErrorModel::RandomValue => rng.gen(),
            ErrorModel::Zero => 0,
            ErrorModel::Saturate => u16::MAX,
        }
    }

    /// `true` if the model can leave the value unchanged (stuck-at on an
    /// already-matching bit, zero offset, random collision, …). Bit flips
    /// always change the value.
    pub fn may_be_identity(self) -> bool {
        !matches!(self, ErrorModel::BitFlip { .. })
    }
}

impl fmt::Display for ErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorModel::BitFlip { bit } => write!(f, "flip{bit}"),
            ErrorModel::StuckAtOne { bit } => write!(f, "stuck1@{bit}"),
            ErrorModel::StuckAtZero { bit } => write!(f, "stuck0@{bit}"),
            ErrorModel::Offset { delta } => write!(f, "offset{delta:+}"),
            ErrorModel::RandomValue => write!(f, "random"),
            ErrorModel::Zero => write!(f, "zero"),
            ErrorModel::Saturate => write!(f, "saturate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let mut r = rng();
        for bit in 0..16u8 {
            let v = 0b1010_1010_1010_1010;
            let out = ErrorModel::BitFlip { bit }.apply(v, &mut r);
            assert_eq!((out ^ v).count_ones(), 1);
            assert_eq!(out ^ v, 1 << bit);
        }
    }

    #[test]
    fn all_bit_flips_covers_16_positions() {
        let flips = ErrorModel::all_bit_flips();
        assert_eq!(flips.len(), 16);
        let mut r = rng();
        let distinct: std::collections::HashSet<u16> =
            flips.iter().map(|m| m.apply(0, &mut r)).collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn stuck_at_models() {
        let mut r = rng();
        assert_eq!(ErrorModel::StuckAtOne { bit: 3 }.apply(0, &mut r), 8);
        assert_eq!(ErrorModel::StuckAtOne { bit: 3 }.apply(8, &mut r), 8); // identity
        assert_eq!(ErrorModel::StuckAtZero { bit: 3 }.apply(8, &mut r), 0);
        assert!(ErrorModel::StuckAtOne { bit: 3 }.may_be_identity());
        assert!(!ErrorModel::BitFlip { bit: 3 }.may_be_identity());
    }

    #[test]
    fn offset_wraps() {
        let mut r = rng();
        assert_eq!(ErrorModel::Offset { delta: -1 }.apply(0, &mut r), u16::MAX);
        assert_eq!(ErrorModel::Offset { delta: 10 }.apply(u16::MAX, &mut r), 9);
    }

    #[test]
    fn replacement_models() {
        let mut r = rng();
        assert_eq!(ErrorModel::Zero.apply(1234, &mut r), 0);
        assert_eq!(ErrorModel::Saturate.apply(1234, &mut r), u16::MAX);
    }

    #[test]
    fn random_is_deterministic_under_seed() {
        let a = ErrorModel::RandomValue.apply(7, &mut rng());
        let b = ErrorModel::RandomValue.apply(7, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        ErrorModel::BitFlip { bit: 16 }.apply(0, &mut rng());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ErrorModel::BitFlip { bit: 5 }.to_string(), "flip5");
        assert_eq!(ErrorModel::Offset { delta: -4 }.to_string(), "offset-4");
    }
}
