//! Adaptive sampling: a confidence-driven campaign planner with sequential
//! early stopping.
//!
//! The paper estimates every permeability `P̂_{i,k}` from a fixed dense grid
//! — 4 000 injections per target in the full experiment — even when the
//! Wilson interval around an estimate is already tight after a few hundred
//! runs. The [`AdaptivePlanner`] replaces that enumeration with sequential
//! batches: per injection target it maintains streaming error counts,
//! recomputes the Wilson intervals after every batch, and *closes* a
//! target's stratum once every interval half-width has fallen below the
//! configured [`AdaptivePlan::target_ci`] (or the per-target run cap is
//! hit). The budget of each round is re-allocated to the still-open strata
//! in proportion to their widest interval — successive-elimination style —
//! so the hardest-to-pin-down targets soak up the runs the easy ones no
//! longer need.
//!
//! Determinism is preserved end to end: each stratum samples its local
//! coordinates in a fixed permutation derived from the campaign master
//! seed, every decision the planner takes is a pure function of the records
//! it has been fed, and records themselves are deterministic per
//! coordinate. A resumed campaign therefore replays the planner's decisions
//! byte-identically from the journal, and thread count cannot change the
//! result because batches are barriers: allocation for round *r + 1* only
//! ever sees the completed records of rounds *1..=r*.

use crate::error::FiError;
use crate::estimate::wilson_interval;
use crate::results::RunRecord;
use crate::shard::Shard;
use crate::spec::CampaignSpec;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Mixing constant decorrelating per-stratum permutation seeds from the
/// per-run seeds (which use the golden-ratio constant).
const STRATUM_SEED_MIX: u64 = 0xD1B5_4A32_D192_ED03;

/// Configuration of the adaptive sampling subsystem, carried on
/// [`CampaignSpec::adaptive`]. A spec without a plan enumerates the dense
/// grid exactly as before.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePlan {
    /// Runs allocated per target per round. The round budget is
    /// `batch_size × targets`; as strata close, their share flows to the
    /// widest remaining intervals.
    pub batch_size: usize,
    /// Stop threshold: a stratum closes once every Wilson half-width of its
    /// (input, output) pairs is at or below this value. Must lie in (0, 1).
    pub target_ci: f64,
    /// Standard normal quantile for the Wilson intervals (1.96 for 95 %).
    pub z: f64,
    /// Runs a stratum must execute before it may close on a tight interval
    /// (guards against closing on the vacuous certainty of tiny samples).
    pub min_runs: u64,
    /// Per-target run cap; a stratum closes unconditionally when it is
    /// reached. `0` means the dense per-target grid size — the adaptive
    /// campaign then never exceeds the paper's budget.
    pub max_runs: u64,
    /// Ranking-stability stop rule: when greater than zero, the whole
    /// campaign stops once the relative ordering of all pair estimates has
    /// been identical for this many consecutive rounds (and every stratum
    /// has at least [`AdaptivePlan::min_runs`]). `0` disables the rule.
    pub stable_rounds: u32,
}

impl Default for AdaptivePlan {
    fn default() -> Self {
        AdaptivePlan {
            batch_size: 50,
            target_ci: 0.05,
            z: 1.96,
            min_runs: 50,
            max_runs: 0,
            stable_rounds: 0,
        }
    }
}

impl AdaptivePlan {
    /// The effective per-target cap: `max_runs` clipped to the dense grid
    /// (`0` means the full grid).
    pub fn effective_max_runs(&self, per_target: usize) -> u64 {
        let dense = per_target as u64;
        if self.max_runs == 0 {
            dense
        } else {
            self.max_runs.min(dense)
        }
    }

    /// Validates the plan against the spec's per-target grid size.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::InvalidAdaptivePlan`] naming the offending field.
    pub fn validate(&self, per_target: usize) -> Result<(), FiError> {
        if self.batch_size == 0 {
            return Err(FiError::InvalidAdaptivePlan {
                reason: "batch_size must be greater than zero",
            });
        }
        if !self.target_ci.is_finite() || self.target_ci <= 0.0 || self.target_ci >= 1.0 {
            return Err(FiError::InvalidAdaptivePlan {
                reason: "target_ci must lie strictly between 0 and 1",
            });
        }
        if !self.z.is_finite() || self.z <= 0.0 {
            return Err(FiError::InvalidAdaptivePlan {
                reason: "z must be positive and finite",
            });
        }
        if self.min_runs > self.effective_max_runs(per_target) {
            return Err(FiError::InvalidAdaptivePlan {
                reason: "min_runs exceeds the effective per-target run cap",
            });
        }
        Ok(())
    }
}

/// Why a stratum stopped drawing budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Every Wilson half-width fell to or below the target.
    CiReached,
    /// The per-target run cap was exhausted.
    BudgetExhausted,
    /// The campaign-wide ranking-stability rule fired.
    RankingStable,
}

/// Per-target sampling state: the fixed coordinate permutation, the cursor
/// into it, and the streaming error counts per output.
#[derive(Debug)]
struct Stratum {
    /// Local coordinates `0..per_target` in sampling order.
    order: Vec<u32>,
    /// Coordinates handed out so far (equals recorded runs at every batch
    /// boundary — batches are barriers).
    issued: usize,
    /// Runs recorded, including quarantined ones (they consume budget but
    /// produce no comparison).
    executed: u64,
    /// Completed runs — the Wilson `n`.
    trials: u64,
    /// Per-output error counts — the Wilson `n_err`.
    errors: Vec<u64>,
    closed: Option<StopReason>,
}

impl Stratum {
    /// Widest Wilson half-width across this target's outputs. `0.5` before
    /// any trial completed (the vacuous `(0, 1)` interval), `0.0` for a
    /// target with no outputs.
    fn max_half_width(&self, z: f64) -> f64 {
        self.errors
            .iter()
            .map(|&e| {
                let (lo, hi) = wilson_interval(e, self.trials, z);
                (hi - lo) / 2.0
            })
            .fold(0.0, f64::max)
    }

    /// The stratum's effective run budget: the plan cap, clipped to the
    /// coordinates this stratum actually holds (a shard keeps only its
    /// slice of the permutation).
    fn budget_limit(&self, cap: u64) -> u64 {
        cap.min(self.order.len() as u64)
    }
}

/// Snapshot of one stratum's progress, for reporting and telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumStatus {
    /// Target index in spec order.
    pub target: usize,
    /// Runs recorded (including quarantined).
    pub executed: u64,
    /// Completed runs feeding the estimates.
    pub trials: u64,
    /// Widest Wilson half-width across the target's outputs.
    pub max_half_width: f64,
    /// Why the stratum closed, if it has.
    pub closed: Option<StopReason>,
}

/// The sequential sampling planner driving an adaptive campaign.
///
/// Feed it every finished [`RunRecord`] via [`AdaptivePlanner::record`] and
/// ask for the next coordinates with [`AdaptivePlanner::next_batch`]; an
/// empty batch means every stratum has closed. All decisions are pure
/// functions of the plan, the master seed and the records seen so far.
#[derive(Debug)]
pub struct AdaptivePlanner {
    plan: AdaptivePlan,
    per_target: usize,
    strata: Vec<Stratum>,
    rounds: u64,
    ranking_streak: u32,
    last_ranking: Option<Vec<(usize, usize)>>,
}

impl AdaptivePlanner {
    /// Builds the planner from a spec's adaptive plan. `outputs_per_target[t]`
    /// is the number of output signals of target `t` (in spec order) — the
    /// pairs whose intervals gate that stratum. The sampling permutations
    /// derive from `master_seed` alone, so two planners with equal inputs
    /// make equal decisions. When a [`Shard`] is given, each stratum keeps
    /// only the permutation *positions* the shard owns — a partition that is
    /// identical on every machine because the permutation itself never
    /// depends on thread count.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::AdaptivePlanMissing`] when `spec.adaptive` is
    /// `None` — adaptive execution was requested without a plan to execute.
    pub fn new(
        spec: &CampaignSpec,
        outputs_per_target: &[usize],
        master_seed: u64,
        shard: Option<Shard>,
    ) -> Result<Self, FiError> {
        debug_assert_eq!(outputs_per_target.len(), spec.targets.len());
        let plan = spec.adaptive.clone().ok_or(FiError::AdaptivePlanMissing)?;
        let per_target = spec.injections_per_target();
        let strata = outputs_per_target
            .iter()
            .enumerate()
            .map(|(t, &outputs)| {
                let full = permutation(per_target, stratum_seed(master_seed, t));
                let order: Vec<u32> = match shard {
                    None => full,
                    Some(s) => full
                        .into_iter()
                        .enumerate()
                        .filter(|(pos, _)| s.owns(*pos as u64))
                        .map(|(_, local)| local)
                        .collect(),
                };
                Stratum {
                    order,
                    issued: 0,
                    executed: 0,
                    trials: 0,
                    errors: vec![0; outputs],
                    closed: None,
                }
            })
            .collect();
        Ok(AdaptivePlanner {
            plan,
            per_target,
            strata,
            rounds: 0,
            ranking_streak: 0,
            last_ranking: None,
        })
    }

    /// Records one finished run. `k` is the global coordinate index; the
    /// record may be quarantined (it then consumes budget without adding a
    /// trial).
    pub fn record(&mut self, k: usize, record: &RunRecord) {
        let stratum = &mut self.strata[k / self.per_target];
        stratum.executed += 1;
        if record.outcome.is_completed() {
            stratum.trials += 1;
            for (out, div) in record.first_divergence.iter().enumerate() {
                if div.is_some() {
                    stratum.errors[out] += 1;
                }
            }
        }
    }

    /// Plans the next round: closes strata whose stop condition now holds,
    /// applies the ranking-stability rule, and distributes the round budget
    /// (`batch_size × targets`) over the open strata in proportion to their
    /// widest Wilson half-width. Returns global coordinate indices in
    /// ascending order; an empty batch means the campaign is finished.
    ///
    /// Every coordinate of the previous batch must have been fed back via
    /// [`AdaptivePlanner::record`] first — batches are barriers, which is
    /// what makes the plan independent of executor thread count.
    pub fn next_batch(&mut self) -> Vec<usize> {
        let z = self.plan.z;
        let cap = self.plan.effective_max_runs(self.per_target);
        for stratum in &mut self.strata {
            debug_assert_eq!(stratum.issued as u64, stratum.executed);
            if stratum.closed.is_some() {
                continue;
            }
            // A shard-filtered stratum exhausts its budget once its slice of
            // the permutation runs out, even below the nominal cap.
            if stratum.executed >= stratum.budget_limit(cap) {
                stratum.closed = Some(StopReason::BudgetExhausted);
            } else if stratum.executed >= self.plan.min_runs
                && stratum.max_half_width(z) <= self.plan.target_ci
            {
                stratum.closed = Some(StopReason::CiReached);
            }
        }
        self.apply_ranking_rule();

        let open: Vec<usize> = (0..self.strata.len())
            .filter(|&t| self.strata[t].closed.is_none())
            .collect();
        if open.is_empty() {
            return Vec::new();
        }

        let budget = self.plan.batch_size * self.strata.len();
        let widths: Vec<f64> = open
            .iter()
            .map(|&t| self.strata[t].max_half_width(z))
            .collect();
        let capacities: Vec<usize> = open
            .iter()
            .map(|&t| {
                let s = &self.strata[t];
                (s.budget_limit(cap) - s.executed) as usize
            })
            .collect();
        let alloc = allocate(budget, &widths, &capacities);

        let mut batch = Vec::new();
        for (slot, &t) in open.iter().enumerate() {
            let stratum = &mut self.strata[t];
            for &local in &stratum.order[stratum.issued..stratum.issued + alloc[slot]] {
                batch.push(t * self.per_target + local as usize);
            }
            stratum.issued += alloc[slot];
        }
        debug_assert!(!batch.is_empty(), "open strata always have capacity");
        batch.sort_unstable();
        self.rounds += 1;
        batch
    }

    /// Closes every open stratum once the pair-estimate ranking has been
    /// stable for [`AdaptivePlan::stable_rounds`] consecutive rounds and
    /// every stratum meets `min_runs`. The ranking orders all (target,
    /// output) pairs by descending point estimate with the pair index as a
    /// deterministic tie-break, mirroring how the study ranks propagation
    /// paths.
    fn apply_ranking_rule(&mut self) {
        if self.plan.stable_rounds == 0 {
            return;
        }
        let mut ranking: Vec<(usize, usize)> = self
            .strata
            .iter()
            .enumerate()
            .flat_map(|(t, s)| (0..s.errors.len()).map(move |o| (t, o)))
            .collect();
        ranking.sort_by(|&(ta, oa), &(tb, ob)| {
            let ea = estimate(&self.strata[ta], oa);
            let eb = estimate(&self.strata[tb], ob);
            eb.partial_cmp(&ea)
                .expect("estimates are finite")
                .then((ta, oa).cmp(&(tb, ob)))
        });
        if self.last_ranking.as_ref() == Some(&ranking) {
            self.ranking_streak += 1;
        } else {
            self.ranking_streak = 0;
            self.last_ranking = Some(ranking);
        }
        if self.ranking_streak >= self.plan.stable_rounds
            && self.strata.iter().all(|s| s.executed >= self.plan.min_runs)
        {
            for stratum in &mut self.strata {
                if stratum.closed.is_none() {
                    stratum.closed = Some(StopReason::RankingStable);
                }
            }
        }
    }

    /// Rounds planned so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of strata that have closed.
    pub fn strata_closed(&self) -> usize {
        self.strata.iter().filter(|s| s.closed.is_some()).count()
    }

    /// Progress snapshot per stratum, in target order.
    pub fn status(&self) -> Vec<StratumStatus> {
        self.strata
            .iter()
            .enumerate()
            .map(|(target, s)| StratumStatus {
                target,
                executed: s.executed,
                trials: s.trials,
                max_half_width: s.max_half_width(self.plan.z),
                closed: s.closed,
            })
            .collect()
    }
}

/// Point estimate of pair (stratum, output): `n_err / n` (0 before any
/// trial).
fn estimate(stratum: &Stratum, output: usize) -> f64 {
    if stratum.trials == 0 {
        0.0
    } else {
        stratum.errors[output] as f64 / stratum.trials as f64
    }
}

/// Per-stratum permutation seed, mixed so neighbouring targets get
/// unrelated streams.
fn stratum_seed(master_seed: u64, target: usize) -> u64 {
    master_seed ^ (target as u64 + 1).wrapping_mul(STRATUM_SEED_MIX)
}

/// Deterministic Fisher–Yates permutation of `0..n` under the given seed.
fn permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        // Modulo bias is irrelevant here: only determinism matters.
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Largest-remainder proportional allocation of `budget` over strata with
/// the given `weights`, each clipped to its remaining `capacity`. Spare
/// budget freed by a clipped stratum spills over to the widest unclipped
/// ones; every open stratum with capacity receives at least one run so no
/// stratum can be starved below `min_runs` indefinitely. Fully
/// deterministic: ties break on the lower index.
fn allocate(budget: usize, weights: &[f64], capacities: &[usize]) -> Vec<usize> {
    let n = weights.len();
    let mut alloc = vec![0usize; n];
    let total: f64 = weights.iter().sum();
    let mut remaining = budget;
    if total > 0.0 {
        // Integer shares plus remainders, largest remainder first.
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
        for i in 0..n {
            let exact = budget as f64 * weights[i] / total;
            let floor = exact.floor() as usize;
            alloc[i] = floor.min(capacities[i]);
            remainders.push((i, exact - floor as f64));
        }
        remaining = budget.saturating_sub(alloc.iter().sum());
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        for &(i, _) in &remainders {
            if remaining == 0 {
                break;
            }
            if alloc[i] < capacities[i] {
                alloc[i] += 1;
                remaining -= 1;
            }
        }
    }
    // Spill whatever is left (clipped shares, zero-weight rounds) to the
    // widest strata with spare capacity, round-robin.
    while remaining > 0 {
        let next = (0..n)
            .filter(|&i| alloc[i] < capacities[i])
            .max_by(|&a, &b| {
                weights[a]
                    .partial_cmp(&weights[b])
                    .expect("finite")
                    .then(b.cmp(&a))
            });
        match next {
            Some(i) => {
                alloc[i] += 1;
                remaining -= 1;
            }
            None => break,
        }
    }
    // Progress floor: never leave an open stratum at zero while others got
    // more than one run.
    for i in 0..n {
        if alloc[i] == 0 && capacities[i] > 0 {
            if let Some(donor) = (0..n).filter(|&d| alloc[d] > 1).max_by_key(|&d| alloc[d]) {
                alloc[donor] -= 1;
                alloc[i] += 1;
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ErrorModel;
    use crate::outcome::RunOutcome;
    use crate::spec::{InjectionScope, PortTarget};

    fn spec(targets: usize, plan: AdaptivePlan) -> CampaignSpec {
        CampaignSpec {
            targets: (0..targets)
                .map(|t| PortTarget::new(format!("M{t}"), "in"))
                .collect(),
            models: ErrorModel::all_bit_flips(),
            times_ms: vec![10, 20],
            cases: 4,
            scope: InjectionScope::Port,
            adaptive: Some(plan),
        }
    }

    fn record(target: &PortTarget, diverged: bool) -> RunRecord {
        RunRecord {
            module: target.module.clone(),
            input_signal: target.input_signal.clone(),
            model: ErrorModel::BitFlip { bit: 0 },
            time_ms: 10,
            case: 0,
            original_value: 1,
            corrupted_value: 0,
            first_divergence: vec![if diverged { Some(10) } else { None }],
            outcome: RunOutcome::Completed,
        }
    }

    /// Drives a planner to completion with a fixed per-target divergence
    /// rule, returning every batch it planned.
    fn drive(spec: &CampaignSpec, diverges: impl Fn(usize) -> bool) -> Vec<Vec<usize>> {
        let outputs = vec![1; spec.targets.len()];
        let mut planner = AdaptivePlanner::new(spec, &outputs, 0x5EED, None).unwrap();
        let per_target = spec.injections_per_target();
        let mut batches = Vec::new();
        loop {
            let batch = planner.next_batch();
            if batch.is_empty() {
                break;
            }
            for &k in &batch {
                let t = k / per_target;
                planner.record(k, &record(&spec.targets[t], diverges(t)));
            }
            batches.push(batch);
        }
        batches
    }

    #[test]
    fn plan_validation_rejects_nonsense() {
        let per_target = 128;
        let ok = AdaptivePlan::default();
        assert!(ok.validate(per_target).is_ok());
        let bad = AdaptivePlan {
            batch_size: 0,
            ..ok.clone()
        };
        assert!(matches!(
            bad.validate(per_target),
            Err(FiError::InvalidAdaptivePlan { .. })
        ));
        let bad = AdaptivePlan {
            target_ci: 0.0,
            ..ok.clone()
        };
        assert!(bad.validate(per_target).is_err());
        let bad = AdaptivePlan {
            target_ci: 1.5,
            ..ok.clone()
        };
        assert!(bad.validate(per_target).is_err());
        let bad = AdaptivePlan {
            z: f64::NAN,
            ..ok.clone()
        };
        assert!(bad.validate(per_target).is_err());
        let bad = AdaptivePlan {
            min_runs: 4_001,
            max_runs: 0,
            ..ok.clone()
        };
        assert!(bad.validate(per_target).is_err());
        // max_runs of 0 means the dense grid size.
        assert_eq!(ok.effective_max_runs(per_target), 128);
        let capped = AdaptivePlan { max_runs: 64, ..ok };
        assert_eq!(capped.effective_max_runs(per_target), 64);
    }

    #[test]
    fn deterministic_degenerate_pairs_close_at_min_runs() {
        // Both targets are fully deterministic (always / never diverges):
        // their intervals tighten fast, so each stratum should close well
        // before the 128-run dense grid.
        let plan = AdaptivePlan {
            batch_size: 8,
            target_ci: 0.1,
            min_runs: 16,
            ..AdaptivePlan::default()
        };
        let s = spec(2, plan);
        let batches = drive(&s, |t| t == 0);
        let sampled: usize = batches.iter().map(Vec::len).sum();
        assert!(
            sampled < s.run_count() / 2,
            "deterministic pairs must close early: sampled {sampled} of {}",
            s.run_count()
        );
    }

    #[test]
    fn batches_are_deterministic_and_disjoint() {
        let plan = AdaptivePlan {
            batch_size: 8,
            target_ci: 0.1,
            min_runs: 16,
            ..AdaptivePlan::default()
        };
        let s = spec(3, plan);
        let a = drive(&s, |t| t == 1);
        let b = drive(&s, |t| t == 1);
        assert_eq!(a, b, "identical inputs must replay identical batches");
        let mut seen = std::collections::HashSet::new();
        for k in a.into_iter().flatten() {
            assert!(k < s.run_count());
            assert!(seen.insert(k), "coordinate {k} issued twice");
        }
    }

    #[test]
    fn budget_cap_bounds_every_stratum() {
        let plan = AdaptivePlan {
            batch_size: 8,
            target_ci: 0.001, // effectively unreachable
            min_runs: 8,
            max_runs: 40,
            ..AdaptivePlan::default()
        };
        let s = spec(2, plan);
        let batches = drive(&s, |_| true);
        let per_target = s.injections_per_target();
        let mut per = vec![0usize; 2];
        for k in batches.into_iter().flatten() {
            per[k / per_target] += 1;
        }
        assert!(per.iter().all(|&n| n <= 40), "cap violated: {per:?}");
        assert!(per.iter().all(|&n| n > 0));
    }

    #[test]
    fn ranking_stability_rule_stops_whole_campaign() {
        let no_rule = AdaptivePlan {
            batch_size: 8,
            target_ci: 0.0001,
            min_runs: 8,
            stable_rounds: 0,
            ..AdaptivePlan::default()
        };
        let with_rule = AdaptivePlan {
            stable_rounds: 3,
            ..no_rule.clone()
        };
        let dense: usize = drive(&spec(2, no_rule), |t| t == 0)
            .iter()
            .map(Vec::len)
            .sum();
        let stopped: usize = drive(&spec(2, with_rule), |t| t == 0)
            .iter()
            .map(Vec::len)
            .sum();
        assert!(
            stopped < dense,
            "a stable ranking must stop earlier: {stopped} vs {dense}"
        );
    }

    #[test]
    fn quarantined_runs_consume_budget_without_trials() {
        let plan = AdaptivePlan {
            batch_size: 8,
            target_ci: 0.1,
            min_runs: 8,
            max_runs: 24,
            ..AdaptivePlan::default()
        };
        let s = spec(1, plan);
        let outputs = vec![1usize];
        let mut planner = AdaptivePlanner::new(&s, &outputs, 0x5EED, None).unwrap();
        let mut total = 0;
        loop {
            let batch = planner.next_batch();
            if batch.is_empty() {
                break;
            }
            total += batch.len();
            for &k in &batch {
                let mut r = record(&s.targets[0], false);
                r.outcome = RunOutcome::Panicked {
                    message: "boom".into(),
                };
                r.first_divergence = vec![];
                planner.record(k, &r);
            }
        }
        // All runs quarantined: trials never accumulate, the interval stays
        // vacuous, and only the run cap can close the stratum.
        assert_eq!(total, 24);
        let status = planner.status();
        assert_eq!(status[0].closed, Some(StopReason::BudgetExhausted));
        assert_eq!(status[0].trials, 0);
        assert_eq!(status[0].executed, 24);
    }

    #[test]
    fn allocation_is_proportional_and_capacity_clipped() {
        // Twice the width should draw roughly twice the budget.
        let alloc = allocate(30, &[0.2, 0.1], &[100, 100]);
        assert_eq!(alloc.iter().sum::<usize>(), 30);
        assert!(alloc[0] > alloc[1]);
        // Clipped stratum spills its share to the other.
        let alloc = allocate(30, &[0.2, 0.1], &[5, 100]);
        assert_eq!(alloc, vec![5, 25]);
        // Zero weights still drain the budget (first round has no data).
        let alloc = allocate(10, &[0.0, 0.0], &[4, 100]);
        assert_eq!(alloc.iter().sum::<usize>(), 10);
        // Nothing fits: budget is simply not spent.
        let alloc = allocate(10, &[0.5], &[0]);
        assert_eq!(alloc, vec![0]);
    }

    #[test]
    fn missing_plan_is_a_typed_error() {
        let mut s = spec(2, AdaptivePlan::default());
        s.adaptive = None;
        let outputs = vec![1; 2];
        assert_eq!(
            AdaptivePlanner::new(&s, &outputs, 0x5EED, None).unwrap_err(),
            FiError::AdaptivePlanMissing
        );
    }

    /// Drives one shard's planner to exhaustion, returning the coordinates
    /// it issued.
    fn drive_shard(s: &CampaignSpec, shard: Option<Shard>) -> Vec<usize> {
        let outputs = vec![1; s.targets.len()];
        let mut planner = AdaptivePlanner::new(s, &outputs, 0x5EED, shard).unwrap();
        let per_target = s.injections_per_target();
        let mut issued = Vec::new();
        loop {
            let batch = planner.next_batch();
            if batch.is_empty() {
                break;
            }
            for &k in &batch {
                let t = k / per_target;
                planner.record(k, &record(&s.targets[t], true));
                issued.push(k);
            }
        }
        issued
    }

    #[test]
    fn shards_partition_the_adaptive_order() {
        // An unreachable CI target forces every stratum to its budget, so
        // each shard must issue exactly its slice of the permutation.
        let plan = AdaptivePlan {
            batch_size: 8,
            target_ci: 0.0001,
            min_runs: 8,
            ..AdaptivePlan::default()
        };
        let s = spec(2, plan);
        let full: std::collections::BTreeSet<usize> = drive_shard(&s, None).into_iter().collect();
        assert_eq!(full.len(), s.run_count(), "unsharded run covers the grid");

        let mut union = std::collections::BTreeSet::new();
        for i in 0..3 {
            let shard = Shard::new(i, 3).unwrap();
            for k in drive_shard(&s, Some(shard)) {
                assert!(union.insert(k), "coordinate {k} issued by two shards");
            }
        }
        assert_eq!(union, full, "shards must partition the unsharded order");
    }

    #[test]
    fn permutations_cover_all_coordinates() {
        let p = permutation(257, 42);
        let mut seen: Vec<bool> = vec![false; 257];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(seen.into_iter().all(|b| b));
        assert_ne!(p, permutation(257, 43), "seeds must decorrelate");
        assert_eq!(p, permutation(257, 42), "same seed, same order");
    }
}
