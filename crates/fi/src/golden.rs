//! Golden Runs: reference traces of the un-injected system.
//!
//! "A Golden Run is a trace of the system executing without any injections
//! being made; this trace is used as reference and is stated to be correct."
//! One Golden Run is recorded per workload case; every injection run for
//! that case is executed for exactly the Golden Run's tick count and
//! compared trace-by-trace.

use permea_runtime::tracing::TraceSet;
use serde::{Deserialize, Serialize};

/// The reference execution of one workload case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenRun {
    /// Workload case index.
    pub case: usize,
    /// Ticks executed (injection runs replay exactly this many).
    pub ticks: u64,
    /// Reference traces of every monitored signal.
    pub traces: TraceSet,
}

impl GoldenRun {
    /// First tick at which `signal` in `ir_traces` deviates from this Golden
    /// Run; `None` if the traces agree over the whole horizon.
    pub fn first_divergence(&self, ir_traces: &TraceSet, signal: &str) -> Option<usize> {
        ir_traces.first_divergence(&self.traces, signal)
    }

    /// `true` if `signal` in `ir_traces` differs anywhere from the Golden
    /// Run — the paper's per-output error criterion.
    pub fn diverged(&self, ir_traces: &TraceSet, signal: &str) -> bool {
        self.first_divergence(ir_traces, signal).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use permea_runtime::signals::SignalBus;

    fn traces(samples: &[u16]) -> TraceSet {
        let mut bus = SignalBus::new();
        let s = bus.define("out");
        let mut t = TraceSet::for_signals(&bus, &[s]);
        for &v in samples {
            bus.write(s, v);
            t.record(&bus);
        }
        t
    }

    #[test]
    fn divergence_detection() {
        let golden = GoldenRun {
            case: 0,
            ticks: 3,
            traces: traces(&[1, 2, 3]),
        };
        let same = traces(&[1, 2, 3]);
        let diff = traces(&[1, 9, 3]);
        assert!(!golden.diverged(&same, "out"));
        assert!(golden.diverged(&diff, "out"));
        assert_eq!(golden.first_divergence(&diff, "out"), Some(1));
    }

    #[test]
    fn unknown_signal_never_diverges() {
        let golden = GoldenRun {
            case: 0,
            ticks: 3,
            traces: traces(&[1, 2, 3]),
        };
        let ir = traces(&[1, 2, 3]);
        assert!(!golden.diverged(&ir, "nope"));
    }
}
