//! Deterministic environment-fault injection for the executor itself.
//!
//! The paper's method is to *measure* error propagation rather than assume
//! it; this module turns the same discipline on the campaign executor. A
//! [`ChaosPlan`] is a seeded, fully explicit schedule of *environment*
//! faults — journal write/fsync errors, worker SIGKILLs at chosen
//! coordinates, IPC frame corruption, artifact-write failures, a faked
//! free-disk reading — and a [`ChaosInjector`] replays that schedule
//! deterministically while a campaign executes. Because the schedule is
//! data, every failure it provokes is reproducible bit for bit, which is
//! what lets the test-suite assert the executor's core contract: after
//! *any* injected schedule, a resumed campaign completes byte-identically
//! to an undisturbed one.
//!
//! The injector is threaded through [`crate::campaign`], [`crate::journal`]
//! and [`crate::process`] as an `Option<Arc<ChaosInjector>>` attached via
//! builder methods ([`crate::campaign::Campaign::with_chaos`]). With no
//! plan attached every hook is a `None` branch — zero overhead on the
//! production path.
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of fault tokens (the `--chaos-plan`
//! flag of the analysis binaries):
//!
//! ```text
//! seed=7,journal-write=enospc@3,kill-run@5,frame-corrupt@2,artifact-fail=result.json
//! ```
//!
//! | token | fault |
//! |---|---|
//! | `seed=N` | records the schedule's seed (reporting only) |
//! | `journal-write=KIND@N` | the `N`-th journal append fails with `KIND` |
//! | `journal-fsync=KIND@N` | the `N`-th journal fsync fails with `KIND` |
//! | `kill-run@K` | SIGKILL the worker once, before coordinate `K` runs |
//! | `kill-always@K` | SIGKILL the worker on *every* dispatch of `K` |
//! | `frame-corrupt@N` | truncate the `N`-th IPC dispatch frame |
//! | `artifact-fail=NAME` | the next write of artifact `NAME` fails |
//! | `free-disk=N` | the preflight disk check sees `N` free bytes |
//! | `ledger-write=KIND@N` | the `N`-th submission-ledger append fails with `KIND` |
//! | `client-disconnect@N` | the `N`-th accepted client connection is dropped |
//!
//! `KIND` is one of `enospc` (persistent — exhausts the bounded retry),
//! `enospc-once` (transient — the retry succeeds), `eio`, or `short` (a
//! torn partial write). Indices `N` count from 0 within one process.
//!
//! One-shot faults (`kill-run`, `artifact-fail`) are *consumed*: the retry
//! or resume that follows them sees a healthy environment, so the campaign
//! converges to the undisturbed result. Persistent faults (`kill-always`,
//! `enospc`) instead drive the executor's typed abort paths — quarantine
//! (exit 3) and environment failure (exit 4).

use permea_obs::{Counter, Obs};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How an injected I/O operation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// `ENOSPC` on every attempt, including the bounded retries — drives
    /// the [`crate::error::FiError::JournalDiskFull`] abort path.
    Enospc,
    /// `ENOSPC` on the first attempt only — the bounded retry absorbs it.
    EnospcOnce,
    /// A hard `EIO`: the operation fails before any byte reaches the file.
    Eio,
    /// A short write: a torn prefix of the data reaches the file, then the
    /// operation fails — the signature of a device filling mid-write.
    Short,
}

impl IoFaultKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "enospc" => Some(IoFaultKind::Enospc),
            "enospc-once" => Some(IoFaultKind::EnospcOnce),
            "eio" => Some(IoFaultKind::Eio),
            "short" => Some(IoFaultKind::Short),
            _ => None,
        }
    }

    fn token(self) -> &'static str {
        match self {
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::EnospcOnce => "enospc-once",
            IoFaultKind::Eio => "eio",
            IoFaultKind::Short => "short",
        }
    }
}

/// A deterministic schedule of environment faults. See the module docs for
/// the textual grammar; [`ChaosPlan::parse`] and [`fmt::Display`] round-trip
/// it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// Seed the schedule was generated from (reporting only — the plan
    /// itself is the explicit schedule).
    pub seed: u64,
    /// Journal append index → injected write fault.
    pub journal_write: HashMap<u64, IoFaultKind>,
    /// Journal fsync index → injected fsync fault.
    pub journal_fsync: HashMap<u64, IoFaultKind>,
    /// Coordinates whose worker is SIGKILLed once before dispatch.
    pub kill_runs: HashSet<u64>,
    /// Coordinates whose worker is SIGKILLed on every dispatch.
    pub kill_always: HashSet<u64>,
    /// IPC dispatch indices whose frame is truncated mid-write.
    pub frame_corrupt: HashSet<u64>,
    /// Artifact file names whose next write fails (consumed per name).
    pub artifact_fail: HashSet<String>,
    /// Faked free-disk bytes for the campaign's preflight check.
    pub free_disk: Option<u64>,
    /// Submission-ledger append index → injected write fault (the daemon's
    /// write-ahead ledger, distinct from the per-campaign run journal).
    pub ledger_write: HashMap<u64, IoFaultKind>,
    /// Accepted-connection indices whose client socket is dropped before a
    /// response is written — exercises the daemon's tolerance of clients
    /// that vanish mid-conversation.
    pub client_disconnect: HashSet<u64>,
}

impl ChaosPlan {
    /// Parses the comma-separated plan grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed token —
    /// the binaries treat that as a usage error.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, rest) = token.split_once(['=', '@']).ok_or_else(|| {
                format!("chaos token `{token}` has no `=` or `@` (expected e.g. `kill-run@5`)")
            })?;
            match key {
                "seed" => {
                    plan.seed = rest
                        .parse()
                        .map_err(|_| format!("chaos seed `{rest}` is not a number"))?;
                }
                "journal-write" | "journal-fsync" | "ledger-write" => {
                    let (kind, idx) = rest.split_once('@').ok_or_else(|| {
                        format!("chaos token `{token}` needs KIND@INDEX (e.g. `enospc@3`)")
                    })?;
                    let kind = IoFaultKind::parse(kind).ok_or_else(|| {
                        format!(
                            "unknown I/O fault kind `{kind}` (expected enospc, \
                             enospc-once, eio or short)"
                        )
                    })?;
                    let idx: u64 = idx
                        .parse()
                        .map_err(|_| format!("chaos index `{idx}` is not a number"))?;
                    match key {
                        "journal-write" => plan.journal_write.insert(idx, kind),
                        "journal-fsync" => plan.journal_fsync.insert(idx, kind),
                        _ => plan.ledger_write.insert(idx, kind),
                    };
                }
                "kill-run" | "kill-always" | "frame-corrupt" | "client-disconnect" => {
                    let idx: u64 = rest
                        .parse()
                        .map_err(|_| format!("chaos index `{rest}` is not a number"))?;
                    match key {
                        "kill-run" => plan.kill_runs.insert(idx),
                        "kill-always" => plan.kill_always.insert(idx),
                        "frame-corrupt" => plan.frame_corrupt.insert(idx),
                        _ => plan.client_disconnect.insert(idx),
                    };
                }
                "artifact-fail" => {
                    plan.artifact_fail.insert(rest.to_owned());
                }
                "free-disk" => {
                    plan.free_disk = Some(
                        rest.parse()
                            .map_err(|_| format!("chaos free-disk `{rest}` is not a number"))?,
                    );
                }
                _ => return Err(format!("unknown chaos fault `{key}`")),
            }
        }
        Ok(plan)
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.journal_write.is_empty()
            && self.journal_fsync.is_empty()
            && self.kill_runs.is_empty()
            && self.kill_always.is_empty()
            && self.frame_corrupt.is_empty()
            && self.artifact_fail.is_empty()
            && self.free_disk.is_none()
            && self.ledger_write.is_empty()
            && self.client_disconnect.is_empty()
    }

    /// Total scheduled faults.
    pub fn len(&self) -> usize {
        self.journal_write.len()
            + self.journal_fsync.len()
            + self.kill_runs.len()
            + self.kill_always.len()
            + self.frame_corrupt.len()
            + self.artifact_fail.len()
            + usize::from(self.free_disk.is_some())
            + self.ledger_write.len()
            + self.client_disconnect.len()
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut tokens = vec![format!("seed={}", self.seed)];
        let sorted = |m: &HashMap<u64, IoFaultKind>, name: &str| {
            let mut ks: Vec<_> = m.iter().map(|(&i, &k)| (i, k)).collect();
            ks.sort_unstable_by_key(|&(i, _)| i);
            ks.into_iter()
                .map(|(i, k)| format!("{name}={}@{i}", k.token()))
                .collect::<Vec<_>>()
        };
        tokens.extend(sorted(&self.journal_write, "journal-write"));
        tokens.extend(sorted(&self.journal_fsync, "journal-fsync"));
        tokens.extend(sorted(&self.ledger_write, "ledger-write"));
        let indexed = |s: &HashSet<u64>, name: &str| {
            let mut ks: Vec<_> = s.iter().copied().collect();
            ks.sort_unstable();
            ks.into_iter()
                .map(|i| format!("{name}@{i}"))
                .collect::<Vec<_>>()
        };
        tokens.extend(indexed(&self.kill_runs, "kill-run"));
        tokens.extend(indexed(&self.kill_always, "kill-always"));
        tokens.extend(indexed(&self.frame_corrupt, "frame-corrupt"));
        tokens.extend(indexed(&self.client_disconnect, "client-disconnect"));
        let mut names: Vec<_> = self.artifact_fail.iter().cloned().collect();
        names.sort_unstable();
        tokens.extend(names.into_iter().map(|n| format!("artifact-fail={n}")));
        if let Some(free) = self.free_disk {
            tokens.push(format!("free-disk={free}"));
        }
        write!(f, "{}", tokens.join(","))
    }
}

/// Replays a [`ChaosPlan`] deterministically while a campaign executes:
/// every hook consults the schedule against a monotonic event counter (or
/// the run coordinate) and reports whether to inject. Shared across the
/// executor's threads as an `Arc`; all state is atomic or mutexed.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: ChaosPlan,
    journal_writes: AtomicU64,
    journal_fsyncs: AtomicU64,
    dispatches: AtomicU64,
    ledger_writes: AtomicU64,
    client_accepts: AtomicU64,
    injected: AtomicU64,
    consumed_kills: Mutex<HashSet<u64>>,
    consumed_artifacts: Mutex<HashSet<String>>,
    c_journal_write: Counter,
    c_journal_fsync: Counter,
    c_worker_kill: Counter,
    c_frame_corrupt: Counter,
    c_artifact_fail: Counter,
    c_ledger_write: Counter,
    c_client_disconnect: Counter,
}

impl ChaosInjector {
    /// Wraps a plan in a fresh injector with all event counters at zero.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosInjector {
            plan,
            journal_writes: AtomicU64::new(0),
            journal_fsyncs: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            ledger_writes: AtomicU64::new(0),
            client_accepts: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            consumed_kills: Mutex::new(HashSet::new()),
            consumed_artifacts: Mutex::new(HashSet::new()),
            c_journal_write: Counter::noop(),
            c_journal_fsync: Counter::noop(),
            c_worker_kill: Counter::noop(),
            c_frame_corrupt: Counter::noop(),
            c_artifact_fail: Counter::noop(),
            c_ledger_write: Counter::noop(),
            c_client_disconnect: Counter::noop(),
        }
    }

    /// Attaches telemetry: one `chaos.*` counter per fault family
    /// (`chaos.journal_write_faults`, `chaos.journal_fsync_faults`,
    /// `chaos.worker_kills`, `chaos.frame_corruptions`,
    /// `chaos.artifact_failures`, `chaos.ledger_write_faults`,
    /// `chaos.client_disconnects`). Call before sharing the injector.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.c_journal_write = obs.counter("chaos.journal_write_faults");
        self.c_journal_fsync = obs.counter("chaos.journal_fsync_faults");
        self.c_worker_kill = obs.counter("chaos.worker_kills");
        self.c_frame_corrupt = obs.counter("chaos.frame_corruptions");
        self.c_artifact_fail = obs.counter("chaos.artifact_failures");
        self.c_ledger_write = obs.counter("chaos.ledger_write_faults");
        self.c_client_disconnect = obs.counter("chaos.client_disconnects");
    }

    /// The schedule being replayed.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Journal-append hook: advances the append counter and returns the
    /// fault scheduled for this append, if any.
    pub fn on_journal_append(&self) -> Option<IoFaultKind> {
        let idx = self.journal_writes.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.journal_write.get(&idx).copied();
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.c_journal_write.inc();
        }
        fault
    }

    /// Journal-fsync hook: advances the fsync counter and returns the fault
    /// scheduled for this fsync, if any.
    pub fn on_journal_fsync(&self) -> Option<IoFaultKind> {
        let idx = self.journal_fsyncs.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.journal_fsync.get(&idx).copied();
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.c_journal_fsync.inc();
        }
        fault
    }

    /// Worker-dispatch hook: `true` when the worker about to run one of
    /// `ks` should be SIGKILLed first. `kill-run` faults are consumed (the
    /// retry sees a healthy pool); `kill-always` faults fire every time.
    pub fn should_kill_worker(&self, ks: &[u64]) -> bool {
        for &k in ks {
            if self.plan.kill_always.contains(&k) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.c_worker_kill.inc();
                return true;
            }
            if self.plan.kill_runs.contains(&k) {
                let mut consumed = self.consumed_kills.lock().expect("chaos state poisoned");
                if consumed.insert(k) {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    self.c_worker_kill.inc();
                    return true;
                }
            }
        }
        false
    }

    /// IPC-dispatch hook: advances the dispatch counter and reports whether
    /// this dispatch's frame should be truncated mid-write.
    pub fn corrupt_dispatch(&self) -> bool {
        let idx = self.dispatches.fetch_add(1, Ordering::Relaxed);
        let hit = self.plan.frame_corrupt.contains(&idx);
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.c_frame_corrupt.inc();
        }
        hit
    }

    /// Artifact-write hook: `true` when the write of the artifact named
    /// `name` (file name, not path) should fail. Consumed per name, so a
    /// re-run writes successfully.
    pub fn fail_artifact(&self, name: &str) -> bool {
        if !self.plan.artifact_fail.contains(name) {
            return false;
        }
        let mut consumed = self
            .consumed_artifacts
            .lock()
            .expect("chaos state poisoned");
        if consumed.insert(name.to_owned()) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.c_artifact_fail.inc();
            return true;
        }
        false
    }

    /// Preflight hook: the faked free-disk reading, if the plan sets one.
    pub fn free_disk_override(&self) -> Option<u64> {
        self.plan.free_disk
    }

    /// Submission-ledger append hook: advances the ledger-append counter
    /// and returns the fault scheduled for this append, if any. Separate
    /// from [`ChaosInjector::on_journal_append`] so a plan can target the
    /// daemon's write-ahead ledger without disturbing run journals.
    pub fn on_ledger_append(&self) -> Option<IoFaultKind> {
        let idx = self.ledger_writes.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.ledger_write.get(&idx).copied();
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.c_ledger_write.inc();
        }
        fault
    }

    /// Client-accept hook: advances the accepted-connection counter and
    /// reports whether this connection should be dropped before any
    /// response is written.
    pub fn on_client_accept(&self) -> bool {
        let idx = self.client_accepts.fetch_add(1, Ordering::Relaxed);
        let hit = self.plan.client_disconnect.contains(&idx);
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.c_client_disconnect.inc();
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_and_round_trips() {
        let spec = "seed=7,journal-write=enospc@3,journal-fsync=eio@1,kill-run@5,\
                    kill-always@9,frame-corrupt@2,artifact-fail=result.json,free-disk=1024,\
                    ledger-write=short@0,client-disconnect@4";
        let plan = ChaosPlan::parse(spec).expect("plan parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.journal_write.get(&3), Some(&IoFaultKind::Enospc));
        assert_eq!(plan.journal_fsync.get(&1), Some(&IoFaultKind::Eio));
        assert!(plan.kill_runs.contains(&5));
        assert!(plan.kill_always.contains(&9));
        assert!(plan.frame_corrupt.contains(&2));
        assert!(plan.artifact_fail.contains("result.json"));
        assert_eq!(plan.free_disk, Some(1024));
        assert_eq!(plan.ledger_write.get(&0), Some(&IoFaultKind::Short));
        assert!(plan.client_disconnect.contains(&4));
        assert_eq!(plan.len(), 9);
        let reparsed = ChaosPlan::parse(&plan.to_string()).expect("round-trips");
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn plan_rejects_malformed_tokens() {
        assert!(ChaosPlan::parse("nonsense").is_err());
        assert!(ChaosPlan::parse("journal-write=sigsegv@1").is_err());
        assert!(ChaosPlan::parse("kill-run@many").is_err());
        assert!(ChaosPlan::parse("unknown-fault=1").is_err());
        assert!(ChaosPlan::parse("journal-write=enospc").is_err());
        assert!(ChaosPlan::parse("ledger-write=sigsegv@1").is_err());
        assert!(ChaosPlan::parse("client-disconnect@soon").is_err());
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let inj = ChaosInjector::new(ChaosPlan::default());
        assert!(inj.plan().is_empty());
        for _ in 0..100 {
            assert_eq!(inj.on_journal_append(), None);
            assert_eq!(inj.on_journal_fsync(), None);
            assert!(!inj.should_kill_worker(&[0, 1, 2]));
            assert!(!inj.corrupt_dispatch());
            assert!(!inj.fail_artifact("result.json"));
            assert_eq!(inj.on_ledger_append(), None);
            assert!(!inj.on_client_accept());
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn daemon_boundary_faults_fire_at_their_index() {
        let plan = ChaosPlan::parse("ledger-write=enospc-once@1,client-disconnect@2")
            .expect("plan parses");
        let inj = ChaosInjector::new(plan);
        assert_eq!(inj.on_ledger_append(), None);
        assert_eq!(inj.on_ledger_append(), Some(IoFaultKind::EnospcOnce));
        assert_eq!(inj.on_ledger_append(), None);
        assert!(!inj.on_client_accept());
        assert!(!inj.on_client_accept());
        assert!(inj.on_client_accept());
        assert!(!inj.on_client_accept());
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn scheduled_faults_fire_at_their_index_and_one_shots_consume() {
        let plan = ChaosPlan::parse("journal-write=eio@2,kill-run@4,artifact-fail=metrics.json")
            .expect("plan parses");
        let inj = ChaosInjector::new(plan);
        assert_eq!(inj.on_journal_append(), None);
        assert_eq!(inj.on_journal_append(), None);
        assert_eq!(inj.on_journal_append(), Some(IoFaultKind::Eio));
        assert_eq!(inj.on_journal_append(), None);
        assert!(inj.should_kill_worker(&[3, 4]));
        assert!(!inj.should_kill_worker(&[4]), "kill-run is one-shot");
        assert!(inj.fail_artifact("metrics.json"));
        assert!(
            !inj.fail_artifact("metrics.json"),
            "artifact fault consumed"
        );
        assert!(!inj.fail_artifact("result.json"));
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn kill_always_fires_every_dispatch() {
        let plan = ChaosPlan::parse("kill-always@7").expect("plan parses");
        let inj = ChaosInjector::new(plan);
        for _ in 0..5 {
            assert!(inj.should_kill_worker(&[7]));
        }
        assert!(!inj.should_kill_worker(&[6]));
    }
}
