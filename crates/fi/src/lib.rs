//! # permea-fi — SWIFI fault injection and permeability estimation
//!
//! A reimplementation of the experimental method of Section 6 of the paper
//! (and of the PROPANE tool it uses): software-implemented fault injection
//! with **Golden Run Comparison**.
//!
//! The workflow:
//!
//! 1. describe the experiment with a [`spec::CampaignSpec`] — which module
//!    input ports to target, which [`model::ErrorModel`]s to apply (the
//!    paper flips each of the 16 bits), at which times, over which workload
//!    cases;
//! 2. run it with [`campaign::Campaign`], which records a Golden Run per
//!    case and then executes one injection run per (target, model, time,
//!    case), comparing every output trace of the targeted module against
//!    the Golden Run;
//! 3. feed the [`results::CampaignResult`] to [`estimate`] to obtain a
//!    [`permea_core::matrix::PermeabilityMatrix`] (`P̂ = n_err / n_inj`)
//!    with Wilson confidence intervals.
//!
//! Everything is deterministic: per-run RNGs are derived from the campaign
//! master seed and the run coordinates.
//!
//! Campaigns are also **crash- and hang-tolerant**: every injection run is
//! sandboxed (`catch_unwind` plus a cooperative stalled-clock watchdog) and
//! classified with an [`outcome::RunOutcome`], and the executor can write
//! every finished run into an append-only [`journal::RunJournal`] so an
//! interrupted campaign resumes — byte-identically — instead of restarting.
//! For runs that can take the whole process down (`abort()`, stack
//! overflow, hard deadlocks), [`process::IsolationMode::Process`] moves
//! execution into a supervised pool of worker processes with hard
//! wall-clock deadlines, crash classification
//! ([`outcome::RunOutcome::Crashed`]) and bounded retry — see [`process`].

// `deny` rather than `forbid`: the only exemption is the scoped
// `allow(unsafe_code)` on `env`'s private libc FFI shims (statvfs,
// setrlimit); everything else still refuses unsafe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod campaign;
pub mod chaos;
pub mod env;
pub mod error;
pub mod estimate;
pub mod golden;
pub mod journal;
pub mod latency;
pub mod model;
pub mod outcome;
pub mod process;
pub mod results;
pub mod shard;
pub mod spec;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::adaptive::{AdaptivePlan, AdaptivePlanner, StopReason, StratumStatus};
    pub use crate::campaign::{
        Campaign, CampaignConfig, FnSystemFactory, GoldenBundle, SystemFactory,
    };
    pub use crate::chaos::{ChaosInjector, ChaosPlan, IoFaultKind};
    pub use crate::env::{atomic_write, atomic_write_chaos, free_disk_bytes};
    pub use crate::error::FiError;
    pub use crate::estimate::{
        estimate_matrix, render_target_summaries, target_summaries, wilson_interval, PairEstimate,
        TargetSummary,
    };
    pub use crate::golden::GoldenRun;
    pub use crate::journal::{
        audit_journal, merge_journals, read_journal, JournalAudit, JournalHeader, LoadedJournal,
        MergeSummary, ReadJournal, RunJournal,
    };
    pub use crate::latency::{latency_summaries, render_latencies, LatencySummary};
    pub use crate::model::ErrorModel;
    pub use crate::outcome::{CrashCause, OutcomeTally, RunOutcome};
    pub use crate::process::{
        encode_frame, read_frame, run_worker, IsolationMode, ProcessIsolation, WorkerCommand,
    };
    pub use crate::results::{CampaignResult, PairStat, RunRecord, RunStats};
    pub use crate::shard::Shard;
    pub use crate::spec::{CampaignSpec, InjectionScope, PortTarget};
}

pub use prelude::*;
