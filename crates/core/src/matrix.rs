//! The error-permeability matrix: one probability per (input, output) pair.
//!
//! Implements Eq. 1 of the paper:
//!
//! ```text
//! 0 <= P^M_{i,k} = Pr{ err in output k | err in input i } <= 1
//! ```
//!
//! The matrix is shaped by a [`SystemTopology`]: for every module `M` with
//! `m` inputs and `n` outputs it stores `m * n` values. Values may be set
//! analytically (design estimates) or estimated experimentally via fault
//! injection (see the `permea-fi` crate).

use crate::error::MatrixError;
use crate::ids::ModuleId;
use crate::topology::SystemTopology;
use serde::{Deserialize, Serialize};

/// Per-module storage of permeability values, row-major `[input][output]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ModuleBlock {
    inputs: usize,
    outputs: usize,
    /// `values[i * outputs + k]` is `P_{i,k}`.
    values: Vec<f64>,
}

impl ModuleBlock {
    fn idx(&self, input: usize, output: usize) -> usize {
        input * self.outputs + output
    }
}

/// Error-permeability values for every (input, output) pair of every module
/// in a topology.
///
/// # Examples
///
/// ```
/// use permea_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TopologyBuilder::new("t");
/// let x = b.external("x");
/// let m = b.add_module("M");
/// b.bind_input(m, x);
/// let y = b.add_output(m, "y");
/// b.mark_system_output(y);
/// let topo = b.build()?;
///
/// let mut pm = PermeabilityMatrix::zeroed(&topo);
/// pm.set(m, 0, 0, 0.25)?;
/// assert_eq!(pm.get(m, 0, 0), 0.25);
/// assert!(pm.set(m, 0, 0, 1.5).is_err()); // not a probability
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PermeabilityMatrix {
    topology_name: String,
    blocks: Vec<ModuleBlock>,
}

impl PermeabilityMatrix {
    /// Creates a matrix shaped for `topology` with every permeability zero.
    pub fn zeroed(topology: &SystemTopology) -> Self {
        let blocks = topology
            .modules()
            .map(|m| {
                let inputs = topology.input_count(m);
                let outputs = topology.output_count(m);
                ModuleBlock {
                    inputs,
                    outputs,
                    values: vec![0.0; inputs * outputs],
                }
            })
            .collect();
        PermeabilityMatrix {
            topology_name: topology.name().to_owned(),
            blocks,
        }
    }

    /// Name of the topology this matrix was shaped for.
    pub fn topology_name(&self) -> &str {
        &self.topology_name
    }

    /// Number of modules covered by this matrix.
    pub fn module_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of (input, output) pairs stored.
    pub fn pair_count(&self) -> usize {
        self.blocks.iter().map(|b| b.values.len()).sum()
    }

    fn block(&self, m: ModuleId) -> Result<&ModuleBlock, MatrixError> {
        self.blocks
            .get(m.index())
            .ok_or(MatrixError::UnknownModule(m))
    }

    /// Sets `P^M_{input,output}` (zero-based indices).
    ///
    /// # Errors
    ///
    /// * [`MatrixError::OutOfRange`] if `p` is not a finite probability,
    /// * [`MatrixError::UnknownModule`] / [`MatrixError::InputOutOfBounds`] /
    ///   [`MatrixError::OutputOutOfBounds`] on bad indices.
    pub fn set(
        &mut self,
        m: ModuleId,
        input: usize,
        output: usize,
        p: f64,
    ) -> Result<(), MatrixError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(MatrixError::OutOfRange { value: p });
        }
        let block = self
            .blocks
            .get_mut(m.index())
            .ok_or(MatrixError::UnknownModule(m))?;
        if input >= block.inputs {
            return Err(MatrixError::InputOutOfBounds {
                module: m,
                input,
                inputs: block.inputs,
            });
        }
        if output >= block.outputs {
            return Err(MatrixError::OutputOutOfBounds {
                module: m,
                output,
                outputs: block.outputs,
            });
        }
        let idx = block.idx(input, output);
        block.values[idx] = p;
        Ok(())
    }

    /// Reads `P^M_{input,output}` (zero-based indices).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds; use [`PermeabilityMatrix::try_get`]
    /// for a fallible variant.
    pub fn get(&self, m: ModuleId, input: usize, output: usize) -> f64 {
        self.try_get(m, input, output)
            .expect("permeability indices out of bounds")
    }

    /// Fallible variant of [`PermeabilityMatrix::get`].
    ///
    /// # Errors
    ///
    /// Returns the same index errors as [`PermeabilityMatrix::set`].
    pub fn try_get(&self, m: ModuleId, input: usize, output: usize) -> Result<f64, MatrixError> {
        let block = self.block(m)?;
        if input >= block.inputs {
            return Err(MatrixError::InputOutOfBounds {
                module: m,
                input,
                inputs: block.inputs,
            });
        }
        if output >= block.outputs {
            return Err(MatrixError::OutputOutOfBounds {
                module: m,
                output,
                outputs: block.outputs,
            });
        }
        Ok(block.values[block.idx(input, output)])
    }

    /// Sets a permeability value addressing the pair by module name and the
    /// names of the signals bound to the input/output ports.
    ///
    /// The `topology` must be the one the matrix was created from (matched by
    /// name).
    ///
    /// # Errors
    ///
    /// [`MatrixError::NameNotFound`] if any name does not resolve;
    /// [`MatrixError::ShapeMismatch`] if `topology` is a different system;
    /// plus the range errors of [`PermeabilityMatrix::set`].
    ///
    /// Note: `set_by_name` needs the topology to resolve names, so it lives on
    /// a helper taking the topology explicitly.
    pub fn set_named(
        &mut self,
        topology: &SystemTopology,
        module: &str,
        input_signal: &str,
        output_signal: &str,
        p: f64,
    ) -> Result<(), MatrixError> {
        if topology.name() != self.topology_name {
            return Err(MatrixError::ShapeMismatch {
                expected: self.topology_name.clone(),
                found: topology.name().to_owned(),
            });
        }
        let m = topology
            .module_by_name(module)
            .ok_or_else(|| MatrixError::NameNotFound(module.to_owned()))?;
        let in_sig = topology
            .signal_by_name(input_signal)
            .ok_or_else(|| MatrixError::NameNotFound(input_signal.to_owned()))?;
        let out_sig = topology
            .signal_by_name(output_signal)
            .ok_or_else(|| MatrixError::NameNotFound(output_signal.to_owned()))?;
        let input = topology
            .inputs_of(m)
            .iter()
            .position(|&s| s == in_sig)
            .ok_or_else(|| MatrixError::NameNotFound(format!("{module}:{input_signal}")))?;
        let output = topology
            .outputs_of(m)
            .iter()
            .position(|&s| s == out_sig)
            .ok_or_else(|| MatrixError::NameNotFound(format!("{module}:{output_signal}")))?;
        self.set(m, input, output, p)
    }

    /// Iterates over every `(module, input, output, value)` quadruple in a
    /// deterministic order (modules by id, inputs major, outputs minor).
    pub fn iter(&self) -> impl Iterator<Item = (ModuleId, usize, usize, f64)> + '_ {
        self.blocks.iter().enumerate().flat_map(|(mi, b)| {
            (0..b.inputs).flat_map(move |i| {
                (0..b.outputs).map(move |k| (ModuleId(mi), i, k, b.values[b.idx(i, k)]))
            })
        })
    }

    /// Sum of all permeability values of module `m` — the paper's
    /// non-weighted relative permeability (Eq. 3) numerator.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not belong to the matrix.
    pub fn module_sum(&self, m: ModuleId) -> f64 {
        self.blocks[m.index()].values.iter().sum()
    }

    /// Permeability values of module `m` for a fixed output port, over all
    /// inputs (the arcs entering a backtrack-tree node for that output).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn column(&self, m: ModuleId, output: usize) -> Vec<f64> {
        let b = &self.blocks[m.index()];
        assert!(output < b.outputs, "output index out of bounds");
        (0..b.inputs).map(|i| b.values[b.idx(i, output)]).collect()
    }

    /// Permeability values of module `m` for a fixed input port, over all
    /// outputs (the arcs leaving a trace-tree node for that input).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn row(&self, m: ModuleId, input: usize) -> Vec<f64> {
        let b = &self.blocks[m.index()];
        assert!(input < b.inputs, "input index out of bounds");
        (0..b.outputs).map(|k| b.values[b.idx(input, k)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn two_by_two() -> (SystemTopology, ModuleId) {
        let mut b = TopologyBuilder::new("t");
        let x = b.external("x");
        let y = b.external("y");
        let m = b.add_module("M");
        b.bind_input(m, x);
        b.bind_input(m, y);
        let o1 = b.add_output(m, "o1");
        let _o2 = b.add_output(m, "o2");
        b.mark_system_output(o1);
        let t = b.build().unwrap();
        let m = t.module_by_name("M").unwrap();
        (t, m)
    }

    #[test]
    fn zeroed_matrix_has_right_shape() {
        let (t, _) = two_by_two();
        let pm = PermeabilityMatrix::zeroed(&t);
        assert_eq!(pm.pair_count(), 4);
        assert_eq!(pm.module_count(), 1);
        assert!(pm.iter().all(|(_, _, _, v)| v == 0.0));
    }

    #[test]
    fn set_get_roundtrip() {
        let (t, m) = two_by_two();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set(m, 1, 0, 0.75).unwrap();
        assert_eq!(pm.get(m, 1, 0), 0.75);
        assert_eq!(pm.get(m, 0, 0), 0.0);
    }

    #[test]
    fn rejects_non_probabilities() {
        let (t, m) = two_by_two();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        assert!(pm.set(m, 0, 0, -0.1).is_err());
        assert!(pm.set(m, 0, 0, 1.1).is_err());
        assert!(pm.set(m, 0, 0, f64::NAN).is_err());
        assert!(pm.set(m, 0, 0, f64::INFINITY).is_err());
        assert!(pm.set(m, 0, 0, 1.0).is_ok());
        assert!(pm.set(m, 0, 0, 0.0).is_ok());
    }

    #[test]
    fn rejects_bad_indices() {
        let (t, m) = two_by_two();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        assert!(matches!(
            pm.set(m, 2, 0, 0.5),
            Err(MatrixError::InputOutOfBounds { .. })
        ));
        assert!(matches!(
            pm.set(m, 0, 2, 0.5),
            Err(MatrixError::OutputOutOfBounds { .. })
        ));
        assert!(matches!(
            pm.try_get(ModuleId(9), 0, 0),
            Err(MatrixError::UnknownModule(_))
        ));
    }

    #[test]
    fn set_named_resolves_ports() {
        let (t, m) = two_by_two();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set_named(&t, "M", "y", "o2", 0.5).unwrap();
        assert_eq!(pm.get(m, 1, 1), 0.5);
        assert!(pm.set_named(&t, "M", "nope", "o2", 0.5).is_err());
        assert!(pm.set_named(&t, "NOPE", "y", "o2", 0.5).is_err());
        // signal exists but is not a port of M on that side
        assert!(pm.set_named(&t, "M", "o1", "o2", 0.5).is_err());
    }

    #[test]
    fn row_and_column_views() {
        let (t, m) = two_by_two();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set(m, 0, 0, 0.1).unwrap();
        pm.set(m, 0, 1, 0.2).unwrap();
        pm.set(m, 1, 0, 0.3).unwrap();
        pm.set(m, 1, 1, 0.4).unwrap();
        assert_eq!(pm.row(m, 0), vec![0.1, 0.2]);
        assert_eq!(pm.column(m, 1), vec![0.2, 0.4]);
        assert!((pm.module_sum(m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_is_deterministic_and_complete() {
        let (t, m) = two_by_two();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set(m, 1, 1, 0.9).unwrap();
        let all: Vec<_> = pm.iter().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], (m, 1, 1, 0.9));
    }

    #[test]
    fn serde_roundtrip() {
        let (t, m) = two_by_two();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set(m, 0, 1, 0.33).unwrap();
        let json = serde_json::to_string(&pm).unwrap();
        let back: PermeabilityMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pm);
    }
}
