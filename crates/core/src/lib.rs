//! # permea-core — error-propagation analysis for modular software
//!
//! This crate implements the analytical framework of Hiller, Jhumka & Suri,
//! *"An Approach for Analysing the Propagation of Data Errors in Software"*
//! (DSN 2001): the **error permeability** measure and everything built on it.
//!
//! A software system is modelled as a set of black-box [`topology::SystemTopology`]
//! modules inter-linked by signals. For each (input, output) pair of each module
//! the *error permeability* `P_{i,k} = Pr{error on output k | error on input i}`
//! is stored in a [`matrix::PermeabilityMatrix`]. From the topology and the matrix
//! the crate derives:
//!
//! * module-level measures (relative permeability, error exposure, …) —
//!   [`measures`],
//! * the **permeability graph** — [`graph`],
//! * **backtrack trees** (output error tracing) — [`backtrack`],
//! * **trace trees** (input error tracing) — [`trace`],
//! * ranked **propagation paths** — [`paths`],
//! * EDM/ERM **placement recommendations** — [`placement`],
//! * GraphViz/ASCII rendering — [`dot`].
//!
//! # Quick example
//!
//! ```
//! use permea_core::prelude::*;
//!
//! # fn main() -> Result<(), TopologyError> {
//! // A two-module pipeline:  ext --> [F] --> s --> [G] --> out
//! let mut b = TopologyBuilder::new("pipeline");
//! let ext = b.external("ext");
//! let f = b.add_module("F");
//! b.bind_input(f, ext);
//! let s = b.add_output(f, "s");
//! let g = b.add_module("G");
//! b.bind_input(g, s);
//! let out = b.add_output(g, "out");
//! b.mark_system_output(out);
//! let topo = b.build()?;
//!
//! let mut pm = PermeabilityMatrix::zeroed(&topo);
//! pm.set_named(&topo, "F", "ext", "s", 0.5).unwrap();
//! pm.set_named(&topo, "G", "s", "out", 0.8).unwrap();
//!
//! let graph = PermeabilityGraph::new(&topo, &pm).unwrap();
//! let tree = BacktrackTree::build(&graph, out).unwrap();
//! let paths = tree.paths();
//! assert_eq!(paths.len(), 1);
//! assert!((paths[0].weight - 0.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backtrack;
pub mod coverage;
pub mod dot;
pub mod error;
pub mod graph;
pub mod ids;
pub mod matrix;
pub mod measures;
pub mod occurrence;
pub mod paths;
pub mod placement;
pub mod topology;
pub mod trace;
pub mod whatif;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::backtrack::{BacktrackForest, BacktrackTree};
    pub use crate::coverage::{greedy_cover, CoverStep};
    pub use crate::error::{MatrixError, TopologyError};
    pub use crate::graph::{Arc, ArcId, PermeabilityGraph};
    pub use crate::ids::{InPortRef, ModuleId, OutPortRef, SignalId};
    pub use crate::matrix::PermeabilityMatrix;
    pub use crate::measures::{ModuleMeasures, SignalExposure, SystemMeasures};
    pub use crate::occurrence::{risk_analysis, OccurrenceProfile, RiskRow};
    pub use crate::paths::{PathSet, PropagationPath};
    pub use crate::placement::{PlacementAdvisor, PlacementPlan, Rationale, Recommendation};
    pub use crate::topology::{SignalSource, SystemTopology, TopologyBuilder};
    pub use crate::trace::{TraceForest, TraceTree};
    pub use crate::whatif::{
        containment_effects, rank_containment_candidates, Containment, WhatIfEffect,
    };
}

pub use prelude::*;
