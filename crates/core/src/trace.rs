//! Input Error Tracing: trace trees (steps B1–B4, Figs. 5, 11 and 12).
//!
//! A trace tree answers *"where will an error on this system input end up?"*.
//! The root is a system input signal; every expansion walks forwards through
//! each module consuming the node's signal, creating one child per output
//! port of that module, weighted with the corresponding error permeability.
//!
//! As in the paper, module feedback is followed exactly once and the
//! recursion it would generate is cut: a child whose signal already occurs on
//! the root path is **omitted** (Fig. 12 shows no `i` child under `i`). Set
//! [`TraceOptions::keep_feedback_leaves`] to keep them as explicit leaves
//! instead, which makes trace trees symmetric with backtrack trees.

use crate::error::TopologyError;
use crate::graph::{ArcId, PermeabilityGraph};
use crate::ids::SignalId;
use crate::paths::{PathSet, PathTerminal, PropagationPath};
use serde::{Deserialize, Serialize};

/// The role a node plays in a trace tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceNodeKind {
    /// The tree root (a system input signal).
    Root,
    /// An internal node: an internal signal consumed further downstream.
    Internal,
    /// A leaf bound to a system output signal.
    SystemOutputLeaf,
    /// A leaf that closes a feedback loop (only present with
    /// [`TraceOptions::keep_feedback_leaves`]).
    FeedbackLeaf,
    /// A leaf whose signal has no consumers and is not a system output: the
    /// error is absorbed inside the system.
    DeadEndLeaf,
}

/// Construction options for [`TraceTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceOptions {
    /// Keep feedback-closing children as explicit leaves instead of omitting
    /// them (the paper omits them in trace trees; see Fig. 12).
    pub keep_feedback_leaves: bool,
}

/// One node of a trace tree, stored in an arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceNode {
    /// The signal this node is associated with.
    pub signal: SignalId,
    /// The arc connecting the parent to this node (`None` for the root).
    pub arc_from_parent: Option<(ArcId, f64)>,
    /// Structural role.
    pub kind: TraceNodeKind,
    /// Arena index of the parent (`None` for the root).
    pub parent: Option<usize>,
    /// Arena indices of the children.
    pub children: Vec<usize>,
    /// Depth from the root (root = 0).
    pub depth: usize,
}

/// A trace tree for one system input (Input Error Tracing).
///
/// # Examples
///
/// ```
/// use permea_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TopologyBuilder::new("t");
/// let x = b.external("x");
/// let m = b.add_module("M");
/// b.bind_input(m, x);
/// let y = b.add_output(m, "y");
/// b.mark_system_output(y);
/// let topo = b.build()?;
/// let mut pm = PermeabilityMatrix::zeroed(&topo);
/// pm.set(m, 0, 0, 0.7)?;
/// let g = PermeabilityGraph::new(&topo, &pm)?;
///
/// let tree = TraceTree::build(&g, x)?;
/// let paths = tree.paths();
/// assert_eq!(paths.len(), 1);
/// assert_eq!(paths[0].weight, 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceTree {
    root_signal: SignalId,
    nodes: Vec<TraceNode>,
    options: TraceOptions,
}

impl TraceTree {
    /// Builds the trace tree rooted at system input `input` with default
    /// options (feedback children omitted, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownSignal`] if `input` is not a signal of
    /// the graph's topology.
    pub fn build(graph: &PermeabilityGraph, input: SignalId) -> Result<Self, TopologyError> {
        Self::build_with(graph, input, TraceOptions::default())
    }

    /// Builds the trace tree with explicit [`TraceOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownSignal`] if `input` is not a signal of
    /// the graph's topology.
    pub fn build_with(
        graph: &PermeabilityGraph,
        input: SignalId,
        options: TraceOptions,
    ) -> Result<Self, TopologyError> {
        graph.topology().check_signal(input)?;
        let mut tree = TraceTree {
            root_signal: input,
            nodes: vec![TraceNode {
                signal: input,
                arc_from_parent: None,
                kind: TraceNodeKind::Root,
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
            options,
        };
        let mut path = vec![input];
        tree.expand(graph, 0, &mut path);
        Ok(tree)
    }

    /// Recursive expansion implementing steps B2/B3.
    fn expand(&mut self, graph: &PermeabilityGraph, node_idx: usize, path: &mut Vec<SignalId>) {
        let signal = self.nodes[node_idx].signal;
        let topo = graph.topology();
        // B3 leaf conditions for non-root nodes.
        if self.nodes[node_idx].kind != TraceNodeKind::Root {
            if topo.is_system_output(signal) {
                self.nodes[node_idx].kind = TraceNodeKind::SystemOutputLeaf;
                return;
            }
            if topo.consumers_of(signal).is_empty() {
                self.nodes[node_idx].kind = TraceNodeKind::DeadEndLeaf;
                return;
            }
        }
        let depth = self.nodes[node_idx].depth;
        // B2: for each consumer port of this signal, one child per output of
        // the consuming module.
        let consumers: Vec<_> = topo.consumers_of(signal).to_vec();
        for port in consumers {
            let arcs: Vec<(ArcId, f64, SignalId)> = graph
                .arcs_from_input_port(port.module, port.input)
                .into_iter()
                .map(|a| (a.id, a.weight, a.output_signal))
                .collect();
            for (arc, weight, child_signal) in arcs {
                let feedback = path.contains(&child_signal);
                if feedback && !self.options.keep_feedback_leaves {
                    continue; // the paper omits feedback children in trace trees
                }
                let child_idx = self.nodes.len();
                self.nodes.push(TraceNode {
                    signal: child_signal,
                    arc_from_parent: Some((arc, weight)),
                    kind: if feedback {
                        TraceNodeKind::FeedbackLeaf
                    } else {
                        TraceNodeKind::Internal
                    },
                    parent: Some(node_idx),
                    children: Vec::new(),
                    depth: depth + 1,
                });
                self.nodes[node_idx].children.push(child_idx);
                if !feedback {
                    path.push(child_signal);
                    self.expand(graph, child_idx, path);
                    path.pop();
                }
            }
        }
        // A root whose signal nobody consumes: it stays a childless root.
    }

    /// The system input signal at the root.
    pub fn root_signal(&self) -> SignalId {
        self.root_signal
    }

    /// The options the tree was built with.
    pub fn options(&self) -> TraceOptions {
        self.options
    }

    /// All nodes in the arena; index 0 is the root.
    pub fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_empty()).count()
    }

    /// Maximum depth of any node.
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Enumerates every root-to-leaf propagation path — "the propagation
    /// pathways that errors on system inputs would most likely take".
    pub fn paths(&self) -> Vec<PropagationPath> {
        let mut out = Vec::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            if !node.children.is_empty() {
                continue;
            }
            let mut signals = Vec::new();
            let mut arcs = Vec::new();
            let mut cur = Some(idx);
            while let Some(i) = cur {
                let n = &self.nodes[i];
                signals.push(n.signal);
                if let Some(arc) = n.arc_from_parent {
                    arcs.push(arc);
                }
                cur = n.parent;
            }
            signals.reverse();
            arcs.reverse();
            let weight = arcs.iter().map(|&(_, w)| w).product();
            let terminal = match node.kind {
                TraceNodeKind::SystemOutputLeaf => PathTerminal::SystemOutput,
                TraceNodeKind::FeedbackLeaf => PathTerminal::Feedback,
                TraceNodeKind::DeadEndLeaf => PathTerminal::DeadEnd,
                _ => PathTerminal::DeadEnd,
            };
            out.push(PropagationPath {
                signals,
                arcs,
                weight,
                terminal,
            });
        }
        out
    }

    /// Convenience: wraps [`TraceTree::paths`] in a [`PathSet`].
    pub fn into_path_set(self) -> PathSet {
        PathSet::from_paths(self.paths())
    }
}

/// The set of trace trees for every system input (step B4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceForest {
    trees: Vec<TraceTree>,
}

impl TraceForest {
    /// Builds one tree per system input of the graph's topology.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from tree construction.
    pub fn build(graph: &PermeabilityGraph) -> Result<Self, TopologyError> {
        Self::build_with(graph, TraceOptions::default())
    }

    /// Builds one tree per system input with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from tree construction.
    pub fn build_with(
        graph: &PermeabilityGraph,
        options: TraceOptions,
    ) -> Result<Self, TopologyError> {
        let mut trees = Vec::new();
        for &input in graph.topology().system_inputs() {
            trees.push(TraceTree::build_with(graph, input, options)?);
        }
        Ok(TraceForest { trees })
    }

    /// The trees, in system-input order.
    pub fn trees(&self) -> &[TraceTree] {
        &self.trees
    }

    /// The tree rooted at `input`, if any.
    pub fn tree_for(&self, input: SignalId) -> Option<&TraceTree> {
        self.trees.iter().find(|t| t.root_signal() == input)
    }

    /// All propagation paths of all trees.
    pub fn all_paths(&self) -> PathSet {
        let mut set = PathSet::new();
        for t in &self.trees {
            set.extend(t.paths());
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::PermeabilityMatrix;
    use crate::topology::{SystemTopology, TopologyBuilder};

    /// ext -> [A] -> s -> [B(self-feedback fb)] -> out(system output)
    fn feedback_system() -> (SystemTopology, PermeabilityMatrix) {
        let mut b = TopologyBuilder::new("fb");
        let ext = b.external("ext");
        let a = b.add_module("A");
        b.bind_input(a, ext);
        let s = b.add_output(a, "s");
        let bm = b.add_module("B");
        b.bind_input(bm, s);
        let fb = b.add_output(bm, "fb");
        let out = b.add_output(bm, "out");
        b.bind_input(bm, fb);
        b.mark_system_output(out);
        let t = b.build().unwrap();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        let a = t.module_by_name("A").unwrap();
        let bm = t.module_by_name("B").unwrap();
        pm.set(a, 0, 0, 0.5).unwrap();
        pm.set(bm, 0, 0, 0.1).unwrap(); // s -> fb
        pm.set(bm, 0, 1, 0.2).unwrap(); // s -> out
        pm.set(bm, 1, 0, 0.3).unwrap(); // fb -> fb
        pm.set(bm, 1, 1, 0.4).unwrap(); // fb -> out
        (t, pm)
    }

    #[test]
    fn trace_tree_follows_feedback_once_and_omits_closing_child() {
        let (t, pm) = feedback_system();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let ext = t.signal_by_name("ext").unwrap();
        let tree = TraceTree::build(&g, ext).unwrap();
        // ext -> s -> {fb, out}; fb -> {fb omitted, out}; leaves: out, out.
        let paths = tree.paths();
        assert_eq!(paths.len(), 2);
        assert!(paths
            .iter()
            .all(|p| p.terminal == PathTerminal::SystemOutput));
        let mut w: Vec<f64> = paths.iter().map(|p| p.weight).collect();
        w.sort_by(f64::total_cmp);
        // ext->s->out: 0.5*0.2 = 0.10; ext->s->fb->out: 0.5*0.1*0.4 = 0.02
        assert!((w[0] - 0.02).abs() < 1e-12);
        assert!((w[1] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn keep_feedback_leaves_option() {
        let (t, pm) = feedback_system();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let ext = t.signal_by_name("ext").unwrap();
        let tree = TraceTree::build_with(
            &g,
            ext,
            TraceOptions {
                keep_feedback_leaves: true,
            },
        )
        .unwrap();
        let paths = tree.paths();
        assert_eq!(paths.len(), 3);
        assert_eq!(
            paths
                .iter()
                .filter(|p| p.terminal == PathTerminal::Feedback)
                .count(),
            1
        );
    }

    #[test]
    fn dead_end_signals_become_dead_end_leaves() {
        let mut b = TopologyBuilder::new("dead");
        let x = b.external("x");
        let m = b.add_module("M");
        b.bind_input(m, x);
        let unused = b.add_output(m, "unused");
        let out = b.add_output(m, "out");
        b.mark_system_output(out);
        let t = b.build().unwrap();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        let m = t.module_by_name("M").unwrap();
        pm.set(m, 0, 0, 0.9).unwrap();
        pm.set(m, 0, 1, 0.2).unwrap();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let tree = TraceTree::build(&g, x).unwrap();
        let paths = tree.paths();
        assert_eq!(paths.len(), 2);
        let dead: Vec<_> = paths
            .iter()
            .filter(|p| p.terminal == PathTerminal::DeadEnd)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].leaf(), unused);
    }

    #[test]
    fn unconsumed_root_is_single_node() {
        let mut b = TopologyBuilder::new("lonely");
        let x = b.external("x");
        let lonely = b.external("lonely");
        let m = b.add_module("M");
        b.bind_input(m, x);
        let out = b.add_output(m, "out");
        b.mark_system_output(out);
        let t = b.build().unwrap();
        let pm = PermeabilityMatrix::zeroed(&t);
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let tree = TraceTree::build(&g, lonely).unwrap();
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn forest_covers_all_system_inputs() {
        let (t, pm) = feedback_system();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let forest = TraceForest::build(&g).unwrap();
        assert_eq!(forest.trees().len(), 1);
        let ext = t.signal_by_name("ext").unwrap();
        assert!(forest.tree_for(ext).is_some());
        assert_eq!(forest.all_paths().len(), 2);
    }

    #[test]
    fn fanout_signal_generates_children_for_each_consumer() {
        let mut b = TopologyBuilder::new("fanout");
        let x = b.external("x");
        let a = b.add_module("A");
        b.bind_input(a, x);
        let s = b.add_output(a, "s");
        let c = b.add_module("C");
        b.bind_input(c, s);
        let d = b.add_module("D");
        b.bind_input(d, s);
        let oc = b.add_output(c, "oc");
        let od = b.add_output(d, "od");
        b.mark_system_output(oc);
        b.mark_system_output(od);
        let t = b.build().unwrap();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set(t.module_by_name("A").unwrap(), 0, 0, 1.0).unwrap();
        pm.set(t.module_by_name("C").unwrap(), 0, 0, 0.5).unwrap();
        pm.set(t.module_by_name("D").unwrap(), 0, 0, 0.25).unwrap();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let tree = TraceTree::build(&g, x).unwrap();
        let paths = tree.paths();
        assert_eq!(paths.len(), 2);
        let mut w: Vec<f64> = paths.iter().map(|p| p.weight).collect();
        w.sort_by(f64::total_cmp);
        assert_eq!(w, vec![0.25, 0.5]);
    }

    #[test]
    fn unknown_signal_rejected() {
        let (t, pm) = feedback_system();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        assert!(TraceTree::build(&g, SignalId(99)).is_err());
    }

    #[test]
    fn trace_paths_weights_are_products() {
        let (t, pm) = feedback_system();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let ext = t.signal_by_name("ext").unwrap();
        for p in TraceTree::build(&g, ext).unwrap().paths() {
            let prod: f64 = p.arcs.iter().map(|&(_, w)| w).product();
            assert!((p.weight - prod).abs() < 1e-12);
        }
    }
}
