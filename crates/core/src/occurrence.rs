//! Error-occurrence weighting: from conditional permeability to risk.
//!
//! Section 4 notes that the analysis is useful "even with minimal knowledge
//! of the distribution of the occurring errors", but that knowing it
//! improves the results: a path's conditional weight can be scaled by the
//! probability of an error appearing at its origin (`P' = Pr(A_1) · P` in
//! the paper). This module packages that adjustment: an
//! [`OccurrenceProfile`] assigns per-signal error-occurrence rates, and
//! [`risk_analysis`] turns backtrack trees into a ranked list of
//! (origin, output) risks.

use crate::backtrack::BacktrackForest;
use crate::error::TopologyError;
use crate::graph::PermeabilityGraph;
use crate::ids::SignalId;
use crate::paths::PathTerminal;
use crate::topology::SystemTopology;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-signal error-occurrence probabilities (per mission / per scenario —
/// any consistent unit works, since results are used as relative orderings).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OccurrenceProfile {
    rates: HashMap<SignalId, f64>,
}

impl OccurrenceProfile {
    /// An empty profile (every signal at rate zero).
    pub fn new() -> Self {
        OccurrenceProfile::default()
    }

    /// A uniform profile over the system inputs of `topology` — the
    /// "minimal knowledge" baseline.
    pub fn uniform_inputs(topology: &SystemTopology, rate: f64) -> Self {
        let mut p = OccurrenceProfile::new();
        for &s in topology.system_inputs() {
            p.set(s, rate);
        }
        p
    }

    /// Sets the rate for one signal.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn set(&mut self, signal: SignalId, rate: f64) -> &mut Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be finite and non-negative"
        );
        self.rates.insert(signal, rate);
        self
    }

    /// The rate for a signal (zero when unset).
    pub fn rate(&self, signal: SignalId) -> f64 {
        self.rates.get(&signal).copied().unwrap_or(0.0)
    }
}

/// One row of the risk analysis: errors occurring at `origin` reaching
/// `output`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskRow {
    /// Where errors occur (a system input, per the profile).
    pub origin: SignalId,
    /// The system output at risk.
    pub output: SignalId,
    /// Occurrence rate at the origin.
    pub occurrence: f64,
    /// Combined conditional propagation probability over all parallel paths
    /// (`1 − Π(1 − w)`).
    pub propagation: f64,
    /// The product — the paper's `P'`, aggregated over paths.
    pub risk: f64,
}

/// Computes occurrence-weighted risks for every (origin, system output)
/// pair with a non-zero occurrence rate, ranked by risk descending.
///
/// # Errors
///
/// Propagates [`TopologyError`] from tree construction.
pub fn risk_analysis(
    graph: &PermeabilityGraph,
    profile: &OccurrenceProfile,
) -> Result<Vec<RiskRow>, TopologyError> {
    let topo = graph.topology();
    let forest = BacktrackForest::build(graph)?;
    let mut rows = Vec::new();
    for tree in forest.trees() {
        let output = tree.root_signal();
        let paths = tree.clone().into_path_set();
        for &origin in topo.system_inputs() {
            let occurrence = profile.rate(origin);
            if occurrence <= 0.0 {
                continue;
            }
            let propagation = paths.end_to_end_estimate(origin);
            rows.push(RiskRow {
                origin,
                output,
                occurrence,
                propagation,
                risk: occurrence * propagation,
            });
        }
    }
    rows.sort_by(|a, b| {
        b.risk
            .total_cmp(&a.risk)
            .then_with(|| a.origin.cmp(&b.origin))
            .then_with(|| a.output.cmp(&b.output))
    });
    Ok(rows)
}

/// The total risk reaching each system output (sum over origins) — a
/// one-number-per-output vulnerability summary.
pub fn output_risk(rows: &[RiskRow]) -> Vec<(SignalId, f64)> {
    let mut acc: HashMap<SignalId, f64> = HashMap::new();
    for r in rows {
        *acc.entry(r.output).or_insert(0.0) += r.risk;
    }
    let mut v: Vec<(SignalId, f64)> = acc.into_iter().collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// A leaf-terminal-aware variant: risk restricted to paths actually rooted
/// in externally-entering errors (excludes feedback leaves), matching the
/// paper's remark that feedback branches "can be disregarded" when errors
/// only enter via main inputs.
pub fn external_only_propagation(
    graph: &PermeabilityGraph,
    origin: SignalId,
    output: SignalId,
) -> Result<f64, TopologyError> {
    let forest = BacktrackForest::build(graph)?;
    let tree = forest
        .tree_for(output)
        .ok_or(TopologyError::UnknownSignal(output))?;
    let mut survive = 1.0;
    for p in tree.paths() {
        if p.terminal == PathTerminal::SystemInput && p.leaf() == origin {
            survive *= 1.0 - p.weight;
        }
    }
    Ok(1.0 - survive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::PermeabilityMatrix;
    use crate::topology::TopologyBuilder;

    /// Two inputs, one output:
    ///   e1 -> [A] -> s -> [C] -> out   (0.5 * 0.8)
    ///   e2 -> [B] -> t -> [C] -> out   (0.9 * 0.6)
    fn fixture() -> PermeabilityGraph {
        let mut b = TopologyBuilder::new("risk");
        let e1 = b.external("e1");
        let e2 = b.external("e2");
        let a = b.add_module("A");
        b.bind_input(a, e1);
        let s = b.add_output(a, "s");
        let bm = b.add_module("B");
        b.bind_input(bm, e2);
        let t = b.add_output(bm, "t");
        let c = b.add_module("C");
        b.bind_input(c, s);
        b.bind_input(c, t);
        let out = b.add_output(c, "out");
        b.mark_system_output(out);
        let topo = b.build().unwrap();
        let mut pm = PermeabilityMatrix::zeroed(&topo);
        pm.set_named(&topo, "A", "e1", "s", 0.5).unwrap();
        pm.set_named(&topo, "B", "e2", "t", 0.9).unwrap();
        pm.set_named(&topo, "C", "s", "out", 0.8).unwrap();
        pm.set_named(&topo, "C", "t", "out", 0.6).unwrap();
        PermeabilityGraph::new(&topo, &pm).unwrap()
    }

    #[test]
    fn uniform_profile_ranks_by_propagation() {
        let g = fixture();
        let topo = g.topology();
        let profile = OccurrenceProfile::uniform_inputs(topo, 0.01);
        let rows = risk_analysis(&g, &profile).unwrap();
        assert_eq!(rows.len(), 2);
        // e2's chain: 0.54 > e1's 0.40.
        assert_eq!(rows[0].origin, topo.signal_by_name("e2").unwrap());
        assert!((rows[0].propagation - 0.54).abs() < 1e-12);
        assert!((rows[0].risk - 0.0054).abs() < 1e-12);
    }

    #[test]
    fn occurrence_rates_can_invert_the_ranking() {
        let g = fixture();
        let topo = g.topology();
        let e1 = topo.signal_by_name("e1").unwrap();
        let e2 = topo.signal_by_name("e2").unwrap();
        let mut profile = OccurrenceProfile::new();
        profile.set(e1, 0.10).set(e2, 0.01);
        let rows = risk_analysis(&g, &profile).unwrap();
        // e1: 0.10 * 0.40 = 0.040 > e2: 0.01 * 0.54 = 0.0054.
        assert_eq!(rows[0].origin, e1);
        assert!(rows[0].risk > rows[1].risk);
    }

    #[test]
    fn zero_rate_origins_are_omitted() {
        let g = fixture();
        let topo = g.topology();
        let e1 = topo.signal_by_name("e1").unwrap();
        let mut profile = OccurrenceProfile::new();
        profile.set(e1, 0.5);
        let rows = risk_analysis(&g, &profile).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].origin, e1);
    }

    #[test]
    fn output_risk_sums_over_origins() {
        let g = fixture();
        let topo = g.topology();
        let profile = OccurrenceProfile::uniform_inputs(topo, 1.0);
        let rows = risk_analysis(&g, &profile).unwrap();
        let totals = output_risk(&rows);
        assert_eq!(totals.len(), 1);
        assert!((totals[0].1 - (0.40 + 0.54)).abs() < 1e-12);
    }

    #[test]
    fn external_only_matches_end_to_end_without_feedback() {
        let g = fixture();
        let topo = g.topology();
        let e1 = topo.signal_by_name("e1").unwrap();
        let out = topo.signal_by_name("out").unwrap();
        let p = external_only_propagation(&g, e1, out).unwrap();
        assert!((p - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let g = fixture();
        let e1 = g.topology().signal_by_name("e1").unwrap();
        OccurrenceProfile::new().set(e1, -0.1);
    }
}
