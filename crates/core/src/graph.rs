//! The permeability graph (Section 4.2, Fig. 3 of the paper).
//!
//! Each node corresponds to a module. For every (input `i`, output `k`) pair
//! of a module `M` there is one arc weighted `P^M_{i,k}`; the arc conceptually
//! runs *through* `M` from the signal bound at input `i` to the signal
//! produced at output `k`. Because every pair carries an arc, there may be
//! more arcs between two nodes than there are signals between the
//! corresponding modules.
//!
//! The graph keeps zero-weight arcs: the paper's Table 4 counts propagation
//! paths including those with zero weight (22 paths, 13 non-zero), so pruning
//! is left to [`crate::paths::PathSet`] consumers.

use crate::error::MatrixError;
use crate::ids::{InPortRef, ModuleId, SignalId};
use crate::matrix::PermeabilityMatrix;
use crate::topology::{SignalSource, SystemTopology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable identity of a permeability arc: the (module, input, output) pair it
/// belongs to.
///
/// Two occurrences of the same pair in different trees are the *same* arc —
/// the paper's signal-exposure measure (Eq. 6) counts them once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArcId {
    /// Module the pair belongs to.
    pub module: ModuleId,
    /// Zero-based input port index.
    pub input: usize,
    /// Zero-based output port index.
    pub output: usize,
}

/// A weighted arc of the permeability graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arc {
    /// Which (module, input, output) pair this arc represents.
    pub id: ArcId,
    /// The error permeability `P^M_{i,k}`.
    pub weight: f64,
    /// Signal bound at the input side of the pair.
    pub input_signal: SignalId,
    /// Signal produced at the output side of the pair.
    pub output_signal: SignalId,
}

/// A [`SystemTopology`] joined with a [`PermeabilityMatrix`]: the weighted
/// permeability graph on which all propagation analyses run.
///
/// The graph owns clones of both inputs so it can be freely moved into
/// analyses and threads.
///
/// # Examples
///
/// ```
/// use permea_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TopologyBuilder::new("t");
/// let x = b.external("x");
/// let m = b.add_module("M");
/// b.bind_input(m, x);
/// let y = b.add_output(m, "y");
/// b.mark_system_output(y);
/// let topo = b.build()?;
/// let mut pm = PermeabilityMatrix::zeroed(&topo);
/// pm.set(m, 0, 0, 0.7)?;
///
/// let g = PermeabilityGraph::new(&topo, &pm)?;
/// assert_eq!(g.arcs().count(), 1);
/// assert_eq!(g.arcs_into_signal(y).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PermeabilityGraph {
    topology: SystemTopology,
    matrix: PermeabilityMatrix,
    arcs: Vec<Arc>,
    /// Indices into `arcs`, keyed by the produced (output-side) signal.
    #[serde(skip)]
    by_output_signal: HashMap<SignalId, Vec<usize>>,
    /// Indices into `arcs`, keyed by (module, input) port.
    #[serde(skip)]
    by_input_port: HashMap<(ModuleId, usize), Vec<usize>>,
}

impl PermeabilityGraph {
    /// Joins a topology with its permeability matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if the matrix was built for a
    /// different topology (matched by name and pair count).
    pub fn new(
        topology: &SystemTopology,
        matrix: &PermeabilityMatrix,
    ) -> Result<Self, MatrixError> {
        if topology.name() != matrix.topology_name() || topology.pair_count() != matrix.pair_count()
        {
            return Err(MatrixError::ShapeMismatch {
                expected: matrix.topology_name().to_owned(),
                found: topology.name().to_owned(),
            });
        }
        let mut arcs = Vec::with_capacity(topology.pair_count());
        for m in topology.modules() {
            let inputs = topology.inputs_of(m).to_vec();
            let outputs = topology.outputs_of(m).to_vec();
            for (i, &input_signal) in inputs.iter().enumerate() {
                for (k, &output_signal) in outputs.iter().enumerate() {
                    arcs.push(Arc {
                        id: ArcId {
                            module: m,
                            input: i,
                            output: k,
                        },
                        weight: matrix.get(m, i, k),
                        input_signal,
                        output_signal,
                    });
                }
            }
        }
        let mut graph = PermeabilityGraph {
            topology: topology.clone(),
            matrix: matrix.clone(),
            arcs,
            by_output_signal: HashMap::new(),
            by_input_port: HashMap::new(),
        };
        graph.rebuild_indexes();
        Ok(graph)
    }

    /// Rebuilds the adjacency indexes (needed after deserialisation).
    pub fn rebuild_indexes(&mut self) {
        self.topology.rebuild_indexes();
        self.by_output_signal.clear();
        self.by_input_port.clear();
        for (idx, arc) in self.arcs.iter().enumerate() {
            self.by_output_signal
                .entry(arc.output_signal)
                .or_default()
                .push(idx);
            self.by_input_port
                .entry((arc.id.module, arc.id.input))
                .or_default()
                .push(idx);
        }
    }

    /// The topology the graph was built from.
    pub fn topology(&self) -> &SystemTopology {
        &self.topology
    }

    /// The permeability matrix the graph was built from.
    pub fn matrix(&self) -> &PermeabilityMatrix {
        &self.matrix
    }

    /// All arcs, in deterministic (module, input, output) order.
    pub fn arcs(&self) -> impl ExactSizeIterator<Item = &Arc> + '_ {
        self.arcs.iter()
    }

    /// Arcs whose output side produces signal `s` — i.e. the arcs a backtrack
    /// tree follows when expanding a node for `s`. Empty for external signals.
    pub fn arcs_into_signal(&self, s: SignalId) -> Vec<&Arc> {
        match self.by_output_signal.get(&s) {
            Some(v) => v.iter().map(|&i| &self.arcs[i]).collect(),
            None => Vec::new(),
        }
    }

    /// Arcs leaving the input port `(module, input)` — i.e. the arcs a trace
    /// tree follows when an error enters that port.
    pub fn arcs_from_input_port(&self, module: ModuleId, input: usize) -> Vec<&Arc> {
        match self.by_input_port.get(&(module, input)) {
            Some(v) => v.iter().map(|&i| &self.arcs[i]).collect(),
            None => Vec::new(),
        }
    }

    /// The *incoming* arcs of module `m`: for every input port of `m` bound
    /// to a signal produced by some module `W`, all of `W`'s arcs into that
    /// signal. These are the arcs whose weights define the error exposure
    /// `X^M` (Eq. 4). Input ports bound to external signals contribute no
    /// arcs (observation OB1).
    pub fn incoming_arcs(&self, m: ModuleId) -> Vec<&Arc> {
        let mut out = Vec::new();
        for &sig in self.topology.inputs_of(m) {
            if let SignalSource::Produced(_) = self.topology.source_of(sig) {
                out.extend(self.arcs_into_signal(sig));
            }
        }
        out
    }

    /// The *outgoing* arcs of module `m`: its own permeability pairs. Their
    /// sum is the non-weighted relative permeability `P̄^M` (Eq. 3).
    pub fn outgoing_arcs(&self, m: ModuleId) -> Vec<&Arc> {
        self.arcs.iter().filter(|a| a.id.module == m).collect()
    }

    /// Looks up the weight of a specific arc.
    pub fn weight(&self, id: ArcId) -> Option<f64> {
        self.matrix.try_get(id.module, id.input, id.output).ok()
    }

    /// Resolves the consumers that an arc's output signal fans out to.
    pub fn arc_destinations(&self, arc: &Arc) -> &[InPortRef] {
        self.topology.consumers_of(arc.output_signal)
    }

    /// Human-readable label for an arc, matching the paper's
    /// `P^MODULE_{i,k}` notation with one-based indices.
    pub fn arc_label(&self, id: ArcId) -> String {
        format!(
            "P^{}_{{{},{}}}",
            self.topology.module_name(id.module),
            id.input + 1,
            id.output + 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    /// ext -> [A] -> s -> [B] -> out, where B also has self-feedback fb.
    fn fixture() -> (SystemTopology, PermeabilityMatrix) {
        let mut b = TopologyBuilder::new("g");
        let ext = b.external("ext");
        let a = b.add_module("A");
        b.bind_input(a, ext);
        let s = b.add_output(a, "s");
        let bm = b.add_module("B");
        b.bind_input(bm, s);
        let fb = b.add_output(bm, "fb");
        let out = b.add_output(bm, "out");
        b.bind_input(bm, fb);
        b.mark_system_output(out);
        let t = b.build().unwrap();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        let a = t.module_by_name("A").unwrap();
        let bm = t.module_by_name("B").unwrap();
        pm.set(a, 0, 0, 0.5).unwrap();
        pm.set(bm, 0, 0, 0.1).unwrap(); // s -> fb
        pm.set(bm, 0, 1, 0.2).unwrap(); // s -> out
        pm.set(bm, 1, 0, 0.3).unwrap(); // fb -> fb
        pm.set(bm, 1, 1, 0.4).unwrap(); // fb -> out
        (t, pm)
    }

    #[test]
    fn arc_count_equals_pair_count() {
        let (t, pm) = fixture();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        assert_eq!(g.arcs().count(), t.pair_count());
        assert_eq!(g.arcs().count(), 5);
    }

    #[test]
    fn arcs_into_signal_follow_producer_pairs() {
        let (t, pm) = fixture();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let out = t.signal_by_name("out").unwrap();
        let arcs = g.arcs_into_signal(out);
        assert_eq!(arcs.len(), 2);
        let weights: Vec<f64> = arcs.iter().map(|a| a.weight).collect();
        assert_eq!(weights, vec![0.2, 0.4]);
        let ext = t.signal_by_name("ext").unwrap();
        assert!(g.arcs_into_signal(ext).is_empty());
    }

    #[test]
    fn arcs_from_input_port_cover_all_outputs() {
        let (t, pm) = fixture();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let bm = t.module_by_name("B").unwrap();
        let arcs = g.arcs_from_input_port(bm, 1);
        assert_eq!(arcs.len(), 2);
        assert_eq!(arcs[0].weight, 0.3);
        assert_eq!(arcs[1].weight, 0.4);
    }

    #[test]
    fn incoming_arcs_include_self_feedback_and_skip_external() {
        let (t, pm) = fixture();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let a = t.module_by_name("A").unwrap();
        let bm = t.module_by_name("B").unwrap();
        // A reads only the external signal: no exposure arcs (OB1).
        assert!(g.incoming_arcs(a).is_empty());
        // B reads s (produced by A, 1 arc) and fb (produced by B, 2 arcs).
        let incoming = g.incoming_arcs(bm);
        assert_eq!(incoming.len(), 3);
        let sum: f64 = incoming.iter().map(|x| x.weight).sum();
        assert!((sum - (0.5 + 0.1 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn outgoing_arcs_sum_to_module_sum() {
        let (t, pm) = fixture();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let bm = t.module_by_name("B").unwrap();
        let sum: f64 = g.outgoing_arcs(bm).iter().map(|a| a.weight).sum();
        assert!((sum - pm.module_sum(bm)).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_detected() {
        let (t, _) = fixture();
        let mut b2 = TopologyBuilder::new("other");
        let x = b2.external("x");
        let m = b2.add_module("M");
        b2.bind_input(m, x);
        let o = b2.add_output(m, "o");
        b2.mark_system_output(o);
        let t2 = b2.build().unwrap();
        let pm2 = PermeabilityMatrix::zeroed(&t2);
        assert!(matches!(
            PermeabilityGraph::new(&t, &pm2),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn arc_label_uses_one_based_paper_notation() {
        let (t, pm) = fixture();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let bm = t.module_by_name("B").unwrap();
        let label = g.arc_label(ArcId {
            module: bm,
            input: 1,
            output: 0,
        });
        assert_eq!(label, "P^B_{2,1}");
    }

    #[test]
    fn arc_destinations_resolve_fanout() {
        let (t, pm) = fixture();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let bm = t.module_by_name("B").unwrap();
        let fb_arc = *g
            .arcs()
            .find(|a| {
                a.id == ArcId {
                    module: bm,
                    input: 0,
                    output: 0,
                }
            })
            .unwrap();
        let dests = g.arc_destinations(&fb_arc);
        assert_eq!(dests.len(), 1);
        assert_eq!(dests[0].module, bm);
        assert_eq!(dests[0].input, 1);
    }
}
