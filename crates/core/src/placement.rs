//! EDM/ERM placement recommendations (Section 5 and observations OB1–OB6).
//!
//! The paper gives rules of thumb rather than an optimisation procedure:
//!
//! * the higher a module's (or signal's) **error exposure**, the more cost
//!   effective an **error detection mechanism** (EDM) is there;
//! * the higher a module's **error permeability**, the more cost effective an
//!   **error recovery mechanism** (ERM) is there;
//! * signals lying on *all* non-zero propagation paths shield the system
//!   output completely if recovery succeeds there (OB5);
//! * modules reading system inputs form a *barrier* against external errors
//!   (OB6);
//! * signals that are hardware registers or independent of all other signals
//!   are poor candidates regardless of their metrics (OB4).
//!
//! [`PlacementAdvisor`] encodes these rules and produces a ranked
//! [`PlacementPlan`] whose entries carry machine-readable [`Rationale`]s.

use crate::backtrack::BacktrackForest;
use crate::error::TopologyError;
use crate::graph::PermeabilityGraph;
use crate::ids::{ModuleId, SignalId};
use crate::measures::SystemMeasures;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Why a location was recommended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Rationale {
    /// The signal has one of the highest signal error exposures `X^S`.
    HighSignalExposure {
        /// The exposure value.
        value: f64,
    },
    /// The module has one of the highest non-weighted error exposures `X̄^M`.
    HighModuleExposure {
        /// The exposure value.
        value: f64,
    },
    /// The module has one of the highest non-weighted relative
    /// permeabilities `P̄^M`.
    HighPermeability {
        /// The permeability value.
        value: f64,
    },
    /// The signal occurs on every non-zero propagation path to a system
    /// output (OB5).
    OnAllNonZeroPaths,
    /// The module reads system inputs and so acts as a barrier against
    /// external errors (OB6).
    BarrierModule,
}

/// Whether a recommendation targets a module or a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Location {
    /// Place the mechanism inside a module.
    Module(ModuleId),
    /// Place the mechanism on a signal (e.g. an executable assertion on the
    /// value).
    Signal(SignalId),
}

/// One placement recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Where to place the mechanism.
    pub location: Location,
    /// Ranking score (higher is better); the meaning depends on the
    /// rationale but scores within one list are comparable.
    pub score: f64,
    /// Every rule that fired for this location.
    pub rationales: Vec<Rationale>,
}

/// A complete placement plan: ranked EDM and ERM candidate lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Error-detection candidates, best first. Mixes signal-level and
    /// module-level locations; signal entries are ordered by `X^S`, module
    /// entries by `X̄^M`.
    pub edm: Vec<Recommendation>,
    /// Error-recovery candidates, best first (modules by `P̄^M`, then barrier
    /// modules).
    pub erm: Vec<Recommendation>,
}

impl PlacementPlan {
    /// The signal EDM candidates only, in rank order.
    pub fn edm_signals(&self) -> Vec<SignalId> {
        self.edm
            .iter()
            .filter_map(|r| match r.location {
                Location::Signal(s) => Some(s),
                Location::Module(_) => None,
            })
            .collect()
    }

    /// The module ERM candidates only, in rank order.
    pub fn erm_modules(&self) -> Vec<ModuleId> {
        self.erm
            .iter()
            .filter_map(|r| match r.location {
                Location::Module(m) => Some(m),
                Location::Signal(_) => None,
            })
            .collect()
    }
}

/// Configuration of the advisor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvisorOptions {
    /// Maximum number of signal-level EDM candidates (default 3, matching
    /// the paper's selection in OB4).
    pub max_edm_signals: usize,
    /// Maximum number of module-level candidates per list (default 3).
    pub max_modules: usize,
    /// Exclude system outputs from signal candidates (hardware registers —
    /// OB4 rejects TOC2 because errors there come from OutValue anyway).
    pub exclude_system_outputs: bool,
    /// Exclude signals whose exposure is zero (independent signals — OB4
    /// rejects signals errors cannot reach).
    pub exclude_zero_exposure: bool,
}

impl Default for AdvisorOptions {
    fn default() -> Self {
        AdvisorOptions {
            max_edm_signals: 3,
            max_modules: 3,
            exclude_system_outputs: true,
            exclude_zero_exposure: true,
        }
    }
}

/// Derives a [`PlacementPlan`] from a permeability graph by applying the
/// paper's placement rules.
///
/// # Examples
///
/// ```
/// use permea_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TopologyBuilder::new("t");
/// let x = b.external("x");
/// let a = b.add_module("A");
/// b.bind_input(a, x);
/// let s = b.add_output(a, "s");
/// let c = b.add_module("C");
/// b.bind_input(c, s);
/// let out = b.add_output(c, "out");
/// b.mark_system_output(out);
/// let topo = b.build()?;
/// let mut pm = PermeabilityMatrix::zeroed(&topo);
/// pm.set(a, 0, 0, 0.9)?;
/// pm.set(c, 0, 0, 0.5)?;
/// let g = PermeabilityGraph::new(&topo, &pm)?;
///
/// let plan = PlacementAdvisor::new(&g)?.plan();
/// assert_eq!(plan.edm_signals(), vec![s]); // the only exposed signal
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PlacementAdvisor<'g> {
    graph: &'g PermeabilityGraph,
    measures: SystemMeasures,
    options: AdvisorOptions,
}

impl<'g> PlacementAdvisor<'g> {
    /// Creates an advisor with default options.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from measure computation.
    pub fn new(graph: &'g PermeabilityGraph) -> Result<Self, TopologyError> {
        Self::with_options(graph, AdvisorOptions::default())
    }

    /// Creates an advisor with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] from measure computation.
    pub fn with_options(
        graph: &'g PermeabilityGraph,
        options: AdvisorOptions,
    ) -> Result<Self, TopologyError> {
        Ok(PlacementAdvisor {
            graph,
            measures: SystemMeasures::compute(graph)?,
            options,
        })
    }

    /// The measures backing the recommendations.
    pub fn measures(&self) -> &SystemMeasures {
        &self.measures
    }

    /// Produces the ranked placement plan.
    pub fn plan(&self) -> PlacementPlan {
        let topo = self.graph.topology();
        // OB5: signals on every non-zero path to any system output.
        let shield_signals: BTreeSet<SignalId> = BacktrackForest::build(self.graph)
            .map(|f| {
                f.trees()
                    .iter()
                    .flat_map(|t| {
                        crate::paths::PathSet::from_paths(t.paths()).signals_on_all_non_zero_paths()
                    })
                    .collect()
            })
            .unwrap_or_default();

        // --- EDM candidates: signals by X^S ---
        let mut edm = Vec::new();
        for se in self.measures.ranked_by_signal_exposure() {
            if edm.len() >= self.options.max_edm_signals {
                break;
            }
            if self.options.exclude_system_outputs && topo.is_system_output(se.signal) {
                continue;
            }
            if self.options.exclude_zero_exposure && se.exposure <= 0.0 {
                continue;
            }
            let mut rationales = vec![Rationale::HighSignalExposure { value: se.exposure }];
            if shield_signals.contains(&se.signal) {
                rationales.push(Rationale::OnAllNonZeroPaths);
            }
            edm.push(Recommendation {
                location: Location::Signal(se.signal),
                score: se.exposure,
                rationales,
            });
        }
        // EDM module candidates by X̄^M.
        for mm in self
            .measures
            .ranked_by_exposure()
            .into_iter()
            .take(self.options.max_modules)
        {
            if self.options.exclude_zero_exposure && mm.non_weighted_exposure <= 0.0 {
                continue;
            }
            edm.push(Recommendation {
                location: Location::Module(mm.module),
                score: mm.non_weighted_exposure,
                rationales: vec![Rationale::HighModuleExposure {
                    value: mm.non_weighted_exposure,
                }],
            });
        }

        // --- ERM candidates: modules by P̄^M, then barriers ---
        let mut erm = Vec::new();
        for mm in self
            .measures
            .ranked_by_permeability()
            .into_iter()
            .take(self.options.max_modules)
        {
            if mm.non_weighted_relative_permeability <= 0.0 {
                continue;
            }
            let mut rationales = vec![Rationale::HighPermeability {
                value: mm.non_weighted_relative_permeability,
            }];
            if topo.barrier_modules().contains(&mm.module) {
                rationales.push(Rationale::BarrierModule);
            }
            erm.push(Recommendation {
                location: Location::Module(mm.module),
                score: mm.non_weighted_relative_permeability,
                rationales,
            });
        }
        for m in topo.barrier_modules() {
            if erm.iter().any(|r| r.location == Location::Module(m)) {
                continue;
            }
            let mm = self.measures.module(m);
            erm.push(Recommendation {
                location: Location::Module(m),
                score: mm.non_weighted_relative_permeability,
                rationales: vec![Rationale::BarrierModule],
            });
        }

        PlacementPlan { edm, erm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::PermeabilityMatrix;
    use crate::topology::TopologyBuilder;

    /// ext -> [A] -> s -> [B] -> mid -> [C] -> out
    fn chain_graph() -> PermeabilityGraph {
        let mut b = TopologyBuilder::new("chain");
        let ext = b.external("ext");
        let a = b.add_module("A");
        b.bind_input(a, ext);
        let s = b.add_output(a, "s");
        let bm = b.add_module("B");
        b.bind_input(bm, s);
        let mid = b.add_output(bm, "mid");
        let c = b.add_module("C");
        b.bind_input(c, mid);
        let out = b.add_output(c, "out");
        b.mark_system_output(out);
        let t = b.build().unwrap();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set(t.module_by_name("A").unwrap(), 0, 0, 0.9).unwrap();
        pm.set(t.module_by_name("B").unwrap(), 0, 0, 0.6).unwrap();
        pm.set(t.module_by_name("C").unwrap(), 0, 0, 0.3).unwrap();
        PermeabilityGraph::new(&t, &pm).unwrap()
    }

    #[test]
    fn edm_signals_ranked_by_exposure() {
        let g = chain_graph();
        let plan = PlacementAdvisor::new(&g).unwrap().plan();
        let t = g.topology();
        let s = t.signal_by_name("s").unwrap();
        let mid = t.signal_by_name("mid").unwrap();
        // X^s = 0.9 (arc of A), X^mid = 0.6 (arc of B); out excluded (system output).
        assert_eq!(plan.edm_signals(), vec![s, mid]);
    }

    #[test]
    fn shield_signals_get_ob5_rationale() {
        let g = chain_graph();
        let plan = PlacementAdvisor::new(&g).unwrap().plan();
        // Both s and mid lie on the single non-zero path: both get OB5.
        for rec in plan
            .edm
            .iter()
            .filter(|r| matches!(r.location, Location::Signal(_)))
        {
            assert!(rec.rationales.contains(&Rationale::OnAllNonZeroPaths));
        }
    }

    #[test]
    fn erm_modules_ranked_by_permeability_with_barrier() {
        let g = chain_graph();
        let plan = PlacementAdvisor::new(&g).unwrap().plan();
        let t = g.topology();
        let a = t.module_by_name("A").unwrap();
        let modules = plan.erm_modules();
        // A has highest permeability AND is the barrier module.
        assert_eq!(modules[0], a);
        let rec = &plan.erm[0];
        assert!(rec
            .rationales
            .iter()
            .any(|r| matches!(r, Rationale::HighPermeability { .. })));
        assert!(rec.rationales.contains(&Rationale::BarrierModule));
    }

    #[test]
    fn options_limit_candidates() {
        let g = chain_graph();
        let plan = PlacementAdvisor::with_options(
            &g,
            AdvisorOptions {
                max_edm_signals: 1,
                max_modules: 1,
                ..Default::default()
            },
        )
        .unwrap()
        .plan();
        assert_eq!(plan.edm_signals().len(), 1);
        // max_modules=1 for ranked list; barriers may append.
        assert!(!plan.erm.is_empty());
    }

    #[test]
    fn system_outputs_can_be_included_when_asked() {
        let g = chain_graph();
        let plan = PlacementAdvisor::with_options(
            &g,
            AdvisorOptions {
                exclude_system_outputs: false,
                max_edm_signals: 10,
                ..Default::default()
            },
        )
        .unwrap()
        .plan();
        let out = g.topology().signal_by_name("out").unwrap();
        assert!(plan.edm_signals().contains(&out));
    }

    #[test]
    fn zero_exposure_signals_excluded_by_default() {
        let g = chain_graph();
        let plan = PlacementAdvisor::new(&g).unwrap().plan();
        let ext = g.topology().signal_by_name("ext").unwrap();
        assert!(!plan.edm_signals().contains(&ext));
    }
}
