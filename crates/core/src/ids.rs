//! Strongly-typed identifiers for modules, signals and ports.
//!
//! All identifiers are cheap `Copy` newtypes over dense indices into a
//! [`crate::topology::SystemTopology`]. They are only meaningful together with
//! the topology that produced them ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a software module within a [`crate::topology::SystemTopology`].
///
/// # Examples
///
/// ```
/// use permea_core::prelude::*;
/// let mut b = TopologyBuilder::new("sys");
/// let m: ModuleId = b.add_module("M");
/// assert_eq!(m.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub(crate) usize);

impl ModuleId {
    /// Returns the dense index of this module.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Identifier of a signal within a [`crate::topology::SystemTopology`].
///
/// A signal has exactly one source — either the external environment or a
/// single module output port — and any number of consumers.
///
/// # Examples
///
/// ```
/// use permea_core::prelude::*;
/// let mut b = TopologyBuilder::new("sys");
/// let s: SignalId = b.external("sensor");
/// assert_eq!(s.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// Returns the dense index of this signal.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Reference to an input port: the `input`-th input of module `module`.
///
/// Input ports are numbered from zero in the order they were bound with
/// [`crate::topology::TopologyBuilder::bind_input`]. The paper numbers the
/// same ports from one; rendering helpers add one for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InPortRef {
    /// The module owning the port.
    pub module: ModuleId,
    /// Zero-based input index within the module.
    pub input: usize,
}

impl fmt::Display for InPortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}^{}", self.input + 1, self.module)
    }
}

/// Reference to an output port: the `output`-th output of module `module`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OutPortRef {
    /// The module owning the port.
    pub module: ModuleId,
    /// Zero-based output index within the module.
    pub output: usize,
}

impl fmt::Display for OutPortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}^{}", self.output + 1, self.module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ModuleId(0) < ModuleId(1));
        assert!(SignalId(3) > SignalId(2));
    }

    #[test]
    fn display_is_one_based_for_ports() {
        let p = InPortRef {
            module: ModuleId(2),
            input: 0,
        };
        assert_eq!(p.to_string(), "I1^M2");
        let o = OutPortRef {
            module: ModuleId(0),
            output: 1,
        };
        assert_eq!(o.to_string(), "O2^M0");
    }

    #[test]
    fn ids_roundtrip_serde() {
        let m = ModuleId(7);
        let json = serde_json::to_string(&m).unwrap();
        let back: ModuleId = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
