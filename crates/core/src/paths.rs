//! Propagation paths and ranked path sets (Section 4.2 and Table 4).
//!
//! A propagation path is a root-to-leaf walk in a backtrack or trace tree.
//! Its weight is the product of the error-permeability values along the walk:
//! for a backtrack path this is the conditional probability that, given an
//! error on the system output (the root), the error originated at the leaf
//! and propagated along exactly this path.

use crate::graph::ArcId;
use crate::ids::SignalId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a path terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathTerminal {
    /// The leaf is a system input (backtrack trees) — the error entered the
    /// system from the environment.
    SystemInput,
    /// The leaf is a system output (trace trees) — the error left the system.
    SystemOutput,
    /// The leaf closes a feedback loop: the leaf signal already occurs
    /// earlier on the path and the recursion was cut after one pass.
    Feedback,
    /// The leaf signal has no consumers and is not a system output (trace
    /// trees only): the error is absorbed.
    DeadEnd,
}

/// One propagation path: an ordered walk through signals and arcs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationPath {
    /// Signals visited, starting at the tree root.
    pub signals: Vec<SignalId>,
    /// Arcs traversed between consecutive signals (`signals.len() - 1` of
    /// them), each with its permeability weight.
    pub arcs: Vec<(ArcId, f64)>,
    /// Product of the arc weights.
    pub weight: f64,
    /// How the path terminates.
    pub terminal: PathTerminal,
}

impl PropagationPath {
    /// The signal at the root of the tree this path came from.
    pub fn root(&self) -> SignalId {
        self.signals[0]
    }

    /// The signal at the leaf.
    pub fn leaf(&self) -> SignalId {
        *self.signals.last().expect("paths have at least one signal")
    }

    /// Number of arcs in the path.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// `true` when the path is just the root (no arcs).
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// `true` if the path visits signal `s` anywhere.
    pub fn visits(&self, s: SignalId) -> bool {
        self.signals.contains(&s)
    }

    /// The paper's `P'` adjustment: scales the path weight by the probability
    /// of an error appearing on the leaf/root signal (whichever is the system
    /// boundary), yielding an unconditional propagation probability.
    pub fn weighted_by(&self, boundary_error_probability: f64) -> f64 {
        self.weight * boundary_error_probability
    }
}

/// An owned collection of propagation paths with ranking and filtering
/// helpers — the machinery behind Table 4.
///
/// # Examples
///
/// ```
/// use permea_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TopologyBuilder::new("t");
/// let x = b.external("x");
/// let m = b.add_module("M");
/// b.bind_input(m, x);
/// let y = b.add_output(m, "y");
/// b.mark_system_output(y);
/// let topo = b.build()?;
/// let mut pm = PermeabilityMatrix::zeroed(&topo);
/// pm.set(m, 0, 0, 0.7)?;
/// let g = PermeabilityGraph::new(&topo, &pm)?;
///
/// let set = BacktrackTree::build(&g, y)?.into_path_set();
/// assert_eq!(set.len(), 1);
/// assert_eq!(set.non_zero().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PathSet {
    paths: Vec<PropagationPath>,
}

impl PathSet {
    /// Creates an empty path set.
    pub fn new() -> Self {
        PathSet::default()
    }

    /// Wraps a vector of paths.
    pub fn from_paths(paths: Vec<PropagationPath>) -> Self {
        PathSet { paths }
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if the set holds no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Borrowing iterator over the paths.
    pub fn iter(&self) -> std::slice::Iter<'_, PropagationPath> {
        self.paths.iter()
    }

    /// Access the underlying slice.
    pub fn as_slice(&self) -> &[PropagationPath] {
        &self.paths
    }

    /// Consumes the set, returning the paths.
    pub fn into_vec(self) -> Vec<PropagationPath> {
        self.paths
    }

    /// Appends the paths of `other`.
    pub fn extend_from(&mut self, other: PathSet) {
        self.paths.extend(other.paths);
    }

    /// Returns a new set sorted by weight, highest first. Ties are broken by
    /// shorter paths first, then lexicographically by signal ids, so the
    /// order is fully deterministic.
    pub fn sorted_by_weight(&self) -> PathSet {
        let mut paths = self.paths.clone();
        paths.sort_by(|a, b| {
            b.weight
                .total_cmp(&a.weight)
                .then_with(|| a.len().cmp(&b.len()))
                .then_with(|| a.signals.cmp(&b.signals))
        });
        PathSet { paths }
    }

    /// Returns only the paths with strictly positive weight — the paths along
    /// which errors *can* propagate (Table 4 keeps 13 of 22).
    pub fn non_zero(&self) -> PathSet {
        PathSet {
            paths: self
                .paths
                .iter()
                .filter(|p| p.weight > 0.0)
                .cloned()
                .collect(),
        }
    }

    /// The `n` heaviest paths (after deterministic sorting).
    pub fn top(&self, n: usize) -> PathSet {
        let sorted = self.sorted_by_weight();
        PathSet {
            paths: sorted.paths.into_iter().take(n).collect(),
        }
    }

    /// Paths whose leaf is `s`.
    pub fn ending_at(&self, s: SignalId) -> PathSet {
        PathSet {
            paths: self
                .paths
                .iter()
                .filter(|p| p.leaf() == s)
                .cloned()
                .collect(),
        }
    }

    /// Paths that visit `s` anywhere.
    pub fn through(&self, s: SignalId) -> PathSet {
        PathSet {
            paths: self.paths.iter().filter(|p| p.visits(s)).cloned().collect(),
        }
    }

    /// Signals that occur on *every* non-zero path in the set (excluding
    /// paths' roots). These are the strongest EDM/ERM candidates of
    /// observation OB5: eliminating errors there shields the root.
    pub fn signals_on_all_non_zero_paths(&self) -> Vec<SignalId> {
        let nz = self.non_zero();
        let mut counts: HashMap<SignalId, usize> = HashMap::new();
        for p in nz.iter() {
            for &s in p.signals.iter().skip(1) {
                *counts.entry(s).or_insert(0) += 1;
            }
        }
        let total = nz.len();
        let mut out: Vec<SignalId> = counts
            .into_iter()
            .filter(|&(_, c)| total > 0 && c >= total)
            .map(|(s, _)| s)
            .collect();
        out.sort();
        out
    }

    /// Scales each path by the error-occurrence probability of its *leaf*
    /// signal (the paper's `P' = Pr(input) · P`), returning
    /// `(path index, adjusted weight)` pairs sorted descending.
    /// Leaves missing from `probabilities` are treated as probability zero.
    pub fn adjusted_by_input_probability(
        &self,
        probabilities: &HashMap<SignalId, f64>,
    ) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    i,
                    p.weight * probabilities.get(&p.leaf()).copied().unwrap_or(0.0),
                )
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Estimates the end-to-end probability that an error on signal `from`
    /// (a leaf) reaches the root of these paths, combining all parallel paths
    /// `from → root` under an independence assumption:
    /// `1 - Π (1 - w_p)`.
    ///
    /// This is an *extension* of the paper (which ranks paths individually);
    /// it is useful as a single vulnerability number per (input, output).
    pub fn end_to_end_estimate(&self, from: SignalId) -> f64 {
        let mut survive = 1.0;
        for p in self.paths.iter().filter(|p| p.leaf() == from) {
            survive *= 1.0 - p.weight;
        }
        1.0 - survive
    }
}

impl FromIterator<PropagationPath> for PathSet {
    fn from_iter<T: IntoIterator<Item = PropagationPath>>(iter: T) -> Self {
        PathSet {
            paths: iter.into_iter().collect(),
        }
    }
}

impl Extend<PropagationPath> for PathSet {
    fn extend<T: IntoIterator<Item = PropagationPath>>(&mut self, iter: T) {
        self.paths.extend(iter);
    }
}

impl IntoIterator for PathSet {
    type Item = PropagationPath;
    type IntoIter = std::vec::IntoIter<PropagationPath>;
    fn into_iter(self) -> Self::IntoIter {
        self.paths.into_iter()
    }
}

impl<'a> IntoIterator for &'a PathSet {
    type Item = &'a PropagationPath;
    type IntoIter = std::slice::Iter<'a, PropagationPath>;
    fn into_iter(self) -> Self::IntoIter {
        self.paths.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ModuleId;

    fn path(signals: Vec<usize>, weights: Vec<f64>, terminal: PathTerminal) -> PropagationPath {
        let weight = weights.iter().product();
        PropagationPath {
            signals: signals.into_iter().map(SignalId).collect(),
            arcs: weights
                .into_iter()
                .enumerate()
                .map(|(i, w)| {
                    (
                        ArcId {
                            module: ModuleId(0),
                            input: i,
                            output: 0,
                        },
                        w,
                    )
                })
                .collect(),
            weight,
            terminal,
        }
    }

    fn sample() -> PathSet {
        PathSet::from_paths(vec![
            path(vec![0, 1, 2], vec![0.5, 0.5], PathTerminal::SystemInput), // 0.25
            path(vec![0, 1, 3], vec![0.5, 0.0], PathTerminal::SystemInput), // 0.0
            path(vec![0, 4], vec![0.9], PathTerminal::SystemInput),         // 0.9
            path(vec![0, 1, 1], vec![0.5, 0.3], PathTerminal::Feedback),    // 0.15
        ])
    }

    #[test]
    fn sorting_is_descending_and_deterministic() {
        let s = sample().sorted_by_weight();
        let w: Vec<f64> = s.iter().map(|p| p.weight).collect();
        assert_eq!(w, vec![0.9, 0.25, 0.15, 0.0]);
    }

    #[test]
    fn non_zero_filters_zero_weight() {
        assert_eq!(sample().non_zero().len(), 3);
    }

    #[test]
    fn top_takes_heaviest() {
        let top = sample().top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top.as_slice()[0].weight, 0.9);
    }

    #[test]
    fn ending_at_and_through() {
        let s = sample();
        assert_eq!(s.ending_at(SignalId(2)).len(), 1);
        assert_eq!(s.through(SignalId(1)).len(), 3);
    }

    #[test]
    fn signals_on_all_non_zero_paths_finds_common_signal() {
        let s = PathSet::from_paths(vec![
            path(vec![0, 1, 2], vec![0.5, 0.5], PathTerminal::SystemInput),
            path(vec![0, 1, 3], vec![0.5, 0.2], PathTerminal::SystemInput),
        ]);
        assert_eq!(s.signals_on_all_non_zero_paths(), vec![SignalId(1)]);
    }

    #[test]
    fn adjusted_by_input_probability_scales_and_sorts() {
        let s = sample();
        let mut probs = HashMap::new();
        probs.insert(SignalId(2), 1.0);
        probs.insert(SignalId(4), 0.1); // 0.9 * 0.1 = 0.09 < 0.25
        let adj = s.adjusted_by_input_probability(&probs);
        assert_eq!(adj[0].1, 0.25);
        assert!((adj[1].1 - 0.09).abs() < 1e-12);
        assert_eq!(adj[3].1, 0.0);
    }

    #[test]
    fn end_to_end_combines_parallel_paths() {
        let s = PathSet::from_paths(vec![
            path(vec![0, 2], vec![0.5], PathTerminal::SystemInput),
            path(vec![0, 1, 2], vec![0.5, 0.8], PathTerminal::SystemInput),
        ]);
        let e = s.end_to_end_estimate(SignalId(2));
        assert!((e - (1.0 - 0.5 * 0.6)).abs() < 1e-12);
        assert_eq!(s.end_to_end_estimate(SignalId(9)), 0.0);
    }

    #[test]
    fn path_accessors() {
        let p = path(vec![0, 1, 2], vec![0.5, 0.5], PathTerminal::SystemInput);
        assert_eq!(p.root(), SignalId(0));
        assert_eq!(p.leaf(), SignalId(2));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(p.visits(SignalId(1)));
        assert!(!p.visits(SignalId(7)));
        assert!((p.weighted_by(0.5) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: PathSet = sample().into_iter().collect();
        let more = sample();
        s.extend(more);
        assert_eq!(s.len(), 8);
    }
}
