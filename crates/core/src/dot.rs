//! Rendering: GraphViz DOT output for permeability graphs and ASCII/DOT
//! rendering for backtrack and trace trees (Figs. 3–5 and 9–12).

use crate::backtrack::{BacktrackNodeKind, BacktrackTree};
use crate::graph::PermeabilityGraph;
use crate::trace::{TraceNodeKind, TraceTree};
use std::fmt::Write as _;

/// Renders the permeability graph as GraphViz DOT (Fig. 3 / Fig. 9).
///
/// Modules become nodes; each permeability pair becomes one labelled edge
/// from the producer of the input signal (or an external source node) to the
/// module. Zero-weight arcs are drawn dashed rather than omitted so that the
/// full pair structure stays visible.
pub fn graph_to_dot(graph: &PermeabilityGraph) -> String {
    let topo = graph.topology();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", topo.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box];");
    for m in topo.modules() {
        let _ = writeln!(out, "  m{} [label=\"{}\"];", m.index(), topo.module_name(m));
    }
    for &s in topo.system_inputs() {
        let _ = writeln!(
            out,
            "  in{} [label=\"{}\", shape=plaintext];",
            s.index(),
            topo.signal_name(s)
        );
    }
    for &s in topo.system_outputs() {
        let _ = writeln!(
            out,
            "  out{} [label=\"{}\", shape=plaintext];",
            s.index(),
            topo.signal_name(s)
        );
    }
    for arc in graph.arcs() {
        let style = if arc.weight == 0.0 {
            ", style=dashed"
        } else {
            ""
        };
        let label = format!("{}={:.3}", graph.arc_label(arc.id), arc.weight);
        // Edge tail: producer of the input signal, or external source.
        let tail = match topo.source_of(arc.input_signal) {
            crate::topology::SignalSource::External => format!("in{}", arc.input_signal.index()),
            crate::topology::SignalSource::Produced(p) => format!("m{}", p.module.index()),
        };
        let _ = writeln!(
            out,
            "  {tail} -> m{} [label=\"{label}\"{style}];",
            arc.id.module.index()
        );
        if topo.is_system_output(arc.output_signal) {
            let _ = writeln!(
                out,
                "  m{} -> out{} [style=bold];",
                arc.id.module.index(),
                arc.output_signal.index()
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a backtrack tree as indented ASCII (Fig. 4 / Fig. 10).
///
/// Feedback leaves are marked `[feedback]` (the paper's double line) and
/// system-input leaves `[system input]`.
pub fn backtrack_to_ascii(graph: &PermeabilityGraph, tree: &BacktrackTree) -> String {
    let topo = graph.topology();
    let mut out = String::new();
    let mut stack = vec![(0usize, 0usize)];
    while let Some((idx, indent)) = stack.pop() {
        let node = &tree.nodes()[idx];
        let pad = "  ".repeat(indent);
        let arc = match node.arc_from_parent {
            Some((id, w)) => format!(" <-[{} = {:.3}]", graph.arc_label(id), w),
            None => String::new(),
        };
        let marker = match node.kind {
            BacktrackNodeKind::Root => " (root)",
            BacktrackNodeKind::SystemInputLeaf => " [system input]",
            BacktrackNodeKind::FeedbackLeaf => " [feedback]",
            BacktrackNodeKind::Internal => "",
        };
        let _ = writeln!(out, "{pad}{}{arc}{marker}", topo.signal_name(node.signal));
        for &c in node.children.iter().rev() {
            stack.push((c, indent + 1));
        }
    }
    out
}

/// Renders a trace tree as indented ASCII (Fig. 5 / Figs. 11–12).
pub fn trace_to_ascii(graph: &PermeabilityGraph, tree: &TraceTree) -> String {
    let topo = graph.topology();
    let mut out = String::new();
    let mut stack = vec![(0usize, 0usize)];
    while let Some((idx, indent)) = stack.pop() {
        let node = &tree.nodes()[idx];
        let pad = "  ".repeat(indent);
        let arc = match node.arc_from_parent {
            Some((id, w)) => format!(" ->[{} = {:.3}]", graph.arc_label(id), w),
            None => String::new(),
        };
        let marker = match node.kind {
            TraceNodeKind::Root => " (root)",
            TraceNodeKind::SystemOutputLeaf => " [system output]",
            TraceNodeKind::FeedbackLeaf => " [feedback]",
            TraceNodeKind::DeadEndLeaf => " [dead end]",
            TraceNodeKind::Internal => "",
        };
        let _ = writeln!(out, "{pad}{}{arc}{marker}", topo.signal_name(node.signal));
        for &c in node.children.iter().rev() {
            stack.push((c, indent + 1));
        }
    }
    out
}

/// Renders a backtrack tree as GraphViz DOT. Feedback leaves use a double
/// (peripheries=2) border like the paper's double line.
pub fn backtrack_to_dot(graph: &PermeabilityGraph, tree: &BacktrackTree) -> String {
    let topo = graph.topology();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "digraph \"backtrack_{}\" {{",
        topo.signal_name(tree.root_signal())
    );
    for (idx, node) in tree.nodes().iter().enumerate() {
        let shape = match node.kind {
            BacktrackNodeKind::Root => ", shape=doubleoctagon",
            BacktrackNodeKind::FeedbackLeaf => ", peripheries=2",
            BacktrackNodeKind::SystemInputLeaf => ", shape=box",
            BacktrackNodeKind::Internal => "",
        };
        let _ = writeln!(
            out,
            "  n{idx} [label=\"{}\"{shape}];",
            topo.signal_name(node.signal)
        );
        if let (Some(parent), Some((id, w))) = (node.parent, node.arc_from_parent) {
            let _ = writeln!(
                out,
                "  n{parent} -> n{idx} [label=\"{}={:.3}\"];",
                graph.arc_label(id),
                w
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a trace tree as GraphViz DOT.
pub fn trace_to_dot(graph: &PermeabilityGraph, tree: &TraceTree) -> String {
    let topo = graph.topology();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "digraph \"trace_{}\" {{",
        topo.signal_name(tree.root_signal())
    );
    for (idx, node) in tree.nodes().iter().enumerate() {
        let shape = match node.kind {
            TraceNodeKind::Root => ", shape=doubleoctagon",
            TraceNodeKind::FeedbackLeaf => ", peripheries=2",
            TraceNodeKind::SystemOutputLeaf => ", shape=box",
            TraceNodeKind::DeadEndLeaf => ", shape=diamond",
            TraceNodeKind::Internal => "",
        };
        let _ = writeln!(
            out,
            "  n{idx} [label=\"{}\"{shape}];",
            topo.signal_name(node.signal)
        );
        if let (Some(parent), Some((id, w))) = (node.parent, node.arc_from_parent) {
            let _ = writeln!(
                out,
                "  n{parent} -> n{idx} [label=\"{}={:.3}\"];",
                graph.arc_label(id),
                w
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::PermeabilityMatrix;
    use crate::topology::TopologyBuilder;
    use crate::trace::TraceTree;

    fn graph() -> PermeabilityGraph {
        let mut b = TopologyBuilder::new("dot");
        let ext = b.external("ext");
        let a = b.add_module("A");
        b.bind_input(a, ext);
        let s = b.add_output(a, "s");
        let c = b.add_module("C");
        b.bind_input(c, s);
        let out = b.add_output(c, "out");
        b.mark_system_output(out);
        let t = b.build().unwrap();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set(t.module_by_name("A").unwrap(), 0, 0, 0.5).unwrap();
        pm.set(t.module_by_name("C").unwrap(), 0, 0, 0.0).unwrap();
        PermeabilityGraph::new(&t, &pm).unwrap()
    }

    #[test]
    fn graph_dot_contains_modules_and_weights() {
        let g = graph();
        let dot = graph_to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("P^A_{1,1}=0.500"));
        // zero arc rendered dashed
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn backtrack_ascii_marks_leaves() {
        let g = graph();
        let out = g.topology().signal_by_name("out").unwrap();
        let tree = BacktrackTree::build(&g, out).unwrap();
        let ascii = backtrack_to_ascii(&g, &tree);
        assert!(ascii.contains("(root)"));
        assert!(ascii.contains("[system input]"));
        assert!(ascii.lines().count() >= 3);
    }

    #[test]
    fn trace_ascii_marks_leaves() {
        let g = graph();
        let ext = g.topology().signal_by_name("ext").unwrap();
        let tree = TraceTree::build(&g, ext).unwrap();
        let ascii = trace_to_ascii(&g, &tree);
        assert!(ascii.contains("(root)"));
        assert!(ascii.contains("[system output]"));
    }

    /// Byte-pins the DOT emitters: artifacts (`fig9_graph.dot`,
    /// `fig10_backtrack_toc2.dot`) must be byte-diffable across runs, so
    /// node and edge ordering — module order, then per-module (input,
    /// output) arc order; tree nodes in build order — is part of the
    /// contract, not an accident of iteration.
    #[test]
    fn dot_output_is_byte_pinned() {
        let g = graph();
        assert_eq!(
            graph_to_dot(&g),
            "digraph \"dot\" {\n\
             \x20 rankdir=LR;\n\
             \x20 node [shape=box];\n\
             \x20 m0 [label=\"A\"];\n\
             \x20 m1 [label=\"C\"];\n\
             \x20 in0 [label=\"ext\", shape=plaintext];\n\
             \x20 out2 [label=\"out\", shape=plaintext];\n\
             \x20 in0 -> m0 [label=\"P^A_{1,1}=0.500\"];\n\
             \x20 m0 -> m1 [label=\"P^C_{1,1}=0.000\", style=dashed];\n\
             \x20 m1 -> out2 [style=bold];\n\
             }\n"
        );
        let out = g.topology().signal_by_name("out").unwrap();
        let tree = BacktrackTree::build(&g, out).unwrap();
        assert_eq!(
            backtrack_to_dot(&g, &tree),
            "digraph \"backtrack_out\" {\n\
             \x20 n0 [label=\"out\", shape=doubleoctagon];\n\
             \x20 n1 [label=\"s\"];\n\
             \x20 n0 -> n1 [label=\"P^C_{1,1}=0.000\"];\n\
             \x20 n2 [label=\"ext\", shape=box];\n\
             \x20 n1 -> n2 [label=\"P^A_{1,1}=0.500\"];\n\
             }\n"
        );
        // Rebuilding from scratch (fresh topology, fresh matrix, fresh
        // trees) reproduces the identical bytes.
        let g2 = graph();
        assert_eq!(graph_to_dot(&g), graph_to_dot(&g2));
        let tree2 = BacktrackTree::build(&g2, out).unwrap();
        assert_eq!(backtrack_to_dot(&g, &tree), backtrack_to_dot(&g2, &tree2));
        let ext = g.topology().signal_by_name("ext").unwrap();
        assert_eq!(
            trace_to_dot(&g, &TraceTree::build(&g, ext).unwrap()),
            trace_to_dot(&g2, &TraceTree::build(&g2, ext).unwrap())
        );
    }

    #[test]
    fn tree_dot_renders_every_node_once() {
        let g = graph();
        let out = g.topology().signal_by_name("out").unwrap();
        let tree = BacktrackTree::build(&g, out).unwrap();
        let dot = backtrack_to_dot(&g, &tree);
        assert_eq!(
            dot.matches("label=").count(),
            tree.node_count() * 2 - 1 // each node + each edge label
        );
        let ext = g.topology().signal_by_name("ext").unwrap();
        let tt = TraceTree::build(&g, ext).unwrap();
        let dot = trace_to_dot(&g, &tt);
        assert!(dot.contains("digraph \"trace_ext\""));
    }
}
