//! Complementary EDM placement: covering propagation paths with few
//! detectors.
//!
//! The paper's related work ([18]) selects EDM subsets that minimise overlap
//! between detectors. This module brings that idea to the permeability
//! framework: a detector on signal `S` covers every propagation path that
//! visits `S`; choosing the next detector by *marginal* covered weight (a
//! greedy weighted set cover) yields small detector sets whose members
//! complement instead of duplicating each other — which plain
//! exposure-ranked placement cannot guarantee (the top two signals often sit
//! on the same paths).

use crate::ids::SignalId;
use crate::paths::PathSet;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One step of the greedy cover: the signal chosen and what it bought.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverStep {
    /// The chosen signal.
    pub signal: SignalId,
    /// Path weight newly covered by this choice.
    pub marginal_weight: f64,
    /// Cumulative fraction of total path weight covered so far.
    pub cumulative_fraction: f64,
    /// Number of paths newly covered.
    pub newly_covered_paths: usize,
}

/// Greedy weighted set cover of the path set by monitor signals.
///
/// Only non-zero paths participate; candidate signals are every signal
/// occurring on a path except roots (system outputs) and leaves that are
/// system boundaries — pass `candidates` to restrict further (e.g. exclude
/// hardware registers). Stops after `k` picks or full coverage.
///
/// # Examples
///
/// ```
/// use permea_core::prelude::*;
/// use permea_core::coverage::greedy_cover;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TopologyBuilder::new("t");
/// let x = b.external("x");
/// let a = b.add_module("A");
/// b.bind_input(a, x);
/// let s = b.add_output(a, "s");
/// let c = b.add_module("C");
/// b.bind_input(c, s);
/// let out = b.add_output(c, "out");
/// b.mark_system_output(out);
/// let topo = b.build()?;
/// let mut pm = PermeabilityMatrix::zeroed(&topo);
/// pm.set(a, 0, 0, 0.9)?;
/// pm.set(c, 0, 0, 0.5)?;
/// let g = PermeabilityGraph::new(&topo, &pm)?;
/// let paths = BacktrackTree::build(&g, out)?.into_path_set();
///
/// let cover = greedy_cover(&paths, None, 2);
/// assert_eq!(cover.len(), 1, "one signal covers the single path");
/// assert_eq!(cover[0].signal, s);
/// assert!((cover[0].cumulative_fraction - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn greedy_cover(paths: &PathSet, candidates: Option<&[SignalId]>, k: usize) -> Vec<CoverStep> {
    let live = paths.non_zero();
    let total: f64 = live.iter().map(|p| p.weight).sum();
    if total <= 0.0 || k == 0 {
        return Vec::new();
    }
    // Candidate signals: interior path signals (not the root, not the leaf
    // when the leaf is a boundary terminal).
    let allowed: Option<HashSet<SignalId>> = candidates.map(|c| c.iter().copied().collect());
    let mut candidate_set: HashSet<SignalId> = HashSet::new();
    for p in live.iter() {
        let interior = &p.signals[1..p.signals.len().saturating_sub(1)];
        for &s in interior {
            if allowed.as_ref().is_none_or(|a| a.contains(&s)) {
                candidate_set.insert(s);
            }
        }
    }

    let mut uncovered: Vec<bool> = vec![true; live.len()];
    let mut covered_weight = 0.0;
    let mut steps = Vec::new();
    for _ in 0..k {
        // Pick the candidate with the largest marginal covered weight.
        let mut best: Option<(SignalId, f64, usize)> = None;
        let mut ordered: Vec<SignalId> = candidate_set.iter().copied().collect();
        ordered.sort();
        for &cand in &ordered {
            let mut w = 0.0;
            let mut n = 0;
            for (idx, p) in live.iter().enumerate() {
                if uncovered[idx] && p.visits(cand) {
                    w += p.weight;
                    n += 1;
                }
            }
            let better = match best {
                None => w > 0.0,
                Some((_, bw, _)) => w > bw + 1e-15,
            };
            if better {
                best = Some((cand, w, n));
            }
        }
        let Some((signal, marginal_weight, newly_covered_paths)) = best else {
            break; // nothing left to cover
        };
        for (idx, p) in live.iter().enumerate() {
            if uncovered[idx] && p.visits(signal) {
                uncovered[idx] = false;
            }
        }
        candidate_set.remove(&signal);
        covered_weight += marginal_weight;
        steps.push(CoverStep {
            signal,
            marginal_weight,
            cumulative_fraction: covered_weight / total,
            newly_covered_paths,
        });
        if uncovered.iter().all(|&u| !u) {
            break;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::BacktrackTree;
    use crate::graph::PermeabilityGraph;
    use crate::matrix::PermeabilityMatrix;
    use crate::topology::TopologyBuilder;

    /// Two parallel branches joined at the output:
    ///   e1 -> [A] -sa-> [D] -> out  (0.6 * 0.9 = 0.54)
    ///   e2 -> [B] -sb-> [D] -> out  (0.8 * 0.5 = 0.40)
    fn diamond() -> (crate::topology::SystemTopology, PathSet) {
        let mut b = TopologyBuilder::new("d");
        let e1 = b.external("e1");
        let e2 = b.external("e2");
        let a = b.add_module("A");
        b.bind_input(a, e1);
        let sa = b.add_output(a, "sa");
        let bm = b.add_module("B");
        b.bind_input(bm, e2);
        let sb = b.add_output(bm, "sb");
        let d = b.add_module("D");
        b.bind_input(d, sa);
        b.bind_input(d, sb);
        let out = b.add_output(d, "out");
        b.mark_system_output(out);
        let t = b.build().unwrap();
        let mut pm = PermeabilityMatrix::zeroed(&t);
        pm.set_named(&t, "A", "e1", "sa", 0.6).unwrap();
        pm.set_named(&t, "B", "e2", "sb", 0.8).unwrap();
        pm.set_named(&t, "D", "sa", "out", 0.9).unwrap();
        pm.set_named(&t, "D", "sb", "out", 0.5).unwrap();
        let g = PermeabilityGraph::new(&t, &pm).unwrap();
        let paths = BacktrackTree::build(&g, out).unwrap().into_path_set();
        (t, paths)
    }

    #[test]
    fn greedy_picks_complementary_signals() {
        let (t, paths) = diamond();
        let sa = t.signal_by_name("sa").unwrap();
        let sb = t.signal_by_name("sb").unwrap();
        let cover = greedy_cover(&paths, None, 3);
        // First pick: sa (0.54 > 0.40); second: sb (complements, not
        // another signal on the already-covered path).
        assert_eq!(cover.len(), 2);
        assert_eq!(cover[0].signal, sa);
        assert!((cover[0].marginal_weight - 0.54).abs() < 1e-12);
        assert_eq!(cover[1].signal, sb);
        assert!((cover[1].cumulative_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_limits_the_set() {
        let (_, paths) = diamond();
        let cover = greedy_cover(&paths, None, 1);
        assert_eq!(cover.len(), 1);
        assert!(cover[0].cumulative_fraction < 1.0);
    }

    #[test]
    fn candidate_restriction_is_honoured() {
        let (t, paths) = diamond();
        let sb = t.signal_by_name("sb").unwrap();
        let cover = greedy_cover(&paths, Some(&[sb]), 5);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].signal, sb);
        assert!((cover[0].marginal_weight - 0.40).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let (_, paths) = diamond();
        assert!(greedy_cover(&paths, None, 0).is_empty());
        assert!(greedy_cover(&PathSet::new(), None, 3).is_empty());
        // Candidates that appear on no path:
        let cover = greedy_cover(&paths, Some(&[]), 3);
        assert!(cover.is_empty());
    }

    #[test]
    fn marginal_weights_are_decreasing() {
        let (_, paths) = diamond();
        let cover = greedy_cover(&paths, None, 5);
        for w in cover.windows(2) {
            assert!(w[0].marginal_weight >= w[1].marginal_weight - 1e-12);
        }
    }
}
